"""Real-trace ingestion: external trace files -> catalogued workloads.

The pipeline has two halves (see ROADMAP "Ingesting workloads"):

* :mod:`repro.workloads.ingest.readers` — streaming, gzip-transparent
  parsers for the documented text and CSV trace formats, validating row
  by row with line-numbered :class:`IngestError` rejections and building
  the same ``array``-backed columns the synthetic generators emit;
* :mod:`repro.workloads.ingest.catalog` — the :class:`WorkloadCatalog`
  directory (``REPRO_WORKLOAD_DIR`` / ``Session(workload_dir=...)``)
  where ingested traces live as columnar files with CRC-framed JSON
  manifests, addressable from :class:`repro.api.ExperimentSpec` mixes as
  ``"ingest:<name> x<cores>"`` strings whose trace digests fold into the
  spec/harness fingerprints.

Operators drive it through ``python -m repro.api workloads
{ingest|list|verify|drop}``.
"""

from repro.workloads.ingest.catalog import (
    CATALOG_VERSION,
    CatalogEntry,
    CatalogError,
    WORKLOAD_DIR_ENV,
    WorkloadCatalog,
    catalog_mix,
    is_catalog_mix,
    parse_catalog_mix,
)
from repro.workloads.ingest.readers import (
    INGEST_FORMATS,
    IngestError,
    detect_format,
    open_stream,
    parse_csv,
    parse_text,
    read_trace,
)

__all__ = [
    "CATALOG_VERSION",
    "CatalogEntry",
    "CatalogError",
    "INGEST_FORMATS",
    "IngestError",
    "WORKLOAD_DIR_ENV",
    "WorkloadCatalog",
    "catalog_mix",
    "detect_format",
    "is_catalog_mix",
    "open_stream",
    "parse_catalog_mix",
    "parse_csv",
    "parse_text",
    "read_trace",
]

"""Format readers: external trace files -> columnar :class:`Trace`.

Two documented on-disk formats import real application memory traces into
the reproduction (ROADMAP "Ingesting workloads"):

``text``
    One access per line, whitespace-separated::

        <bubble> <L|S> <addr> [flags]

    ``bubble`` is the number of non-memory instructions preceding the
    access (non-negative decimal), ``L``/``S`` selects load or store,
    ``addr`` is the physical byte address (decimal or ``0x`` hex), and the
    optional ``flags`` token is a string of single-letter modifiers —
    currently ``B`` (the access bypasses the cache hierarchy, the
    trace-level model of non-temporal/DMA traffic) and ``-`` (explicit
    "no flags" placeholder).  Blank lines and ``#`` comments are skipped.

``csv``
    The same four fields as comma-separated ``bubble,op,addr[,flags]``
    rows; an optional header row whose first cell is ``bubble`` is
    recognised and skipped, as are blank lines and ``#`` comment lines.

Both formats decode gzip-compressed files transparently (detected by the
two magic bytes, not the file name), stream line by line (a multi-gigabyte
trace never materialises as text), validate row by row — every rejection
is an :class:`IngestError` carrying the offending **line number** — and
append straight into the ``array``-backed columns the synthetic generators
build (:mod:`repro.workloads.synthetic`), so an ingested trace is
column-for-column the same object a generated one is.
"""

from __future__ import annotations

import csv
import gzip
import io
from array import array
from pathlib import Path
from typing import Iterable, Iterator, Optional, Tuple

from repro.cpu.trace import FLAG_BYPASS, FLAG_WRITE, Trace

#: The format names :func:`read_trace` (and the CLI ``--format``) accept.
INGEST_FORMATS: Tuple[str, ...] = ("text", "csv")

#: Addresses must leave headroom for per-core region offsets (the mix
#: builder shifts each core into its own region of physical memory), so
#: the importable address space is capped well below 2**64.
MAX_ADDRESS = 2 ** 48 - 1

#: Bubbles are stored in a signed 64-bit column; anything near the bound
#: is a parse artefact, not a plausible instruction count.
MAX_BUBBLE = 2 ** 31 - 1

_OPCODES = {"L": 0, "S": FLAG_WRITE}
_FLAG_LETTERS = {"B": FLAG_BYPASS}


class IngestError(ValueError):
    """A rejected input row; ``line`` is the 1-based source line number."""

    def __init__(self, source: str, line: int, message: str) -> None:
        super().__init__(f"{source}, line {line}: {message}")
        self.source = source
        self.line = line


def detect_format(path: Path | str) -> str:
    """The format a file name implies: ``.csv`` / ``.csv.gz`` else text."""

    suffixes = [s.lower() for s in Path(path).suffixes]
    if suffixes and suffixes[-1] == ".gz":
        suffixes = suffixes[:-1]
    return "csv" if suffixes and suffixes[-1] == ".csv" else "text"


def open_stream(path: Path | str) -> io.TextIOBase:
    """Open ``path`` as a text line stream, decoding gzip transparently.

    Compression is detected from the two gzip magic bytes so ``.gz``-less
    compressed files (and renamed ones) still decode; decoding is
    streaming in both cases.
    """

    path = Path(path)
    raw = path.open("rb")
    try:
        magic = raw.read(2)
        raw.seek(0)
        if magic == b"\x1f\x8b":
            return io.TextIOWrapper(gzip.GzipFile(fileobj=raw),
                                    encoding="utf-8")
        return io.TextIOWrapper(raw, encoding="utf-8")
    except Exception:
        raw.close()
        raise


def _parse_fields(source: str, line_number: int, bubble_text: str,
                  op_text: str, addr_text: str,
                  flags_text: Optional[str]) -> Tuple[int, int, int]:
    """Validate one row's fields; returns ``(bubble, address, flag_byte)``."""

    try:
        bubble = int(bubble_text, 10)
    except ValueError:
        raise IngestError(source, line_number,
                          f"bubble {bubble_text!r} is not a decimal integer")
    if not 0 <= bubble <= MAX_BUBBLE:
        raise IngestError(source, line_number,
                          f"bubble {bubble} out of range [0, {MAX_BUBBLE}]")
    op = op_text.strip().upper()
    if op not in _OPCODES:
        raise IngestError(source, line_number,
                          f"op {op_text!r} is not L (load) or S (store)")
    try:
        address = int(addr_text, 0)
    except ValueError:
        raise IngestError(source, line_number,
                          f"address {addr_text!r} is not a decimal/hex "
                          "integer")
    if not 0 <= address <= MAX_ADDRESS:
        raise IngestError(source, line_number,
                          f"address {addr_text!r} out of range "
                          f"[0, {MAX_ADDRESS:#x}]")
    flag = _OPCODES[op]
    if flags_text is not None:
        stripped = flags_text.strip()
        if stripped != "-":
            for letter in stripped:
                if letter.upper() not in _FLAG_LETTERS:
                    raise IngestError(
                        source, line_number,
                        f"unknown flag letter {letter!r} in "
                        f"{flags_text!r} (known: "
                        f"{''.join(sorted(_FLAG_LETTERS))}, or '-')")
                flag |= _FLAG_LETTERS[letter.upper()]
    return bubble, address, flag


def _build_trace(rows: Iterator[Tuple[int, int, int]], name: str,
                 source: str, loop: bool) -> Trace:
    bubbles = array("q")
    addresses = array("Q")
    flags = bytearray()
    for bubble, address, flag in rows:
        bubbles.append(bubble)
        addresses.append(address)
        flags.append(flag)
    if not bubbles:
        raise IngestError(source, 1, "no trace rows (empty input)")
    return Trace.from_columns(bubbles, addresses, flags, name=name,
                              loop=loop)


def parse_text(lines: Iterable[str], name: str = "ingested",
               source: str = "<text>", loop: bool = True) -> Trace:
    """Parse the line-oriented ``<bubble> <L|S> <addr> [flags]`` format."""

    def rows() -> Iterator[Tuple[int, int, int]]:
        for line_number, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if not 3 <= len(parts) <= 4:
                raise IngestError(
                    source, line_number,
                    f"expected '<bubble> <L|S> <addr> [flags]', got "
                    f"{stripped!r}")
            flags_text = parts[3] if len(parts) == 4 else None
            yield _parse_fields(source, line_number, parts[0], parts[1],
                                parts[2], flags_text)

    return _build_trace(rows(), name, source, loop)


def parse_csv(lines: Iterable[str], name: str = "ingested",
              source: str = "<csv>", loop: bool = True) -> Trace:
    """Parse the ``bubble,op,addr[,flags]`` CSV variant."""

    def rows() -> Iterator[Tuple[int, int, int]]:
        reader = csv.reader(lines)
        for row in reader:
            line_number = reader.line_num
            cells = [cell.strip() for cell in row]
            if not cells or not any(cells):
                continue
            if cells[0].startswith("#"):
                continue
            if line_number == 1 and cells[0].lower() == "bubble":
                continue  # header row
            if not 3 <= len(cells) <= 4:
                raise IngestError(
                    source, line_number,
                    f"expected 3-4 columns (bubble,op,addr[,flags]), "
                    f"got {len(cells)}: {','.join(cells)!r}")
            flags_text = cells[3] if len(cells) == 4 and cells[3] else None
            yield _parse_fields(source, line_number, cells[0], cells[1],
                                cells[2], flags_text)

    return _build_trace(rows(), name, source, loop)


def read_trace(path: Path | str, name: Optional[str] = None,
               format: Optional[str] = None, loop: bool = True) -> Trace:
    """Read an external trace file into a columnar :class:`Trace`.

    ``format=None`` infers from the file name (:func:`detect_format`);
    gzip compression is always detected from content.  Truncated gzip
    streams and undecodable bytes surface as :class:`IngestError` too, so
    callers have one failure type for "this input is not ingestable".
    """

    path = Path(path)
    format = format or detect_format(path)
    if format not in INGEST_FORMATS:
        raise ValueError(
            f"unknown ingest format {format!r}; one of {INGEST_FORMATS}")
    parser = parse_text if format == "text" else parse_csv
    trace_name = name or path.name.partition(".")[0]
    try:
        with open_stream(path) as stream:
            return parser(stream, name=trace_name, source=str(path),
                          loop=loop)
    except (EOFError, gzip.BadGzipFile, UnicodeDecodeError) as exc:
        raise IngestError(str(path), 0,
                          f"undecodable input ({exc})") from exc

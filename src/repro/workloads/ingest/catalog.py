"""The workload catalog: ingested traces, addressable by name.

A :class:`WorkloadCatalog` is a directory of imported traces — each the
binary columnar format :meth:`repro.cpu.trace.Trace.dump_columnar` writes
(so sessions, the spool, and cluster workers load them through the same
zero-copy mmap path as synthetic traces) plus a CRC-framed JSON manifest
pinning everything the rest of the stack needs to trust the entry:

* ``source_digest`` — sha256 of the raw input file, so re-ingesting the
  same source is a no-op (the warm path the ingest benchmark measures);
* ``trace_digest`` — sha256 of the columnar file as written, which is
  what folds into spec/harness **fingerprints**: a re-ingested trace
  lands every sweep that references it in a fresh
  :class:`~repro.analysis.runcache.RunCache` namespace, so stale cache
  entries can never be served for new trace content;
* the source format, entry count, scale (instructions / memory accesses),
  and a Table 3-style characterization summary
  (:func:`repro.workloads.characteristics.characterize_trace`).

Manifests use the same integrity discipline as RunCache v2 entries —
atomic writes (temp file + ``os.replace``) and the
:func:`~repro.analysis.runcache.frame_payload` magic+CRC32+length frame —
so a torn or corrupted manifest is *detected* and reported, never parsed
into a wrong entry.

The catalog root resolves like every other execution knob: an explicit
directory (``Session(workload_dir=...)``, CLI ``--workload-dir``) beats
the ``REPRO_WORKLOAD_DIR`` environment variable; with neither set there
is no catalog and ``ingest:`` mixes are rejected at spec validation.

Spec integration: a mix string of the form ``"ingest:<name> x<cores>"``
(e.g. ``"ingest:gap-bfs x4"``) places ``<cores>`` copies of the ingested
trace, one per core, each shifted into its own region of physical memory
exactly like the synthetic benign letters — :func:`catalog_mix` builds
the :class:`~repro.workloads.mixes.WorkloadMix`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import tempfile
import warnings
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.runcache import frame_payload, unframe_payload
from repro.cpu.trace import Trace
from repro.dram.address import MappingScheme
from repro.dram.config import DeviceConfig
from repro.workloads.characteristics import characterize_trace
from repro.workloads.ingest.readers import detect_format, read_trace
from repro.workloads.mixes import WorkloadMix

#: Environment variable naming the catalog root directory.
WORKLOAD_DIR_ENV = "REPRO_WORKLOAD_DIR"

#: Bump when the manifest schema or file layout changes.
CATALOG_VERSION = 1

#: Catalog names must be filename- and mix-token-safe.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")

#: The ``ingest:<name>[ x<cores>]`` mix-string grammar.
_MIX_PATTERN = re.compile(
    r"^ingest:(?P<name>[A-Za-z0-9][A-Za-z0-9_.-]*)"
    r"(?: x(?P<count>[1-9]\d*))?$"
)

#: Region size per core when placing catalog traces (matches the synthetic
#: mix builder's default disjoint-region layout).
_REGION_BYTES = 64 * 1024 * 1024


class CatalogError(ValueError):
    """A catalog problem: unknown name, damaged entry, or no catalog."""


@dataclass(frozen=True)
class CatalogEntry:
    """One ingested workload, as pinned by its manifest."""

    name: str
    format: str
    source_digest: str
    trace_digest: str
    entries: int
    instructions: int
    memory_accesses: int
    characterization: Tuple[Tuple[str, object], ...]

    def as_dict(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        data["characterization"] = dict(self.characterization)
        data["version"] = CATALOG_VERSION
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CatalogEntry":
        if data.get("version") != CATALOG_VERSION:
            raise CatalogError(
                f"unsupported catalog manifest version "
                f"{data.get('version')!r}")
        character = data.get("characterization") or {}
        return cls(
            name=str(data["name"]),
            format=str(data["format"]),
            source_digest=str(data["source_digest"]),
            trace_digest=str(data["trace_digest"]),
            entries=int(data["entries"]),
            instructions=int(data["instructions"]),
            memory_accesses=int(data["memory_accesses"]),
            characterization=tuple(sorted(character.items())),
        )


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class WorkloadCatalog:
    """A directory of ingested traces plus their framed manifests."""

    def __init__(self, directory: Path | str) -> None:
        self.directory = Path(directory).expanduser()

    # ------------------------------------------------------------------ #
    @classmethod
    def resolve(cls, directory: Optional[str] = None
                ) -> Optional["WorkloadCatalog"]:
        """The configured catalog: explicit directory beats the env var.

        Returns ``None`` when neither names a directory — callers decide
        whether that is an error (``ingest:`` mixes) or simply "no
        ingested workloads" (validation listings).
        """

        root = directory or os.environ.get(WORKLOAD_DIR_ENV, "").strip()
        return cls(root) if root else None

    # ------------------------------------------------------------------ #
    def trace_path(self, name: str) -> Path:
        return self.directory / f"{name}.rtrc"

    def manifest_path(self, name: str) -> Path:
        return self.directory / f"{name}.manifest"

    def names(self) -> List[str]:
        """Every catalogued workload name, sorted."""

        if not self.directory.is_dir():
            return []
        return sorted(path.name[:-len(".manifest")]
                      for path in self.directory.glob("*.manifest"))

    # ------------------------------------------------------------------ #
    def _atomic_write(self, path: Path, payload: bytes) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(dir=str(self.directory),
                                             prefix=f".{path.name}.")
        try:
            with os.fdopen(handle, "wb") as temp:
                temp.write(payload)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def ingest(self, source: Path | str, name: Optional[str] = None,
               format: Optional[str] = None,
               device: Optional[DeviceConfig] = None,
               mapping: MappingScheme = MappingScheme.MOP) -> CatalogEntry:
        """Import ``source`` into the catalog as ``name``.

        Re-ingesting an unchanged source under an existing name is a
        no-op returning the existing entry (matched by source digest and
        format); changed content re-converts and re-pins the manifest,
        which changes ``trace_digest`` and therefore every fingerprint
        that references the workload.
        """

        source = Path(source)
        format = format or detect_format(source)
        name = name or source.name.partition(".")[0]
        if not _NAME_PATTERN.match(name):
            raise CatalogError(
                f"invalid workload name {name!r}: use letters, digits, "
                "'_', '.', '-' (leading alphanumeric)")
        source_digest = _sha256_file(source)
        existing = self._read_manifest(name)
        if (existing is not None
                and existing.source_digest == source_digest
                and existing.format == format
                and not self.verify(name)):
            return existing  # warm path: unchanged source, intact entry
        trace = read_trace(source, name=name, format=format)
        stats = characterize_trace(trace, device=device, mapping=mapping)
        # Write the columnar trace first (atomically), the manifest last:
        # a concurrent reader sees either the complete new entry or the
        # complete old one, never a manifest pointing at missing bytes.
        handle, temp_name = tempfile.mkstemp(dir=str(self._ensure_dir()),
                                             prefix=f".{name}.rtrc.")
        os.close(handle)
        try:
            trace.dump_columnar(temp_name)
            trace_digest = _sha256_file(Path(temp_name))
            os.replace(temp_name, self.trace_path(name))
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        entry = CatalogEntry(
            name=name,
            format=format,
            source_digest=source_digest,
            trace_digest=trace_digest,
            entries=len(trace),
            instructions=trace.total_instructions,
            memory_accesses=trace.memory_accesses,
            characterization=tuple(sorted({
                "rbmpki": round(stats.rbmpki, 4),
                "distinct_rows": stats.distinct_rows,
                "rows_over_512": stats.rows_over_512,
                "rows_over_128": stats.rows_over_128,
                "rows_over_64": stats.rows_over_64,
            }.items())),
        )
        payload = json.dumps(entry.as_dict(), indent=2,
                             sort_keys=True).encode("utf-8")
        self._atomic_write(self.manifest_path(name), frame_payload(payload))
        return entry

    def _ensure_dir(self) -> Path:
        self.directory.mkdir(parents=True, exist_ok=True)
        return self.directory

    def _read_manifest(self, name: str) -> Optional[CatalogEntry]:
        path = self.manifest_path(name)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        payload = unframe_payload(data)
        if payload is None:
            return None
        try:
            return CatalogEntry.from_dict(json.loads(payload))
        except (ValueError, KeyError, TypeError):
            return None

    def entry(self, name: str) -> CatalogEntry:
        """The manifest entry for ``name``; raises :class:`CatalogError`."""

        entry = self._read_manifest(name)
        if entry is None:
            available = self.names()
            raise CatalogError(
                f"no ingested workload {name!r} in catalog "
                f"{self.directory} (available: "
                f"{', '.join(available) if available else 'none'})")
        return entry

    def load_trace(self, name: str, mmap: bool = False) -> Trace:
        """The ingested columnar trace (optionally mmap'd, like spools)."""

        entry = self.entry(name)
        path = self.trace_path(name)
        try:
            trace = Trace.load_columnar(path, mmap=mmap)
        except (OSError, ValueError) as exc:
            raise CatalogError(
                f"catalog trace {path} is missing or damaged: {exc}"
            ) from exc
        if len(trace) != entry.entries:
            raise CatalogError(
                f"catalog trace {path} holds {len(trace)} entries, "
                f"manifest pins {entry.entries}")
        return trace

    def verify(self, name: str) -> List[str]:
        """Integrity problems of one entry (empty list = intact)."""

        problems: List[str] = []
        entry = self._read_manifest(name)
        if entry is None:
            if self.manifest_path(name).exists():
                problems.append("manifest is damaged (bad frame/JSON)")
            else:
                problems.append("manifest is missing")
            return problems
        path = self.trace_path(name)
        if not path.is_file():
            problems.append(f"trace file {path.name} is missing")
            return problems
        if _sha256_file(path) != entry.trace_digest:
            problems.append(
                f"trace file {path.name} does not match the manifest "
                "digest (overwritten or corrupted)")
        try:
            trace = Trace.load_columnar(path)
        except ValueError as exc:
            problems.append(f"trace file {path.name} unreadable: {exc}")
            return problems
        if len(trace) != entry.entries:
            problems.append(
                f"trace file holds {len(trace)} entries, manifest pins "
                f"{entry.entries}")
        return problems

    def drop(self, name: str) -> bool:
        """Remove an entry; ``False`` when nothing existed to remove."""

        removed = False
        for path in (self.manifest_path(name), self.trace_path(name)):
            try:
                path.unlink()
                removed = True
            except OSError:
                pass
        return removed

    def digests(self, names: List[str]) -> Tuple[Tuple[str, str], ...]:
        """``(name, trace_digest)`` pairs, sorted — fingerprint food."""

        return tuple(sorted((name, self.entry(name).trace_digest)
                            for name in set(names)))


# ---------------------------------------------------------------------- #
# Mix-string integration
# ---------------------------------------------------------------------- #
def parse_catalog_mix(mix: str) -> Optional[Tuple[str, int]]:
    """``(name, cores)`` for an ``ingest:`` mix string, else ``None``.

    Raises :class:`CatalogError` for strings that *start* with
    ``ingest:`` but do not match the grammar, so typos fail loudly
    instead of falling through to the letter validator.
    """

    if not mix.startswith("ingest:"):
        return None
    match = _MIX_PATTERN.match(mix)
    if match is None:
        raise CatalogError(
            f"malformed catalog mix {mix!r}: expected "
            "'ingest:<name>[ x<cores>]' (e.g. 'ingest:gap-bfs x4')")
    count = match.group("count")
    return match.group("name"), int(count) if count else 1


def is_catalog_mix(mix: str) -> bool:
    """Whether a mix string addresses the catalog (``ingest:`` prefix)."""

    return mix.startswith("ingest:")


def catalog_mix(mix: str, directory: Optional[str] = None,
                region_bytes: int = _REGION_BYTES,
                expected_digest: Optional[str] = None,
                mmap: bool = False) -> WorkloadMix:
    """Build the :class:`WorkloadMix` an ``ingest:`` mix string names.

    Each of the ``x<cores>`` copies is shifted into its own disjoint
    region of physical memory (region 0 stays reserved for attacker
    aggressor rows, like the synthetic letters) and named
    ``<name>#c<i>`` — per-core names keep the standalone-IPC baseline
    cache keys, which are ``(trace.name, len)``, from aliasing.

    ``expected_digest`` is the trace digest the caller fingerprinted
    (runner construction time); when the catalog now reports different
    content — the workload was re-ingested mid-session — the mix **falls
    back to the current catalog content with a warning**, since results
    would land in the stale fingerprint's cache namespace until a new
    session re-fingerprints.
    """

    parsed = parse_catalog_mix(mix)
    if parsed is None:
        raise CatalogError(f"{mix!r} is not an ingest: mix string")
    name, cores = parsed
    catalog = WorkloadCatalog.resolve(directory)
    if catalog is None:
        raise CatalogError(
            f"mix {mix!r} needs a workload catalog, but none is "
            f"configured: set {WORKLOAD_DIR_ENV} or pass "
            "Session(workload_dir=...)")
    entry = catalog.entry(name)
    if expected_digest is not None and entry.trace_digest != expected_digest:
        warnings.warn(
            f"ingested workload {name!r} changed since this session was "
            f"fingerprinted (digest {entry.trace_digest[:12]} != "
            f"{expected_digest[:12]}); falling back to the current "
            "catalog content — open a new Session to cache under the "
            "new fingerprint", stacklevel=2)
    base = catalog.load_trace(name, mmap=mmap)
    bubbles, addresses, flags = base.columns
    traces = []
    for core_index in range(cores):
        offset = (core_index + 1) * region_bytes
        shifted = array(addresses.typecode,
                        (address + offset for address in addresses))
        traces.append(Trace.from_columns(
            array(bubbles.typecode, bubbles), shifted, bytearray(flags),
            name=f"{name}#c{core_index}", loop=base.loop,
        ))
    return WorkloadMix(name=mix, traces=traces, attacker_threads=[])

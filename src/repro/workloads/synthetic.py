"""Synthetic benign workload generation.

The generators reproduce the workload *characteristics* the paper relies on
(Table 3) rather than any particular benchmark's instruction stream:

* **memory intensity** — the ratio of memory accesses to total instructions,
  which together with the LLC determines row-buffer misses per
  kilo-instruction (RBMPKI) and therefore the High / Medium / Low buckets;
* **spatial locality** — how many consecutive cachelines of a row are
  touched before jumping, which determines the row-buffer hit rate;
* **hot rows** — a subset of rows revisited frequently, which is what makes
  some benign applications (e.g. 429.mcf in Table 3) capable of triggering
  preventive actions on their own at low RowHammer thresholds.
"""

from __future__ import annotations

import enum
import random
from array import array
from dataclasses import dataclass
from typing import Optional

from repro.cpu.trace import FLAG_WRITE, Trace


class MemoryIntensity(enum.Enum):
    """The paper's three memory-intensity buckets."""

    HIGH = "H"
    MEDIUM = "M"
    LOW = "L"

    @classmethod
    def from_letter(cls, letter: str) -> "MemoryIntensity":
        mapping = {"H": cls.HIGH, "M": cls.MEDIUM, "L": cls.LOW}
        key = letter.upper()
        if key not in mapping:
            raise ValueError(f"unknown intensity letter {letter!r}")
        return mapping[key]


@dataclass(frozen=True)
class BenignConfig:
    """Parameters of a synthetic benign workload."""

    intensity: MemoryIntensity = MemoryIntensity.MEDIUM
    entries: int = 20_000
    footprint_bytes: int = 2 * 1024 * 1024
    # Average non-memory instructions between memory accesses.
    mean_bubble: int = 8
    # Probability that the next access stays in the current "stream"
    # (sequential cachelines), which yields row-buffer hits.
    streaming_probability: float = 0.35
    # Probability of revisiting a recently touched cacheline (temporal
    # locality → LLC hits); controls the effective RBMPKI bucket.
    reuse_probability: float = 0.35
    reuse_window: int = 512
    # Fraction of accesses that go to a small set of hot rows.
    hot_fraction: float = 0.1
    hot_rows: int = 8
    write_fraction: float = 0.25
    cacheline_bytes: int = 64
    row_bytes: int = 8192
    seed: int = 0

    @classmethod
    def for_intensity(cls, intensity: MemoryIntensity, seed: int = 0,
                      entries: int = 20_000) -> "BenignConfig":
        """Preset parameters per intensity bucket.

        High-intensity workloads have short bubbles, little temporal reuse,
        and footprints far larger than the LLC; low-intensity workloads have
        long bubbles and mostly cache-resident working sets.
        """

        if intensity is MemoryIntensity.HIGH:
            return cls(
                intensity=intensity,
                entries=entries,
                footprint_bytes=2 * 1024 * 1024,
                mean_bubble=8,
                streaming_probability=0.40,
                reuse_probability=0.40,
                hot_fraction=0.10,
                hot_rows=16,
                seed=seed,
            )
        if intensity is MemoryIntensity.MEDIUM:
            return cls(
                intensity=intensity,
                entries=entries,
                footprint_bytes=1024 * 1024,
                mean_bubble=16,
                streaming_probability=0.40,
                reuse_probability=0.50,
                hot_fraction=0.08,
                hot_rows=8,
                seed=seed,
            )
        return cls(
            intensity=intensity,
            entries=entries,
            footprint_bytes=192 * 1024,
            mean_bubble=40,
            streaming_probability=0.40,
            reuse_probability=0.55,
            hot_fraction=0.05,
            hot_rows=4,
            seed=seed,
        )


def generate_benign_trace(config: BenignConfig,
                          name: Optional[str] = None) -> Trace:
    """Generate a synthetic benign trace from ``config``."""

    rng = random.Random(config.seed)
    lines_in_footprint = max(1, config.footprint_bytes // config.cacheline_bytes)
    lines_per_row = max(1, config.row_bytes // config.cacheline_bytes)
    rows_in_footprint = max(1, lines_in_footprint // lines_per_row)

    hot_row_ids = [
        rng.randrange(rows_in_footprint) for _ in range(config.hot_rows)
    ] or [0]

    # Build the trace columns directly (no per-entry objects): the columnar
    # Trace materialises TraceEntry views lazily only where they are needed.
    bubbles = array("q")
    addresses = array("Q")
    flags = bytearray()
    recent_lines: list = []
    current_line = rng.randrange(lines_in_footprint)
    p_hot = config.hot_fraction
    p_reuse = p_hot + config.reuse_probability
    p_stream = p_reuse + config.streaming_probability
    for _ in range(config.entries):
        bubble = max(0, int(rng.expovariate(1.0 / max(1, config.mean_bubble))))
        roll = rng.random()
        if roll < p_hot:
            # Revisit a hot row at a random column.
            row = hot_row_ids[rng.randrange(len(hot_row_ids))]
            current_line = row * lines_per_row + rng.randrange(lines_per_row)
        elif roll < p_reuse and recent_lines:
            # Temporal locality: re-touch a recently used cacheline.
            current_line = recent_lines[rng.randrange(len(recent_lines))]
        elif roll < p_stream:
            # Continue the current stream.
            current_line = (current_line + 1) % lines_in_footprint
        else:
            # Jump somewhere else in the footprint.
            current_line = rng.randrange(lines_in_footprint)
        recent_lines.append(current_line)
        if len(recent_lines) > config.reuse_window:
            recent_lines.pop(0)
        bubbles.append(bubble)
        addresses.append(current_line * config.cacheline_bytes)
        flags.append(FLAG_WRITE if rng.random() < config.write_fraction else 0)

    label = name or f"benign_{config.intensity.value}_{config.seed}"
    return Trace.from_columns(bubbles, addresses, flags, name=label, loop=True)


def generate_intensity_trace(letter: str, seed: int = 0,
                             entries: int = 20_000) -> Trace:
    """Generate a benign trace from an intensity letter (``"H"/"M"/"L"``)."""

    intensity = MemoryIntensity.from_letter(letter)
    config = BenignConfig.for_intensity(intensity, seed=seed, entries=entries)
    return generate_benign_trace(config)

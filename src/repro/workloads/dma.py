"""DMA-style streaming workload generation.

BreakHammer's §4.4 extension throttles request generators that have no
cache in front of them — DMA engines, accelerators, cacheless cores — by
capping their *outstanding* requests instead of their cache-miss buffers.
To exercise that path (and the controller's uncached request handling) at
the workload level, this module generates traces that behave like a DMA
engine's access stream:

* every access bypasses the cache hierarchy (``bypass_cache=True``), so it
  always reaches DRAM and always occupies an MSHR-table slot;
* accesses stream sequentially through a buffer in fixed-size bursts — the
  row-buffer-friendly pattern of a real copy/fill engine — with a
  configurable read/write split (a copy is reads, a fill is writes);
* a small inter-burst gap models the engine's descriptor fetch / pacing.

The ``"D"`` letter in :func:`repro.workloads.mixes.make_mix` places one of
these streams on a core, so mixes like ``"HMDA"`` pit benign, DMA, and
attacker traffic against each other under one mitigation.
"""

from __future__ import annotations

import random
from array import array
from dataclasses import dataclass
from typing import Optional

from repro.cpu.trace import FLAG_BYPASS, FLAG_WRITE, Trace


@dataclass(frozen=True)
class DmaConfig:
    """Parameters of a DMA-style streaming trace."""

    entries: int = 4_000
    #: Size of the buffer the engine streams over (wraps around).
    buffer_bytes: int = 1024 * 1024
    #: Consecutive cachelines touched per burst before the inter-burst gap.
    burst_lines: int = 8
    #: Non-memory "instructions" between bursts (descriptor fetch/pacing);
    #: intra-burst accesses are back to back.
    gap_bubbles: int = 4
    #: Fraction of accesses that are writes (0.0 = pure copy source read
    #: stream, 1.0 = pure fill).
    write_fraction: float = 0.5
    cacheline_bytes: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError("a DMA trace needs at least one entry")
        if self.burst_lines <= 0:
            raise ValueError("burst_lines must be positive")
        if self.cacheline_bytes <= 0:
            raise ValueError("cacheline_bytes must be positive")
        if self.gap_bubbles < 0:
            raise ValueError("gap_bubbles cannot be negative")
        if self.buffer_bytes < self.cacheline_bytes:
            raise ValueError("buffer must hold at least one cacheline")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be within [0, 1]")


def generate_dma_trace(config: Optional[DmaConfig] = None,
                       name: str = "dma") -> Trace:
    """Generate a cache-bypassing streaming trace from ``config``."""

    config = config or DmaConfig()
    rng = random.Random(config.seed)
    lines_in_buffer = max(1, config.buffer_bytes // config.cacheline_bytes)

    bubbles = array("q")
    addresses = array("Q")
    flags = bytearray()
    line = rng.randrange(lines_in_buffer)
    for index in range(config.entries):
        at_burst_start = index % config.burst_lines == 0
        bubbles.append(config.gap_bubbles if at_burst_start and index else 0)
        addresses.append(line * config.cacheline_bytes)
        flag = FLAG_BYPASS
        if rng.random() < config.write_fraction:
            flag |= FLAG_WRITE
        flags.append(flag)
        line = (line + 1) % lines_in_buffer

    return Trace.from_columns(bubbles, addresses, flags, name=name, loop=True)

"""Workload generation.

The paper drives its evaluation with memory traces of SPEC CPU2006/2017,
TPC, MediaBench, and YCSB applications, grouped by memory intensity into
High / Medium / Low buckets, plus a malicious application that mounts a
memory performance attack by triggering RowHammer-preventive actions.

Those proprietary trace files are not redistributable, so this package
generates synthetic equivalents calibrated to the observable characteristics
the paper reports (Table 3): misses-per-kilo-instruction buckets, row-buffer
locality, and per-row activation pressure.  See DESIGN.md §2 for the
substitution rationale.

* :mod:`repro.workloads.synthetic` — benign trace generators,
* :mod:`repro.workloads.attacker` — RowHammer/memory-performance attacker
  (double-sided, many-sided, and half-double hammering geometries),
* :mod:`repro.workloads.dma` — DMA-style cache-bypassing streams (§4.4),
* :mod:`repro.workloads.mixes` — the paper's workload mixes (HHHH … LLLA),
* :mod:`repro.workloads.characteristics` — Table 3 characterisation,
* :mod:`repro.workloads.ingest` — real-trace ingestion: external trace
  files imported into a spec-addressable :class:`WorkloadCatalog`
  (``"ingest:<name> x<cores>"`` mixes, ``REPRO_WORKLOAD_DIR``); imported
  lazily so the generator modules stay dependency-light,
* :mod:`repro.workloads.spool` — columnar mmap trace spool for workers.
"""

from repro.workloads.attacker import AttackerConfig, generate_attacker_trace
from repro.workloads.dma import DmaConfig, generate_dma_trace
from repro.workloads.characteristics import (
    WorkloadCharacteristics,
    characterize_trace,
    characterize_suite,
)
from repro.workloads.mixes import (
    ATTACK_MIXES,
    BENIGN_MIXES,
    WorkloadMix,
    make_mix,
    mix_names,
)
from repro.workloads.synthetic import (
    BenignConfig,
    MemoryIntensity,
    generate_benign_trace,
)

__all__ = [
    "ATTACK_MIXES",
    "AttackerConfig",
    "BENIGN_MIXES",
    "BenignConfig",
    "DmaConfig",
    "MemoryIntensity",
    "WorkloadCharacteristics",
    "WorkloadMix",
    "characterize_suite",
    "characterize_trace",
    "generate_attacker_trace",
    "generate_benign_trace",
    "generate_dma_trace",
    "make_mix",
    "mix_names",
]

"""Attacker workload generation.

The paper's attacker is a malicious application that mounts a *memory
performance attack*: it hammers aggressor rows so that the deployed
RowHammer mitigation mechanism performs many RowHammer-preventive actions,
which in turn hog DRAM bandwidth and slow every benign application down.

The generator crafts an access stream that maximises row activations:

* aggressor rows are spread across banks so activations are limited only by
  rank-level timing (tRRD / tFAW), not by a single bank's tRC;
* within a bank the attacker alternates between two aggressor rows
  (double-sided hammering), so every access causes a row-buffer conflict and
  therefore an activation;
* consecutive visits to a row touch different cachelines, and the total
  footprint is sized to exceed the LLC, so accesses are not absorbed by the
  cache (the trace-level equivalent of the ``clflush``-based eviction real
  attacks use).

Addresses are constructed through the DRAM address mapper so that the
intended (bank, row) targeting survives whatever interleaving the memory
controller applies.
"""

from __future__ import annotations

import random
from array import array
from dataclasses import dataclass
from typing import List, Optional

from repro.cpu.trace import FLAG_BYPASS, Trace
from repro.dram.address import AddressMapper, MappingScheme
from repro.dram.config import DeviceConfig

#: Registered hammering geometries.  ``double_sided`` is the paper's
#: attacker (two aggressors per bank, alternating).  ``many_sided``
#: spreads activations over many tightly spaced aggressors per bank (the
#: TRR-evasion pattern: each row stays under a sampler's radar while the
#: bank's total preventive-action pressure grows).  ``half_double``
#: hammers distance-2 "far" aggressors heavily and recruits the
#: distance-1 "near" rows with occasional accesses, the trace-level model
#: of the Half-Double access pattern.
ATTACK_PATTERNS = ("double_sided", "many_sided", "half_double")


@dataclass(frozen=True)
class AttackerConfig:
    """Parameters of the hammering attacker."""

    entries: int = 30_000
    #: Number of banks the attacker hammers concurrently.  Fewer banks
    #: concentrate activations on fewer rows (more mitigation triggers);
    #: more banks hog more bandwidth.
    banks_used: int = 8
    #: Aggressor rows per bank (2 = double-sided pair per bank).
    rows_per_bank: int = 2
    #: Distinct cachelines touched per row visit.
    columns_per_row: int = 64
    #: Whether the attacker's accesses bypass the cache hierarchy (the
    #: trace-level model of the clflush/eviction every real attack uses).
    bypass_cache: bool = True
    #: Non-memory instructions between attacker accesses (0 = as fast as
    #: possible, the worst case for the memory system).
    mean_bubble: int = 0
    #: Base row index for aggressors; rows are spaced to avoid each other's
    #: blast radius.
    base_row: int = 64
    row_stride: int = 4
    seed: int = 0
    #: Hammering geometry (see :data:`ATTACK_PATTERNS`).
    pattern: str = "double_sided"
    #: Aggressors per bank for the ``many_sided`` pattern.
    many_sides: int = 8

    def __post_init__(self) -> None:
        if self.banks_used <= 0 or self.rows_per_bank <= 0:
            raise ValueError("attacker needs at least one bank and one row")
        if self.columns_per_row <= 0:
            raise ValueError("columns_per_row must be positive")
        if self.pattern not in ATTACK_PATTERNS:
            raise ValueError(
                f"unknown attack pattern {self.pattern!r}; "
                f"one of {ATTACK_PATTERNS}"
            )
        if self.many_sides < 2:
            raise ValueError("many_sided needs at least two aggressors")


def _bank_coordinates(device: DeviceConfig, banks_used: int) -> List[tuple]:
    """Pick ``banks_used`` distinct (rank, bank_group, bank) tuples."""

    coordinates = []
    for rank in range(device.ranks):
        for bank_group in range(device.bank_groups):
            for bank in range(device.banks_per_group):
                coordinates.append((rank, bank_group, bank))
    if banks_used > len(coordinates):
        banks_used = len(coordinates)
    # Spread selections across ranks/bank groups for maximum parallelism.
    step = max(1, len(coordinates) // banks_used)
    return [coordinates[i * step] for i in range(banks_used)]


def _pattern_row_sequence(config: AttackerConfig,
                          device: DeviceConfig) -> List[int]:
    """The per-bank aggressor row *visit sequence* of ``config.pattern``.

    The sequence may repeat rows: repeats encode hammer weighting (the
    half-double far rows are visited twice per near-row visit).
    Consecutive entries always differ, so every visit within a bank is a
    row-buffer conflict and therefore an activation.
    """

    rows_per_bank = device.rows_per_bank
    base = config.base_row
    if config.pattern == "many_sided":
        # Tightly packed aggressors (stride 2 leaves one victim row
        # between neighbours); each row gets 1/many_sides of the bank's
        # activations, staying under per-row samplers.
        return [(base + r * 2) % rows_per_bank
                for r in range(config.many_sides)]
    if config.pattern == "half_double":
        # Victims sit at base+2 and base+3; the far aggressors (distance
        # 2: base, base+5) are hammered twice per visit to each near row
        # (distance 1: base+1, base+4).
        far = [base % rows_per_bank, (base + 5) % rows_per_bank]
        near = [(base + 1) % rows_per_bank, (base + 4) % rows_per_bank]
        return [far[0], far[1], far[0], far[1], near[0], near[1]]
    return [(base + r * config.row_stride) % rows_per_bank
            for r in range(config.rows_per_bank)]


def generate_attacker_trace(device: Optional[DeviceConfig] = None,
                            config: Optional[AttackerConfig] = None,
                            mapping: MappingScheme = MappingScheme.MOP,
                            name: str = "attacker") -> Trace:
    """Generate a hammering trace targeting ``device``'s geometry."""

    device = device or DeviceConfig.ddr5_4800(rows_per_bank=4096)
    config = config or AttackerConfig()
    mapper = AddressMapper(device, mapping)
    rng = random.Random(config.seed)

    banks = _bank_coordinates(device, config.banks_used)
    # Build the aggressor visit sequence: the pattern's per-bank row
    # sequence in each selected bank (repeats encode hammer weighting).
    row_sequence = _pattern_row_sequence(config, device)
    aggressors: List[tuple] = []
    for rank, bank_group, bank in banks:
        for row in row_sequence:
            aggressors.append((rank, bank_group, bank, row))

    columns_available = device.cachelines_per_row
    columns = min(config.columns_per_row, columns_available)

    bubbles = array("q")
    addresses = array("Q")
    flags = bytearray()
    flag = FLAG_BYPASS if config.bypass_cache else 0
    column_cursor = [0] * len(aggressors)
    index = 0
    for _ in range(config.entries):
        rank, bank_group, bank, row = aggressors[index]
        cursor = column_cursor[index]
        column = (cursor * max(1, columns_available // columns)) % columns_available
        column_cursor[index] = (cursor + 1) % columns
        address = mapper.address_for_row(
            channel=0, rank=rank, bank_group=bank_group, bank=bank,
            row=row, column=column,
        )
        bubble = (
            0 if config.mean_bubble == 0
            else max(0, int(rng.expovariate(1.0 / config.mean_bubble)))
        )
        bubbles.append(bubble)
        addresses.append(address)
        flags.append(flag)
        # Round-robin over aggressors; consecutive accesses hit different
        # banks, and returning to a bank lands on its *other* aggressor row,
        # forcing a row-buffer conflict (double-sided hammering).
        index = (index + 1) % len(aggressors)

    return Trace.from_columns(bubbles, addresses, flags, name=name, loop=True)


def aggressor_rows(device: DeviceConfig, config: AttackerConfig) -> List[tuple]:
    """The (rank, bank_group, bank, row) tuples the attacker hammers.

    Exposed so tests can verify that the generated trace really activates
    the intended rows.  Weighting repeats in the visit sequence are
    deduplicated: this is the aggressor *set*.
    """

    banks = _bank_coordinates(device, config.banks_used)
    row_sequence = list(dict.fromkeys(_pattern_row_sequence(config, device)))
    rows = []
    for rank, bank_group, bank in banks:
        for row in row_sequence:
            rows.append((rank, bank_group, bank, row))
    return rows

"""Workload mixes.

The paper builds six benign four-core mixes (HHHH, HHMM, MMMM, HHLL, MMLL,
LLLL) and six attack mixes in which the last application is replaced by the
malicious hammering thread (HHHA, HHMA, MMMA, HLLA, MMLA, LLLA).  A
:class:`WorkloadMix` bundles the per-core traces with the attacker-thread
set so the simulator and the metrics know which cores are benign.

Each core's addresses are placed in a disjoint region of physical memory (as
separate processes would be), except the attacker, whose addresses are
crafted against specific DRAM rows.
"""

from __future__ import annotations

import dataclasses
from array import array
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cpu.trace import Trace
from repro.dram.address import MappingScheme
from repro.dram.config import DeviceConfig
from repro.workloads.attacker import AttackerConfig, generate_attacker_trace
from repro.workloads.dma import DmaConfig, generate_dma_trace
from repro.workloads.synthetic import (
    BenignConfig,
    MemoryIntensity,
    generate_benign_trace,
)

#: The paper's benign mixes (Fig. 13-17).
BENIGN_MIXES: List[str] = ["HHHH", "HHMM", "MMMM", "HHLL", "MMLL", "LLLL"]

#: The paper's attack mixes (Fig. 6-12); ``A`` denotes the attacker.
ATTACK_MIXES: List[str] = ["HHHA", "HHMA", "MMMA", "HLLA", "MMLA", "LLLA"]

#: Attacker mix letters -> hammering geometry (``A`` is the paper's
#: double-sided attacker; ``S`` and ``X`` place the many-sided and
#: half-double pattern variants, see :data:`repro.workloads.attacker
#: .ATTACK_PATTERNS`).
ATTACKER_LETTERS: Dict[str, str] = {
    "A": "double_sided",
    "S": "many_sided",
    "X": "half_double",
}

#: Short attacker-trace name tags, one per attacker letter (distinct names
#: keep the per-trace standalone-IPC cache keys from aliasing).
_ATTACKER_TAGS: Dict[str, str] = {"A": "", "S": "ms_", "X": "hd_"}

#: Every letter :func:`make_mix` can place on a core.
MIX_LETTER_SET = frozenset("HMLD") | frozenset(ATTACKER_LETTERS)


@dataclass
class WorkloadMix:
    """A named multi-core workload."""

    name: str
    traces: List[Trace]
    attacker_threads: List[int] = field(default_factory=list)

    @property
    def num_cores(self) -> int:
        return len(self.traces)

    @property
    def benign_threads(self) -> List[int]:
        return [
            i for i in range(self.num_cores) if i not in self.attacker_threads
        ]

    @property
    def has_attacker(self) -> bool:
        return bool(self.attacker_threads)

    def intensity_letters(self) -> str:
        return self.name


def mix_names(with_attacker: bool) -> List[str]:
    """The canonical mix-name list for attack or all-benign studies."""

    return list(ATTACK_MIXES if with_attacker else BENIGN_MIXES)


def offset_trace(trace: Trace, offset_bytes: int) -> Trace:
    """Shift every address in ``trace`` by ``offset_bytes``."""

    bubbles, addresses, flags = trace.columns
    shifted = array(addresses.typecode,
                    (address + offset_bytes for address in addresses))
    return Trace.from_columns(array(bubbles.typecode, bubbles), shifted,
                              bytearray(flags), name=trace.name,
                              loop=trace.loop)


def make_mix(
    name: str,
    device: Optional[DeviceConfig] = None,
    mapping: MappingScheme = MappingScheme.MOP,
    entries_per_core: int = 20_000,
    attacker_entries: int = 30_000,
    seed: int = 0,
    region_bytes: int = 64 * 1024 * 1024,
    attacker_config: Optional[AttackerConfig] = None,
) -> WorkloadMix:
    """Build a four-core (or arbitrary-length) workload mix by name.

    ``name`` is a string of intensity letters (``H``, ``M``, ``L``) with an
    optional trailing/embedded attacker letter, e.g. ``"HHMA"``: ``A`` is
    the paper's double-sided attacker, ``S`` the many-sided variant and
    ``X`` the half-double variant (see :data:`ATTACKER_LETTERS`).
    A ``D`` places a DMA-style cache-bypassing streaming workload (see
    :mod:`repro.workloads.dma`) on that core; like benign cores it gets its
    own physical-memory region, and it is *not* an attacker thread.
    ``seed`` varies the benign traces so several instances of the same mix
    (the paper uses 15 per mix) are statistically distinct.

    An ``"ingest:<name>[ x<cores>]"`` string instead loads copies of an
    ingested catalog workload (:func:`repro.workloads.ingest.catalog_mix`).
    Unknown letters are rejected here, up front, with the available
    alphabet — not deep inside trace generation.
    """

    from repro.workloads.ingest.catalog import catalog_mix, is_catalog_mix

    if is_catalog_mix(name):
        return catalog_mix(name, region_bytes=region_bytes)

    unknown = set(name.upper()) - MIX_LETTER_SET
    if unknown:
        raise ValueError(
            f"mix {name!r} uses unknown workload letters {sorted(unknown)}; "
            f"available letters: {', '.join(sorted(MIX_LETTER_SET))} "
            "(or an 'ingest:<name> x<cores>' catalog mix)"
        )

    device = device or DeviceConfig.ddr5_4800(rows_per_bank=4096)
    traces: List[Trace] = []
    attacker_threads: List[int] = []

    for core_index, letter in enumerate(name.upper()):
        if letter in ATTACKER_LETTERS:
            pattern = ATTACKER_LETTERS[letter]
            config = attacker_config or AttackerConfig(
                entries=attacker_entries, seed=seed
            )
            if config.pattern != pattern:
                config = dataclasses.replace(config, pattern=pattern)
            trace = generate_attacker_trace(
                device=device,
                config=config,
                mapping=mapping,
                name=f"attacker_{_ATTACKER_TAGS[letter]}{seed}",
            )
            attacker_threads.append(core_index)
            traces.append(trace)
            continue
        if letter == "D":
            trace = generate_dma_trace(
                DmaConfig(entries=entries_per_core,
                          seed=seed * 101 + core_index),
                name=f"D{core_index}_{seed}",
            )
            traces.append(offset_trace(trace,
                                       (core_index + 1) * region_bytes))
            continue
        intensity = MemoryIntensity.from_letter(letter)
        benign_config = BenignConfig.for_intensity(
            intensity, seed=seed * 101 + core_index, entries=entries_per_core
        )
        trace = generate_benign_trace(
            benign_config,
            name=f"{letter}{core_index}_{seed}",
        )
        # Place each benign core in its own region of physical memory;
        # region 0 is reserved so benign rows do not collide with the
        # attacker's low-row aggressors.
        trace = offset_trace(trace, (core_index + 1) * region_bytes)
        traces.append(trace)

    return WorkloadMix(name=name.upper(), traces=traces,
                       attacker_threads=attacker_threads)


def make_all_mixes(with_attacker: bool,
                   device: Optional[DeviceConfig] = None,
                   seeds: Sequence[int] = (0,),
                   **kwargs) -> Dict[str, List[WorkloadMix]]:
    """Build every canonical mix for each seed, keyed by mix name."""

    result: Dict[str, List[WorkloadMix]] = {}
    for name in mix_names(with_attacker):
        result[name] = [
            make_mix(name, device=device, seed=seed, **kwargs) for seed in seeds
        ]
    return result

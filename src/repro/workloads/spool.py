"""Columnar trace spool: materialise a spec's workloads once, mmap many.

Sweep workers historically regenerated every trace deterministically from
``(config, seed)``.  That stays the correctness baseline (and the fallback
whenever a spool is unreachable), but a full-profile sweep regenerates the
same six mixes in every worker of every session.  A :class:`TraceSpool` is
a directory the session owner populates **once** — each mix's traces in the
binary columnar format plus a JSON manifest — after which every co-located
worker loads them with ``Trace.load_columnar(path, mmap=True)``: the
address/bubble/flag columns are mapped read-only straight out of the page
cache, so N workers share one physical copy instead of holding N.

Safety model mirrors the run cache:

* the manifest pins the trace-generation parameters **and the runner
  fingerprint** — a spool written for another scale, seed, or geometry is
  ignored (``load_mix`` returns ``None``) and the worker regenerates;
* writes are atomic (temp file + ``os.replace``) and the manifest is
  written last, so a concurrently materialising spool is either invisible
  or complete;
* any read problem — missing file, truncated column, foreign bytes —
  degrades to regeneration, never to wrong traces (the loaded columns are
  byte-identical to the generated ones, pinned by
  ``tests/test_trace_spool.py``).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.cpu.trace import Trace
from repro.workloads.mixes import WorkloadMix

#: Bump when the manifest schema or file layout changes.
SPOOL_VERSION = 1


class TraceSpool:
    """A directory of columnar trace files, one manifest per (mix, seed)."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory)

    # ------------------------------------------------------------------ #
    def _manifest_path(self, name: str, seed: int) -> Path:
        return self.directory / f"{name}-s{seed}.json"

    def _trace_path(self, name: str, seed: int, index: int) -> Path:
        return self.directory / f"{name}-s{seed}-{index}.rtrc"

    @staticmethod
    def _params(entries_per_core: int, attacker_entries: int,
                fingerprint: Optional[str]) -> dict:
        return {
            "version": SPOOL_VERSION,
            "entries_per_core": entries_per_core,
            "attacker_entries": attacker_entries,
            "fingerprint": fingerprint,
        }

    # ------------------------------------------------------------------ #
    def has_mix(self, name: str, seed: int, entries_per_core: int,
                attacker_entries: int,
                fingerprint: Optional[str] = None) -> bool:
        """Whether a matching, complete materialisation already exists."""

        manifest = self._read_manifest(name, seed, entries_per_core,
                                       attacker_entries, fingerprint)
        if manifest is None:
            return False
        return all(
            (self.directory / file_name).is_file()
            for file_name in manifest["traces"]
        )

    def dump_mix(self, mix: WorkloadMix, seed: int, entries_per_core: int,
                 attacker_entries: int,
                 fingerprint: Optional[str] = None) -> bool:
        """Materialise ``mix``; returns ``False`` when already spooled."""

        if self.has_mix(mix.name, seed, entries_per_core, attacker_entries,
                        fingerprint):
            return False
        self.directory.mkdir(parents=True, exist_ok=True)
        file_names = []
        for index, trace in enumerate(mix.traces):
            path = self._trace_path(mix.name, seed, index)
            self._atomic_dump(trace, path)
            file_names.append(path.name)
        manifest = dict(
            self._params(entries_per_core, attacker_entries, fingerprint),
            mix=mix.name,
            seed=seed,
            attacker_threads=list(mix.attacker_threads),
            traces=file_names,
        )
        self._atomic_write_text(self._manifest_path(mix.name, seed),
                                json.dumps(manifest, indent=2) + "\n")
        return True

    def load_mix(self, name: str, seed: int, entries_per_core: int,
                 attacker_entries: int, fingerprint: Optional[str] = None,
                 mmap: bool = True) -> Optional[WorkloadMix]:
        """The spooled mix, or ``None`` when absent/mismatched/damaged."""

        manifest = self._read_manifest(name, seed, entries_per_core,
                                       attacker_entries, fingerprint)
        if manifest is None:
            return None
        try:
            traces = [
                Trace.load_columnar(self.directory / file_name, mmap=mmap)
                for file_name in manifest["traces"]
            ]
        except (OSError, ValueError):
            return None  # damaged spool: fall back to regeneration
        return WorkloadMix(
            name=name,
            traces=traces,
            attacker_threads=list(manifest.get("attacker_threads", [])),
        )

    # ------------------------------------------------------------------ #
    def _read_manifest(self, name: str, seed: int, entries_per_core: int,
                       attacker_entries: int,
                       fingerprint: Optional[str]) -> Optional[dict]:
        try:
            manifest = json.loads(
                self._manifest_path(name, seed).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return None
        expected = self._params(entries_per_core, attacker_entries,
                                fingerprint)
        if not isinstance(manifest, dict):
            return None
        if any(manifest.get(key) != value for key, value in expected.items()):
            return None
        if not isinstance(manifest.get("traces"), list):
            return None
        return manifest

    def _atomic_dump(self, trace: Trace, path: Path) -> None:
        fd, temp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        os.close(fd)
        try:
            trace.dump_columnar(temp_name)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def _atomic_write_text(self, path: Path, text: str) -> None:
        fd, temp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

"""Workload characterisation (paper Table 3).

Table 3 summarises the most memory-intensive benchmarks by their row-buffer
misses per kilo-instruction (RBMPKI) and by the number of DRAM rows that
receive more than 512 / 128 / 64 activations within a 64 ms window — the
property that makes even benign applications capable of triggering
RowHammer-preventive actions at low thresholds.

:func:`characterize_trace` computes the same quantities for a synthetic
trace; :func:`characterize_suite` builds the whole table.  The module also
records the paper's published Table 3 rows so the benchmark harness can show
paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cpu.trace import Trace
from repro.dram.address import AddressMapper, MappingScheme
from repro.dram.config import DeviceConfig


@dataclass(frozen=True)
class WorkloadCharacteristics:
    """One row of a Table 3-style characterisation."""

    name: str
    rbmpki: float
    rows_over_512: int
    rows_over_128: int
    rows_over_64: int
    distinct_rows: int
    memory_accesses: int
    instructions: int

    def as_row(self) -> Dict[str, object]:
        return {
            "Workload": self.name,
            "RBMPKI": round(self.rbmpki, 2),
            "ACT-512+": self.rows_over_512,
            "ACT-128+": self.rows_over_128,
            "ACT-64+": self.rows_over_64,
        }


#: The paper's published Table 3 (RBMPKI and per-window activation counts).
PAPER_TABLE3: List[Dict[str, object]] = [
    {"Workload": "429.mcf", "RBMPKI": 68.27, "ACT-512+": 2564, "ACT-128+": 2564, "ACT-64+": 2564},
    {"Workload": "470.lbm", "RBMPKI": 28.09, "ACT-512+": 664, "ACT-128+": 6596, "ACT-64+": 7089},
    {"Workload": "462.libquantum", "RBMPKI": 25.95, "ACT-512+": 0, "ACT-128+": 0, "ACT-64+": 1},
    {"Workload": "549.fotonik3d", "RBMPKI": 25.28, "ACT-512+": 0, "ACT-128+": 88, "ACT-64+": 10065},
    {"Workload": "459.GemsFDTD", "RBMPKI": 24.93, "ACT-512+": 0, "ACT-128+": 218, "ACT-64+": 10572},
    {"Workload": "519.lbm", "RBMPKI": 24.37, "ACT-512+": 2482, "ACT-128+": 5455, "ACT-64+": 5824},
    {"Workload": "434.zeusmp", "RBMPKI": 22.24, "ACT-512+": 292, "ACT-128+": 4825, "ACT-64+": 11085},
    {"Workload": "510.parest", "RBMPKI": 17.79, "ACT-512+": 94, "ACT-128+": 185, "ACT-64+": 803},
]


def characterize_trace(trace: Trace,
                       device: Optional[DeviceConfig] = None,
                       mapping: MappingScheme = MappingScheme.MOP,
                       window_entries: Optional[int] = None,
                       backend: str = "auto") -> WorkloadCharacteristics:
    """Compute Table 3 quantities for one trace.

    RBMPKI here counts *memory accesses* per kilo-instruction at trace level
    (an upper bound on row-buffer misses; the LLC filters some of them at
    simulation time), which is sufficient for assigning intensity buckets.

    ``backend`` selects the characterisation implementation (``"numpy"``
    vectorises over the trace columns, ``"scalar"`` is the reference loop,
    ``"auto"`` prefers numpy when available); both are result-identical.
    """

    device = device or DeviceConfig.ddr5_4800(rows_per_bank=4096)
    mapper = AddressMapper(device, mapping)
    stats = trace.characterize(mapper, window_entries=window_entries,
                               backend=backend)
    return WorkloadCharacteristics(
        name=trace.name,
        rbmpki=stats.rbmpki,
        rows_over_512=stats.rows_over_512,
        rows_over_128=stats.rows_over_128,
        rows_over_64=stats.rows_over_64,
        distinct_rows=stats.distinct_rows,
        memory_accesses=stats.memory_accesses,
        instructions=stats.instructions,
    )


def characterize_suite(traces: Sequence[Trace],
                       device: Optional[DeviceConfig] = None,
                       mapping: MappingScheme = MappingScheme.MOP,
                       backend: str = "auto"
                       ) -> List[WorkloadCharacteristics]:
    """Characterise a list of traces, sorted by descending RBMPKI."""

    rows = [characterize_trace(trace, device, mapping, backend=backend)
            for trace in traces]
    return sorted(rows, key=lambda r: r.rbmpki, reverse=True)


def average_row(rows: Sequence[WorkloadCharacteristics]) -> Dict[str, object]:
    """The "Average" summary row of Table 3."""

    if not rows:
        raise ValueError("need at least one characterised workload")
    n = len(rows)
    return {
        "Workload": "Average",
        "RBMPKI": round(sum(r.rbmpki for r in rows) / n, 3),
        "ACT-512+": round(sum(r.rows_over_512 for r in rows) / n),
        "ACT-128+": round(sum(r.rows_over_128 for r in rows) / n),
        "ACT-64+": round(sum(r.rows_over_64 for r in rows) / n),
    }

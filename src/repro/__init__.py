"""repro — a from-scratch Python reproduction of BreakHammer (MICRO 2024).

BreakHammer reduces the performance and energy overheads of RowHammer
mitigation mechanisms by observing which hardware threads trigger
RowHammer-preventive actions and throttling the memory bandwidth usage
(LLC MSHR quota) of the suspects.

Top-level convenience imports cover the most common entry points::

    from repro import (
        BreakHammer, BreakHammerConfig,       # the core mechanism
        SystemConfig, SimulationConfig,       # system description
        Simulator,                            # run a simulation
        make_mix,                             # build workload mixes
        ExperimentSpec, Session,              # declarative sweeps (repro.api)
        ExperimentRunner, HarnessConfig,      # legacy figure harness (shim)
    )

See README.md for a quickstart and DESIGN.md for the system inventory; the
declarative experiment surface lives in :mod:`repro.api`
(``python -m repro.api run <spec.toml>``).
"""

from repro.analysis.experiments import ExperimentRunner, HarnessConfig
from repro.api import ExperimentSpec, RunPoint, Session
from repro.core.breakhammer import BreakHammer, BreakHammerConfig
from repro.core.security import SecurityAnalysis, max_attacker_score_ratio
from repro.dram.config import DeviceConfig
from repro.mitigations.registry import (
    NRH_SWEEP,
    PAIRED_MECHANISMS,
    available_mechanisms,
    create_mechanism,
)
from repro.sim.config import SimulationConfig, SystemConfig
from repro.sim.simulator import SimulationResult, Simulator, run_simulation
from repro.workloads.mixes import WorkloadMix, make_mix

__version__ = "1.0.0"

__all__ = [
    "BreakHammer",
    "BreakHammerConfig",
    "DeviceConfig",
    "ExperimentRunner",
    "ExperimentSpec",
    "HarnessConfig",
    "NRH_SWEEP",
    "RunPoint",
    "Session",
    "PAIRED_MECHANISMS",
    "SecurityAnalysis",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "SystemConfig",
    "WorkloadMix",
    "available_mechanisms",
    "create_mechanism",
    "make_mix",
    "max_attacker_score_ratio",
    "run_simulation",
    "__version__",
]

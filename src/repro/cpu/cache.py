"""A set-associative last-level cache model.

The paper's system uses a shared 8 MiB, 8-way, 64-byte-line LLC.  The cache
model implements LRU replacement, write-back/write-allocate semantics, and
exposes the statistics the rest of the system needs (hits, misses, evictions,
writebacks, per-thread miss counts).

Latency handling is intentionally simple: the cache itself is modelled with a
fixed hit latency; misses are handed to the MSHR file / memory controller by
the system wiring (the cache only classifies accesses and manages tags).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of a cache."""

    size_bytes: int = 8 * 1024 * 1024
    associativity: int = 8
    line_bytes: int = 64
    hit_latency: int = 20  # cycles from access to data for an LLC hit

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.line_bytes) != 0:
            raise ValueError(
                "cache size must be a multiple of associativity * line size"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass
class CacheStats:
    """Counters maintained by the cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    hits_by_thread: Dict[int, int] = field(default_factory=dict)
    misses_by_thread: Dict[int, int] = field(default_factory=dict)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def record(self, hit: bool, thread_id: Optional[int]) -> None:
        if hit:
            self.hits += 1
            if thread_id is not None:
                self.hits_by_thread[thread_id] = (
                    self.hits_by_thread.get(thread_id, 0) + 1
                )
        else:
            self.misses += 1
            if thread_id is not None:
                self.misses_by_thread[thread_id] = (
                    self.misses_by_thread.get(thread_id, 0) + 1
                )


@dataclass
class CacheLine:
    """Tag-store entry."""

    tag: int
    dirty: bool = False
    owner_thread: Optional[int] = None


@dataclass
class AccessResult:
    """Outcome of a cache access."""

    hit: bool
    latency: int
    writeback_address: Optional[int] = None


class SetAssociativeCache:
    """An LRU set-associative cache (tag store only, no data)."""

    def __init__(self, config: Optional[CacheConfig] = None,
                 name: str = "llc") -> None:
        self.config = config or CacheConfig()
        self.name = name
        # One insertion-ordered dict per set: key = tag, order = LRU
        # (front = LRU).  Plain dicts preserve insertion order and are
        # faster than OrderedDict on this, the hottest lookup path.
        self._sets: List[dict] = [
            {} for _ in range(self.config.num_sets)
        ]
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    def _index_and_tag(self, address: int) -> Tuple[int, int]:
        line_address = address // self.config.line_bytes
        index = line_address % self.config.num_sets
        tag = line_address // self.config.num_sets
        return index, tag

    def line_address(self, address: int) -> int:
        """The cacheline-aligned address for ``address``."""

        return (address // self.config.line_bytes) * self.config.line_bytes

    # ------------------------------------------------------------------ #
    def probe(self, address: int) -> bool:
        """Check residency without updating LRU state or statistics."""

        index, tag = self._index_and_tag(address)
        return tag in self._sets[index]

    def access_if_resident(self, address: int, is_write: bool = False,
                           thread_id: Optional[int] = None
                           ) -> Optional[AccessResult]:
        """Perform the access only if the line is resident.

        Returns the hit result, or ``None`` — recording *nothing* — when the
        line is absent.  The system's send path uses this to fuse the old
        probe-then-access pair into one tag lookup: a stalled-and-retried
        miss must not inflate the miss statistics, so the miss is recorded
        separately (via :meth:`access`) only once the access is accepted.
        """

        index, tag = self._index_and_tag(address)
        target_set = self._sets[index]
        if tag not in target_set:
            return None
        line = target_set.pop(tag)
        if is_write:
            line.dirty = True
        line.owner_thread = thread_id
        target_set[tag] = line  # move to MRU position
        self.stats.record(True, thread_id)
        return AccessResult(hit=True, latency=self.config.hit_latency)

    def access(self, address: int, is_write: bool = False,
               thread_id: Optional[int] = None) -> AccessResult:
        """Perform an access; on a miss the line is *not* yet filled.

        The caller is responsible for requesting the line from memory and
        calling :meth:`fill` when the data returns.  This mirrors how an MSHR
        based hierarchy works and lets BreakHammer's MSHR quotas gate fills.
        """

        result = self.access_if_resident(address, is_write=is_write,
                                         thread_id=thread_id)
        if result is not None:
            return result
        self.stats.record(False, thread_id)
        return AccessResult(hit=False, latency=self.config.hit_latency)

    def fill(self, address: int, is_write: bool = False,
             thread_id: Optional[int] = None) -> Optional[int]:
        """Install a line after its memory request returned.

        Returns the writeback address of the evicted dirty victim, if any.
        """

        index, tag = self._index_and_tag(address)
        target_set = self._sets[index]
        writeback: Optional[int] = None
        if tag in target_set:
            line = target_set.pop(tag)
            line.dirty = line.dirty or is_write
            target_set[tag] = line
            return None
        if len(target_set) >= self.config.associativity:
            victim_tag = next(iter(target_set))  # oldest entry = LRU
            victim = target_set.pop(victim_tag)
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
                victim_line_address = (
                    victim_tag * self.config.num_sets + index
                ) * self.config.line_bytes
                writeback = victim_line_address
        target_set[tag] = CacheLine(tag=tag, dirty=is_write,
                                    owner_thread=thread_id)
        return writeback

    # ------------------------------------------------------------------ #
    def occupancy(self) -> float:
        lines = sum(len(s) for s in self._sets)
        return lines / self.config.num_lines

    def invalidate_all(self) -> None:
        for target_set in self._sets:
            target_set.clear()

    def mpki(self, instructions: int) -> float:
        """Misses per kilo-instruction over ``instructions`` retired."""

        if instructions <= 0:
            return 0.0
        return 1000.0 * self.stats.misses / instructions

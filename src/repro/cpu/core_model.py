"""Trace-driven core model.

Each :class:`Core` replays one memory-access trace.  The model follows the
style used by Ramulator-class simulators: a core issues up to ``issue_width``
instructions per cycle; non-memory instructions retire immediately, memory
instructions are sent to the cache hierarchy and occupy the instruction
window until their data returns (reads) or immediately retire (writes).

The core stalls when

* its instruction window is full of outstanding loads, or
* the memory hierarchy refuses the access — e.g. because the thread's MSHR
  quota is exhausted (this is precisely how BreakHammer slows a suspect
  thread down), or the controller's request queue is full.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.cpu.trace import Trace, TraceCursor, TraceEntry

# The system gives each core a send function: (core, trace_entry) -> bool.
# Returning False means the hierarchy cannot accept the access this cycle
# (e.g. the thread's MSHR quota is exhausted) and the core must retry.
SendFunction = Callable[["Core", TraceEntry], bool]


@dataclass(frozen=True)
class CoreConfig:
    """Microarchitectural parameters of a core (paper Table 1)."""

    issue_width: int = 4
    instruction_window: int = 128
    frequency_ghz: float = 4.2

    def __post_init__(self) -> None:
        if self.issue_width <= 0:
            raise ValueError("issue width must be positive")
        if self.instruction_window <= 0:
            raise ValueError("instruction window must be positive")


@dataclass
class CoreStats:
    """Progress counters for one core."""

    retired_instructions: int = 0
    retired_memory_accesses: int = 0
    issued_loads: int = 0
    issued_stores: int = 0
    stall_cycles_window: int = 0
    stall_cycles_reject: int = 0
    active_cycles: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class Core:
    """A trace-driven, in-order-issue core with out-of-order completion."""

    def __init__(self, core_id: int, trace: Trace,
                 config: Optional[CoreConfig] = None,
                 send: Optional[SendFunction] = None) -> None:
        self.core_id = core_id
        self.trace = trace
        self.config = config or CoreConfig()
        self.send = send
        self.cursor: TraceCursor = trace.cursor()
        self.stats = CoreStats()

        # Bubbles remaining before the current memory access can issue.
        self._bubbles_left: Optional[int] = None
        self._pending_entry: Optional[TraceEntry] = None
        # Loads in flight (window occupancy).
        self.outstanding_loads = 0
        self.finished = False
        self.finish_cycle: Optional[int] = None

    # ------------------------------------------------------------------ #
    def attach_send(self, send: SendFunction) -> None:
        self.send = send

    @property
    def thread_id(self) -> int:
        """Hardware-thread identity used for activation attribution."""

        return self.core_id

    @property
    def retired_instructions(self) -> int:
        return self.stats.retired_instructions

    # ------------------------------------------------------------------ #
    def _load_next_entry(self) -> bool:
        if self._pending_entry is not None:
            return True
        entry = self.cursor.advance()
        if entry is None:
            return False
        self._pending_entry = entry
        self._bubbles_left = entry.bubble_count
        return True

    def tick(self, cycle: int) -> int:
        """Issue up to ``issue_width`` instructions; return how many issued."""

        if self.send is None:
            raise RuntimeError("core has no send function attached")
        if self.finished:
            return 0
        issued = 0
        stalled = False
        while issued < self.config.issue_width and not stalled:
            if not self._load_next_entry():
                # Trace exhausted (non-looping trace).
                self.finished = True
                self.finish_cycle = cycle
                break
            assert self._pending_entry is not None
            assert self._bubbles_left is not None

            if self._bubbles_left > 0:
                # Retire as many non-memory instructions as the width allows.
                retire = min(self._bubbles_left,
                             self.config.issue_width - issued)
                self._bubbles_left -= retire
                self.stats.retired_instructions += retire
                issued += retire
                continue

            # The memory access at the head of the window.
            if self.outstanding_loads >= self.config.instruction_window:
                self.stats.stall_cycles_window += 1
                stalled = True
                break
            entry = self._pending_entry
            accepted = self.send(self, entry)
            if not accepted:
                self.stats.stall_cycles_reject += 1
                stalled = True
                break
            issued += 1
            if entry.is_write:
                # Stores retire immediately (write buffer assumed).
                self.stats.issued_stores += 1
                self.stats.retired_instructions += 1
                self.stats.retired_memory_accesses += 1
            else:
                self.stats.issued_loads += 1
                self.outstanding_loads += 1
            self._pending_entry = None
            self._bubbles_left = None
        if issued:
            self.stats.active_cycles += 1
        return issued

    # ------------------------------------------------------------------ #
    def on_data_returned(self, cycle: int) -> None:
        """Callback from the memory hierarchy when a load completes."""

        if self.outstanding_loads <= 0:
            raise RuntimeError("data returned with no outstanding load")
        self.outstanding_loads -= 1
        self.stats.retired_instructions += 1
        self.stats.retired_memory_accesses += 1

    # ------------------------------------------------------------------ #
    def reached(self, instruction_limit: int) -> bool:
        """Has the core retired at least ``instruction_limit`` instructions?"""

        return self.stats.retired_instructions >= instruction_limit

    def ipc(self, cycles: int) -> float:
        if cycles <= 0:
            return 0.0
        return self.stats.retired_instructions / cycles

    def snapshot(self) -> Dict[str, object]:
        data = self.stats.as_dict()
        data.update(
            core_id=self.core_id,
            trace=self.trace.name,
            outstanding_loads=self.outstanding_loads,
            finished=self.finished,
        )
        return data

"""Trace-driven core model.

Each :class:`Core` replays one memory-access trace.  The model follows the
style used by Ramulator-class simulators: a core issues up to ``issue_width``
instructions per cycle; non-memory instructions retire immediately, memory
instructions are sent to the cache hierarchy and occupy the instruction
window until their data returns (reads) or immediately retire (writes).

The core stalls when

* its instruction window is full of outstanding loads, or
* the memory hierarchy refuses the access — e.g. because the thread's MSHR
  quota is exhausted (this is precisely how BreakHammer slows a suspect
  thread down), or the controller's request queue is full.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.cpu.trace import Trace, TraceCursor, TraceEntry

# The system gives each core a send function: (core, trace_entry) -> bool.
# Returning False means the hierarchy cannot accept the access this cycle
# (e.g. the thread's MSHR quota is exhausted) and the core must retry.
SendFunction = Callable[["Core", TraceEntry], bool]

# Why the last tick stalled; lets the fast-forward catch-up replay the
# per-cycle stall accounting the cycle engine would have performed.
_STALL_WINDOW = "window"
_STALL_REJECT = "reject"


@dataclass(frozen=True)
class CoreConfig:
    """Microarchitectural parameters of a core (paper Table 1)."""

    issue_width: int = 4
    instruction_window: int = 128
    frequency_ghz: float = 4.2

    def __post_init__(self) -> None:
        if self.issue_width <= 0:
            raise ValueError("issue width must be positive")
        if self.instruction_window <= 0:
            raise ValueError("instruction window must be positive")


@dataclass
class CoreStats:
    """Progress counters for one core."""

    retired_instructions: int = 0
    retired_memory_accesses: int = 0
    issued_loads: int = 0
    issued_stores: int = 0
    stall_cycles_window: int = 0
    stall_cycles_reject: int = 0
    active_cycles: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class Core:
    """A trace-driven, in-order-issue core with out-of-order completion."""

    def __init__(self, core_id: int, trace: Trace,
                 config: Optional[CoreConfig] = None,
                 send: Optional[SendFunction] = None) -> None:
        self.core_id = core_id
        self.trace = trace
        self.config = config or CoreConfig()
        self.send = send
        self.cursor: TraceCursor = trace.cursor()
        self.stats = CoreStats()

        # Bubbles remaining before the current memory access can issue.
        self._bubbles_left: Optional[int] = None
        self._pending_entry: Optional[TraceEntry] = None
        # Loads in flight (window occupancy).
        self.outstanding_loads = 0
        self.finished = False
        self.finish_cycle: Optional[int] = None
        # True when the last tick ended in a stall (full window or a
        # rejected access).  While stalled the core cannot make progress on
        # its own: only a data return or a memory-hierarchy state change —
        # both of which the fast-forward engine simulates as events — can
        # wake it, so stalled cores do not force per-cycle ticking.
        self.stalled = False
        # What kind of stall ended the last tick (None when it didn't);
        # unlike ``stalled`` this is not cleared by data returns, so the
        # next tick's catch-up can still attribute the skipped cycles.
        self._stall_kind: Optional[str] = None
        # Cycle of the last tick, used to replay skipped cycles (bubble
        # retirement or stall re-attempts) exactly when the fast-forward
        # engine jumps ahead.
        self._last_tick_cycle = 0

    # ------------------------------------------------------------------ #
    def attach_send(self, send: SendFunction) -> None:
        self.send = send

    @property
    def thread_id(self) -> int:
        """Hardware-thread identity used for activation attribution."""

        return self.core_id

    @property
    def retired_instructions(self) -> int:
        return self.stats.retired_instructions

    # ------------------------------------------------------------------ #
    def tick(self, cycle: int) -> int:
        """Issue up to ``issue_width`` instructions; return how many issued."""

        if self.send is None:
            raise RuntimeError("core has no send function attached")
        if self.finished:
            return 0
        elapsed = cycle - self._last_tick_cycle
        self._last_tick_cycle = cycle
        if elapsed > 1:
            # The fast-forward engine jumped over cycles it proved inert
            # for the rest of the system; replay what this core did in each
            # of them so its statistics match the cycle engine exactly.
            skipped = elapsed - 1
            if self._stall_kind is _STALL_WINDOW:
                # Re-checked the full window and re-stalled every cycle
                # (nothing that could unstall it happens between events).
                self.stats.stall_cycles_window += skipped
            elif self._stall_kind is _STALL_REJECT:
                # Re-sent the access and was re-rejected every cycle.
                self.stats.stall_cycles_reject += skipped
            elif self._bubbles_left:
                # Retired ``issue_width`` bubbles per skipped cycle
                # (next_event_cycle() bounds the jump so that is always
                # exactly what the cycle engine would have done).
                catch_up = min(self._bubbles_left,
                               skipped * self.config.issue_width)
                self._bubbles_left -= catch_up
                self.stats.retired_instructions += catch_up
                self.stats.active_cycles += skipped
        issued = 0
        stalled = False
        stall_kind = None
        stats = self.stats
        width = self.config.issue_width
        window = self.config.instruction_window
        while issued < width and not stalled:
            if self._pending_entry is None:
                next_entry = self.cursor.advance()
                if next_entry is None:
                    # Trace exhausted (non-looping trace).
                    self.finished = True
                    self.finish_cycle = cycle
                    break
                self._pending_entry = next_entry
                self._bubbles_left = next_entry.bubble_count
            bubbles = self._bubbles_left

            if bubbles:
                # Retire as many non-memory instructions as the width allows.
                retire = bubbles if bubbles < width - issued \
                    else width - issued
                self._bubbles_left = bubbles - retire
                stats.retired_instructions += retire
                issued += retire
                continue

            # The memory access at the head of the window.
            if self.outstanding_loads >= window:
                stats.stall_cycles_window += 1
                stalled = True
                stall_kind = _STALL_WINDOW
                break
            entry = self._pending_entry
            accepted = self.send(self, entry)
            if not accepted:
                stats.stall_cycles_reject += 1
                stalled = True
                stall_kind = _STALL_REJECT
                break
            issued += 1
            if entry.is_write:
                # Stores retire immediately (write buffer assumed).
                stats.issued_stores += 1
                stats.retired_instructions += 1
                stats.retired_memory_accesses += 1
            else:
                stats.issued_loads += 1
                self.outstanding_loads += 1
            self._pending_entry = None
            self._bubbles_left = None
        self.stalled = stalled
        self._stall_kind = stall_kind
        if issued:
            self.stats.active_cycles += 1
        return issued

    def flush_stall_accounting(self, cycle: int) -> None:
        """Attribute stall cycles up to ``cycle`` without re-attempting.

        The batch engine skips ticking cores whose tick is provably
        limited to stall accounting; :meth:`tick`'s catch-up replays the
        skipped cycles at the next real tick.  A lane that *ends* while a
        core is still being skipped never gets that next tick, so the
        driver calls this at the final cycle — the same per-cycle
        increments the other engines performed, nothing else.
        """

        if self.finished:
            return
        elapsed = cycle - self._last_tick_cycle
        if elapsed <= 0:
            return
        if self._stall_kind is _STALL_WINDOW:
            self.stats.stall_cycles_window += elapsed
        elif self._stall_kind is _STALL_REJECT:
            self.stats.stall_cycles_reject += elapsed
        self._last_tick_cycle = cycle

    # ------------------------------------------------------------------ #
    @property
    def runnable(self) -> bool:
        """Whether the core can issue on its own on the next cycle."""

        return not self.finished and not self.stalled

    def next_event_cycle(self, cycle: int,
                         instruction_limit: Optional[int] = None
                         ) -> Optional[int]:
        """Next cycle this core must be ticked, or ``None`` when waiting.

        A stalled or finished core has no self-driven events.  A core in the
        middle of a bubble (non-memory) run retires exactly ``issue_width``
        instructions per cycle, so the next cycle at which it can interact
        with the rest of the system — the tick that reaches its next memory
        access — is computable, and the cycles before it may be skipped and
        replayed in batch by :meth:`tick`.  ``instruction_limit`` caps the
        jump so the tick on which the core crosses the limit is simulated
        (the simulator's stop condition samples ``reached`` per tick).
        """

        if self.finished or self.stalled:
            return None
        bubbles = self._bubbles_left
        if not bubbles:
            return cycle + 1
        width = self.config.issue_width
        skippable = bubbles // width
        if instruction_limit is not None:
            remaining = instruction_limit - self.stats.retired_instructions
            if remaining > 0:
                crossing_ticks = (remaining + width - 1) // width
                skippable = min(skippable, crossing_ticks - 1)
        return cycle + 1 + max(0, skippable)

    # ------------------------------------------------------------------ #
    def on_data_returned(self, cycle: int) -> None:
        """Callback from the memory hierarchy when a load completes."""

        if self.outstanding_loads <= 0:
            raise RuntimeError("data returned with no outstanding load")
        self.outstanding_loads -= 1
        self.stats.retired_instructions += 1
        self.stats.retired_memory_accesses += 1
        # A completed load frees window space and may unclog the hierarchy.
        self.stalled = False

    # ------------------------------------------------------------------ #
    def reached(self, instruction_limit: int) -> bool:
        """Has the core retired at least ``instruction_limit`` instructions?"""

        return self.stats.retired_instructions >= instruction_limit

    def ipc(self, cycles: int) -> float:
        if cycles <= 0:
            return 0.0
        return self.stats.retired_instructions / cycles

    def snapshot(self) -> Dict[str, object]:
        data = self.stats.as_dict()
        data.update(
            core_id=self.core_id,
            trace=self.trace.name,
            outstanding_loads=self.outstanding_loads,
            finished=self.finished,
        )
        return data

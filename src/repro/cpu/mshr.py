"""Miss-status-holding registers (MSHRs) with per-thread quotas.

The LLC tracks outstanding misses in a shared pool of MSHRs.  BreakHammer's
throttling lever (paper §4.3) is exactly this pool: a suspect thread's quota
``Q_i`` is reduced so it can keep at most ``Q_i`` outstanding LLC misses,
while accesses that *hit* an existing MSHR (secondary misses) are still
allowed — the suspect can keep using data that is already being fetched.

The :class:`MshrFile` therefore distinguishes:

* *primary miss* — needs a free MSHR **and** headroom in the thread's quota;
* *secondary miss* — the line is already being fetched; always allowed and
  merged into the existing entry.

Per-thread occupancy is tracked with maintained counters (incremented on
primary allocation, decremented on release) so that :meth:`can_allocate` and
:meth:`allocate` are O(1) instead of scanning every entry — the scan was the
hottest line in attack workloads that keep the pool full.

Non-cacheable accesses (``clflush``-style attacker traffic) carry an explicit
:attr:`MshrEntry.uncached` flag.  A cached access that merges into an
uncached entry clears the flag, so the eventual fill *is* installed in the
LLC — exactly one requester asking for a cacheable copy is enough.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(slots=True)
class MshrEntry:
    """One outstanding LLC miss."""

    line_address: int
    thread_id: Optional[int]
    allocated_cycle: int
    is_write: bool = False
    merged_accesses: int = 0
    #: True while every access merged into this entry bypassed the cache;
    #: the fill is only skipped when no cacheable requester is waiting.
    uncached: bool = False
    waiters: List[object] = field(default_factory=list)


class MshrFile:
    """A bounded pool of MSHRs with per-thread allocation quotas."""

    def __init__(self, total_entries: int = 64,
                 num_threads: int = 4) -> None:
        if total_entries <= 0:
            raise ValueError("MSHR file must have at least one entry")
        self.total_entries = total_entries
        self.num_threads = num_threads
        self._entries: Dict[int, MshrEntry] = {}
        # Per-thread quota; defaults to the full pool (no throttling).
        self._quota: Dict[int, int] = {
            thread: total_entries for thread in range(num_threads)
        }
        # Maintained per-thread occupancy so quota checks are O(1).
        self._outstanding: Dict[int, int] = {
            thread: 0 for thread in range(num_threads)
        }
        self.stats_allocations = 0
        self.stats_merges = 0
        self.stats_quota_rejections = 0
        self.stats_capacity_rejections = 0
        self.peak_occupancy = 0

    # ------------------------------------------------------------------ #
    # Quota management (driven by BreakHammer's throttler)
    # ------------------------------------------------------------------ #
    def quota_for(self, thread_id: int) -> int:
        return self._quota.get(thread_id, self.total_entries)

    def set_quota(self, thread_id: int, quota: int) -> None:
        """Set a thread's MSHR quota (clamped to ``[0, total_entries]``)."""

        self._quota[thread_id] = max(0, min(self.total_entries, quota))

    def reset_quota(self, thread_id: int) -> None:
        self._quota[thread_id] = self.total_entries

    def reset_all_quotas(self) -> None:
        for thread in list(self._quota):
            self._quota[thread] = self.total_entries

    # ------------------------------------------------------------------ #
    # Occupancy queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def free_entries(self) -> int:
        return self.total_entries - len(self._entries)

    def outstanding_for(self, thread_id: Optional[int]) -> int:
        if thread_id is None:
            return 0
        return self._outstanding.get(thread_id, 0)

    def lookup(self, line_address: int) -> Optional[MshrEntry]:
        return self._entries.get(line_address)

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #
    def can_allocate(self, thread_id: Optional[int]) -> bool:
        """Check quota and capacity for a *primary* miss by ``thread_id``."""

        if self.free_entries <= 0:
            return False
        if thread_id is None:
            return True
        return self.outstanding_for(thread_id) < self.quota_for(thread_id)

    def allocate(self, line_address: int, thread_id: Optional[int],
                 cycle: int, is_write: bool = False,
                 uncached: bool = False) -> Optional[MshrEntry]:
        """Allocate an MSHR for a primary miss, or merge a secondary miss.

        Returns the entry on success (new or merged).  Returns ``None`` if
        the miss is primary and either the pool is full or the thread's quota
        is exhausted — the caller must retry later (this is how throttling
        slows a suspect thread down).

        ``uncached`` marks accesses that bypass the LLC.  A merged entry
        stays uncached only while *all* of its accesses are uncached; one
        cacheable requester is enough to make the fill install the line.
        """

        existing = self._entries.get(line_address)
        if existing is not None:
            existing.merged_accesses += 1
            existing.is_write = existing.is_write or is_write
            existing.uncached = existing.uncached and uncached
            self.stats_merges += 1
            return existing

        if self.free_entries <= 0:
            self.stats_capacity_rejections += 1
            return None
        if thread_id is not None and (
            self.outstanding_for(thread_id) >= self.quota_for(thread_id)
        ):
            self.stats_quota_rejections += 1
            return None

        entry = MshrEntry(
            line_address=line_address,
            thread_id=thread_id,
            allocated_cycle=cycle,
            is_write=is_write,
            uncached=uncached,
        )
        self._entries[line_address] = entry
        if thread_id is not None:
            self._outstanding[thread_id] = (
                self._outstanding.get(thread_id, 0) + 1
            )
        self.stats_allocations += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._entries))
        return entry

    def release(self, line_address: int) -> Optional[MshrEntry]:
        """Free the MSHR for ``line_address`` (when the fill returns)."""

        entry = self._entries.pop(line_address, None)
        if entry is not None and entry.thread_id is not None:
            self._outstanding[entry.thread_id] = (
                self._outstanding.get(entry.thread_id, 1) - 1
            )
        return entry

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        return {
            "total_entries": self.total_entries,
            "occupied": len(self._entries),
            "peak_occupancy": self.peak_occupancy,
            "allocations": self.stats_allocations,
            "merges": self.stats_merges,
            "quota_rejections": self.stats_quota_rejections,
            "capacity_rejections": self.stats_capacity_rejections,
            "quotas": dict(self._quota),
        }

"""DMA-style memory requesters and their throttling support (paper §4.4).

BreakHammer normally throttles a thread by limiting its LLC cache-miss
buffers, but some request generators have no cache in front of them — DMA
engines, accelerators, or cores without caches.  The paper's answer (§4.4)
is to extend the request-serving unit with a small counter table that tracks
each requester's *unresolved* (outstanding) memory requests and to cap that
count instead, rather than throttling at the memory controller where blocked
requests would clog shared queues.

Two pieces implement that here:

* :class:`OutstandingRequestTable` — the per-requester counter table with
  quotas; it exposes the same ``set_quota`` interface as
  :class:`repro.cpu.mshr.MshrFile`, so BreakHammer's throttler can drive
  either one unchanged.
* :class:`DmaEngine` — a simple streaming requester that issues reads/writes
  over an address range at a configurable rate, tagged with its own thread
  id, and respects the outstanding-request table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.controller.request import MemoryRequest, RequestType


class OutstandingRequestTable:
    """Tracks unresolved memory requests per requester, with quotas.

    This is the §4.4 counter table: allocation succeeds only while the
    requester's outstanding count is below both the table capacity and the
    requester's quota.  BreakHammer reduces the quota of a suspect requester
    exactly as it reduces an MSHR quota.
    """

    def __init__(self, capacity: int = 64, num_requesters: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.num_requesters = num_requesters
        self._outstanding: Dict[int, int] = {}
        self._quota: Dict[int, int] = {
            requester: capacity for requester in range(num_requesters)
        }
        self.rejections = 0
        self.peak_outstanding = 0

    # -- quota interface (same shape as MshrFile) ----------------------- #
    def quota_for(self, requester_id: int) -> int:
        return self._quota.get(requester_id, self.capacity)

    def set_quota(self, requester_id: int, quota: int) -> None:
        self._quota[requester_id] = max(0, min(self.capacity, quota))

    def reset_quota(self, requester_id: int) -> None:
        self._quota[requester_id] = self.capacity

    # -- outstanding tracking ------------------------------------------- #
    def outstanding_for(self, requester_id: int) -> int:
        return self._outstanding.get(requester_id, 0)

    def total_outstanding(self) -> int:
        return sum(self._outstanding.values())

    def can_issue(self, requester_id: int) -> bool:
        if self.total_outstanding() >= self.capacity:
            return False
        return self.outstanding_for(requester_id) < self.quota_for(requester_id)

    def issue(self, requester_id: int) -> bool:
        """Record one new unresolved request; False if quota/capacity bound."""

        if not self.can_issue(requester_id):
            self.rejections += 1
            return False
        self._outstanding[requester_id] = self.outstanding_for(requester_id) + 1
        self.peak_outstanding = max(self.peak_outstanding,
                                    self.total_outstanding())
        return True

    def resolve(self, requester_id: int) -> None:
        """Record the completion of one of the requester's requests."""

        current = self.outstanding_for(requester_id)
        if current <= 0:
            raise RuntimeError(
                f"requester {requester_id} has no unresolved requests"
            )
        self._outstanding[requester_id] = current - 1

    def snapshot(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "outstanding": dict(self._outstanding),
            "quotas": dict(self._quota),
            "rejections": self.rejections,
            "peak_outstanding": self.peak_outstanding,
        }


@dataclass
class DmaConfig:
    """Parameters of a streaming DMA engine."""

    base_address: int = 0
    length_bytes: int = 1 << 20
    stride_bytes: int = 64
    is_write: bool = False
    #: Requests the engine tries to issue per cycle (its burst rate).
    requests_per_cycle: int = 2

    def __post_init__(self) -> None:
        if self.length_bytes <= 0 or self.stride_bytes <= 0:
            raise ValueError("length and stride must be positive")
        if self.requests_per_cycle <= 0:
            raise ValueError("requests_per_cycle must be positive")


@dataclass
class DmaStats:
    issued: int = 0
    completed: int = 0
    stalled_cycles: int = 0


class DmaEngine:
    """A cache-less streaming requester (models the paper's DMA discussion).

    The engine walks its address range, issuing up to ``requests_per_cycle``
    memory requests per cycle through an enqueue callback supplied by the
    system (normally :meth:`repro.controller.controller.MemoryController.enqueue`),
    gated by an :class:`OutstandingRequestTable` that BreakHammer may
    throttle.
    """

    def __init__(self, requester_id: int, config: DmaConfig,
                 table: OutstandingRequestTable,
                 enqueue: Callable[[MemoryRequest], bool]) -> None:
        self.requester_id = requester_id
        self.config = config
        self.table = table
        self.enqueue = enqueue
        self.stats = DmaStats()
        self._cursor = 0

    @property
    def thread_id(self) -> int:
        """DMA requests carry a thread tag, just like core requests."""

        return self.requester_id

    def _next_address(self) -> int:
        offset = (self._cursor * self.config.stride_bytes) % self.config.length_bytes
        self._cursor += 1
        return self.config.base_address + offset

    def tick(self, cycle: int) -> int:
        """Issue up to ``requests_per_cycle`` requests; return how many issued."""

        issued = 0
        for _ in range(self.config.requests_per_cycle):
            if not self.table.can_issue(self.requester_id):
                self.stats.stalled_cycles += 1
                break
            request = MemoryRequest(
                address=self._next_address(),
                kind=RequestType.WRITE if self.config.is_write else RequestType.READ,
                thread_id=self.requester_id,
                arrival_cycle=cycle,
                on_complete=self._on_complete,
            )
            if not self.enqueue(request):
                self.stats.stalled_cycles += 1
                break
            self.table.issue(self.requester_id)
            self.stats.issued += 1
            issued += 1
        return issued

    def _on_complete(self, request: MemoryRequest, cycle: int) -> None:
        self.table.resolve(self.requester_id)
        self.stats.completed += 1

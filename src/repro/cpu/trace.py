"""Memory-access traces.

A trace is the unit a core executes: an ordered list of
:class:`TraceEntry` records, each describing a burst of non-memory
instructions followed by one memory access (the same "bubble count + address"
format Ramulator-style trace-driven cores consume).

Traces can be generated synthetically (see :mod:`repro.workloads`), saved to
and loaded from a simple text format, and characterised (RBMPKI, per-row
activation pressure) for the paper's Table 3.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence


@dataclass(frozen=True)
class TraceEntry:
    """One trace record: ``bubble_count`` non-memory instructions, then a
    memory access to ``address`` (a write when ``is_write`` is ``True``).

    ``bypass_cache`` marks the access as non-cacheable: it always goes to
    DRAM.  Attack traces use it to model the cache-line flushing
    (``clflush``/eviction) every real RowHammer attack performs so that each
    access reaches a DRAM row.
    """

    bubble_count: int
    address: int
    is_write: bool = False
    bypass_cache: bool = False

    def __post_init__(self) -> None:
        if self.bubble_count < 0:
            raise ValueError("bubble_count must be non-negative")
        if self.address < 0:
            raise ValueError("address must be non-negative")

    @property
    def instructions(self) -> int:
        """Instructions represented by this entry (bubbles + 1 memory op)."""

        return self.bubble_count + 1


@dataclass
class TraceWindowStats:
    """Characteristics of a trace over a time/interval window (Table 3)."""

    instructions: int
    memory_accesses: int
    distinct_rows: int
    rows_over_512: int
    rows_over_128: int
    rows_over_64: int
    rbmpki: float

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class Trace:
    """An ordered memory-access trace for one hardware thread."""

    def __init__(self, entries: Sequence[TraceEntry], name: str = "trace",
                 loop: bool = True) -> None:
        self.entries: List[TraceEntry] = list(entries)
        self.name = name
        self.loop = loop
        if not self.entries:
            raise ValueError("a trace must contain at least one entry")

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def __getitem__(self, index: int) -> TraceEntry:
        return self.entries[index]

    @property
    def total_instructions(self) -> int:
        return sum(entry.instructions for entry in self.entries)

    @property
    def memory_accesses(self) -> int:
        return len(self.entries)

    @property
    def write_fraction(self) -> float:
        writes = sum(1 for entry in self.entries if entry.is_write)
        return writes / len(self.entries)

    def cursor(self) -> "TraceCursor":
        return TraceCursor(self)

    # ------------------------------------------------------------------ #
    # Persistence (simple whitespace-separated text format)
    # ------------------------------------------------------------------ #
    def dump(self, path: Path | str) -> None:
        """Write the trace in ``bubble address R|W`` text format."""

        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            self.write_to(handle)

    def write_to(self, handle: io.TextIOBase) -> None:
        for entry in self.entries:
            kind = "W" if entry.is_write else "R"
            if entry.bypass_cache:
                kind += "!"
            handle.write(f"{entry.bubble_count} {entry.address} {kind}\n")

    @classmethod
    def load(cls, path: Path | str, name: Optional[str] = None,
             loop: bool = True) -> "Trace":
        path = Path(path)
        with path.open("r", encoding="utf-8") as handle:
            return cls.parse(handle, name=name or path.stem, loop=loop)

    @classmethod
    def parse(cls, handle: Iterable[str], name: str = "trace",
              loop: bool = True) -> "Trace":
        entries: List[TraceEntry] = []
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise ValueError(
                    f"malformed trace line {line_number}: {stripped!r}"
                )
            bubble = int(parts[0])
            address = int(parts[1], 0)
            kind = parts[2].upper() if len(parts) > 2 else "R"
            is_write = kind.startswith("W")
            bypass = kind.endswith("!")
            entries.append(TraceEntry(bubble, address, is_write, bypass))
        return cls(entries, name=name, loop=loop)

    # ------------------------------------------------------------------ #
    def characterize(self, mapper, window_entries: Optional[int] = None
                     ) -> TraceWindowStats:
        """Summarise the trace the way the paper's Table 3 does.

        ``mapper`` is a :class:`repro.dram.address.AddressMapper`; rows are
        counted in DRAM-coordinate space so the result reflects the actual
        activation pressure the trace can exert.
        """

        entries = self.entries[:window_entries] if window_entries else self.entries
        row_counts: dict = {}
        for entry in entries:
            coord = mapper.map(entry.address)
            row_counts[coord.row_key] = row_counts.get(coord.row_key, 0) + 1
        instructions = sum(entry.instructions for entry in entries)
        memory_accesses = len(entries)
        rbmpki = (
            1000.0 * memory_accesses / instructions if instructions else 0.0
        )
        return TraceWindowStats(
            instructions=instructions,
            memory_accesses=memory_accesses,
            distinct_rows=len(row_counts),
            rows_over_512=sum(1 for c in row_counts.values() if c > 512),
            rows_over_128=sum(1 for c in row_counts.values() if c > 128),
            rows_over_64=sum(1 for c in row_counts.values() if c > 64),
            rbmpki=rbmpki,
        )


class TraceCursor:
    """An iterator over a trace that can loop and reports progress."""

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self.position = 0
        self.wraps = 0
        self.entries_consumed = 0

    @property
    def exhausted(self) -> bool:
        return not self.trace.loop and self.position >= len(self.trace)

    def peek(self) -> Optional[TraceEntry]:
        if self.exhausted:
            return None
        return self.trace[self.position % len(self.trace)]

    def advance(self) -> Optional[TraceEntry]:
        entry = self.peek()
        if entry is None:
            return None
        self.position += 1
        self.entries_consumed += 1
        if self.trace.loop and self.position >= len(self.trace):
            self.position = 0
            self.wraps += 1
        return entry

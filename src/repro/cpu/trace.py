"""Memory-access traces.

A trace is the unit a core executes: an ordered sequence of
:class:`TraceEntry` records, each describing a burst of non-memory
instructions followed by one memory access (the same "bubble count + address"
format Ramulator-style trace-driven cores consume).

Storage is **columnar**: a trace holds three parallel arrays — bubble
counts, addresses, and a packed flag byte (write / cache-bypass bits) —
rather than a Python list of entry objects.  The columns are ``array``
module buffers, so a trace of N entries costs a few machine words per entry,
pickles to workers as three compact byte blobs, and can be written to /
read from disk without parsing text.  ``TraceEntry`` objects are
materialised lazily (once, on first indexed access) so the simulation hot
path — :class:`TraceCursor` feeding a core — still reads a plain Python
list exactly as before.

Traces can be generated synthetically (see :mod:`repro.workloads`), saved to
and loaded from a simple text format or the binary columnar format, and
characterised (RBMPKI, per-row activation pressure) for the paper's Table 3.
"""

from __future__ import annotations

import io
import struct
import sys
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

try:  # numpy accelerates characterisation; the scalar path is always there
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

#: Flag bits of the packed per-entry flag column.
FLAG_WRITE = 0x1
FLAG_BYPASS = 0x2

#: Magic + version header of the binary columnar trace format.
_COLUMNAR_MAGIC = b"RTRC"
_COLUMNAR_VERSION = 1

#: Array typecodes of the columns (bubble, address, flags).
_BUBBLE_TYPECODE = "q"
_ADDRESS_TYPECODE = "Q"


@dataclass(frozen=True)
class TraceEntry:
    """One trace record: ``bubble_count`` non-memory instructions, then a
    memory access to ``address`` (a write when ``is_write`` is ``True``).

    ``bypass_cache`` marks the access as non-cacheable: it always goes to
    DRAM.  Attack traces use it to model the cache-line flushing
    (``clflush``/eviction) every real RowHammer attack performs so that each
    access reaches a DRAM row.
    """

    bubble_count: int
    address: int
    is_write: bool = False
    bypass_cache: bool = False

    def __post_init__(self) -> None:
        if self.bubble_count < 0:
            raise ValueError("bubble_count must be non-negative")
        if self.address < 0:
            raise ValueError("address must be non-negative")

    @property
    def instructions(self) -> int:
        """Instructions represented by this entry (bubbles + 1 memory op)."""

        return self.bubble_count + 1

    @property
    def flags(self) -> int:
        """The packed flag byte this entry occupies in the flag column."""

        return (FLAG_WRITE if self.is_write else 0) | (
            FLAG_BYPASS if self.bypass_cache else 0
        )


@dataclass
class TraceWindowStats:
    """Characteristics of a trace over a time/interval window (Table 3)."""

    instructions: int
    memory_accesses: int
    distinct_rows: int
    rows_over_512: int
    rows_over_128: int
    rows_over_64: int
    rbmpki: float

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class Trace:
    """An ordered memory-access trace for one hardware thread.

    Internally the trace is three parallel columns; the ``entries``
    property (and therefore indexing and iteration) materialises
    :class:`TraceEntry` objects once, on demand, and caches the list.
    Columnar constructors (:meth:`from_columns`) skip per-entry object
    construction entirely, which is how the synthetic generators build
    traces cheaply.
    """

    def __init__(self, entries: Sequence[TraceEntry], name: str = "trace",
                 loop: bool = True) -> None:
        entry_list = list(entries)  # materialise once: input may be a generator
        bubbles = array(_BUBBLE_TYPECODE)
        addresses = array(_ADDRESS_TYPECODE)
        flags = bytearray()
        for entry in entry_list:
            bubbles.append(entry.bubble_count)
            addresses.append(entry.address)
            flags.append(entry.flags)
        self._init_columns(bubbles, addresses, flags, name, loop)
        # The caller handed us real entry objects; keep them as the
        # materialised view instead of rebuilding them on first access.
        self._entries = entry_list

    def _init_columns(self, bubbles, addresses, flags, name: str,
                      loop: bool) -> None:
        # The columns are array-module buffers for generated/parsed traces,
        # or read-only memoryview casts over an mmap for spooled traces
        # (see load_columnar(mmap=True)); both expose identical item access.
        if not (len(bubbles) == len(addresses) == len(flags)):
            raise ValueError("trace columns must have equal length")
        if not len(bubbles):
            raise ValueError("a trace must contain at least one entry")
        self._bubbles = bubbles
        self._addresses = addresses
        self._flags = flags
        self.name = name
        self.loop = loop
        self._entries: Optional[List[TraceEntry]] = None
        self._mmap = None  # keeps a backing mmap alive for view columns

    @classmethod
    def from_columns(cls, bubbles: Iterable[int], addresses: Iterable[int],
                     flags: Iterable[int], name: str = "trace",
                     loop: bool = True) -> "Trace":
        """Build a trace directly from its columns (no per-entry objects).

        The inputs are always copied, so the trace never aliases
        caller-owned buffers (and two traces built from one
        :attr:`columns` tuple never share state).
        """

        bubble_col = array(_BUBBLE_TYPECODE, bubbles)
        address_col = array(_ADDRESS_TYPECODE, addresses)
        flag_col = bytearray(flags)
        if len(bubble_col) and min(bubble_col) < 0:
            raise ValueError("bubble_count must be non-negative")
        trace = cls.__new__(cls)
        trace._init_columns(bubble_col, address_col, flag_col, name, loop)
        return trace

    # ------------------------------------------------------------------ #
    # Columnar access
    # ------------------------------------------------------------------ #
    @property
    def columns(self) -> Tuple[array, array, bytearray]:
        """The (bubble, address, flag) columns backing this trace.

        Borrowed, treat as read-only: mutating them would desync the
        columnar data from any already-materialised ``entries`` view.
        Constructors copy (see :meth:`from_columns`), so feeding one
        trace's columns into another never shares state.
        """

        return self._bubbles, self._addresses, self._flags

    @property
    def entries(self) -> List[TraceEntry]:
        """The materialised entry-object view (built once, cached)."""

        if self._entries is None:
            self._entries = [
                TraceEntry(bubble, address,
                           bool(flag & FLAG_WRITE), bool(flag & FLAG_BYPASS))
                for bubble, address, flag in zip(
                    self._bubbles, self._addresses, self._flags
                )
            ]
        return self._entries

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._bubbles)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def __getitem__(self, index: int) -> TraceEntry:
        return self.entries[index]

    @property
    def total_instructions(self) -> int:
        return sum(self._bubbles) + len(self._bubbles)

    @property
    def memory_accesses(self) -> int:
        return len(self._bubbles)

    @property
    def write_fraction(self) -> float:
        if _np is not None:
            flags = _np.frombuffer(self._flags, dtype=_np.uint8)
            return int((flags & FLAG_WRITE).astype(bool).sum()) \
                / len(self._flags)
        writes = sum(1 for flag in self._flags if flag & FLAG_WRITE)
        return writes / len(self._flags)

    def cursor(self) -> "TraceCursor":
        return TraceCursor(self)

    # ------------------------------------------------------------------ #
    # Pickling ships only the columns, never the materialised objects,
    # so sending a trace to a worker process costs three byte blobs.
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        return {
            "name": self.name,
            "loop": self.loop,
            "bubbles": self._bubbles.tobytes(),
            "addresses": self._addresses.tobytes(),
            "flags": bytes(self._flags),
        }

    def __setstate__(self, state: dict) -> None:
        bubbles = array(_BUBBLE_TYPECODE)
        bubbles.frombytes(state["bubbles"])
        addresses = array(_ADDRESS_TYPECODE)
        addresses.frombytes(state["addresses"])
        self._init_columns(bubbles, addresses, bytearray(state["flags"]),
                           state["name"], state["loop"])

    # ------------------------------------------------------------------ #
    # Persistence (simple whitespace-separated text format)
    # ------------------------------------------------------------------ #
    def dump(self, path: Path | str) -> None:
        """Write the trace in ``bubble address R|W`` text format."""

        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            self.write_to(handle)

    def write_to(self, handle: io.TextIOBase) -> None:
        for bubble, address, flag in zip(self._bubbles, self._addresses,
                                         self._flags):
            kind = "W" if flag & FLAG_WRITE else "R"
            if flag & FLAG_BYPASS:
                kind += "!"
            handle.write(f"{bubble} {address} {kind}\n")

    @classmethod
    def load(cls, path: Path | str, name: Optional[str] = None,
             loop: bool = True) -> "Trace":
        path = Path(path)
        with path.open("r", encoding="utf-8") as handle:
            return cls.parse(handle, name=name or path.stem, loop=loop)

    @classmethod
    def parse(cls, handle: Iterable[str], name: str = "trace",
              loop: bool = True) -> "Trace":
        bubbles = array(_BUBBLE_TYPECODE)
        addresses = array(_ADDRESS_TYPECODE)
        flags = bytearray()
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise ValueError(
                    f"malformed trace line {line_number}: {stripped!r}"
                )
            bubble = int(parts[0])
            address = int(parts[1], 0)
            if bubble < 0 or address < 0:
                raise ValueError(
                    f"negative field on trace line {line_number}: {stripped!r}"
                )
            kind = parts[2].upper() if len(parts) > 2 else "R"
            bubbles.append(bubble)
            addresses.append(address)
            flags.append(
                (FLAG_WRITE if kind.startswith("W") else 0)
                | (FLAG_BYPASS if kind.endswith("!") else 0)
            )
        return cls.from_columns(bubbles, addresses, flags, name=name,
                                loop=loop)

    # ------------------------------------------------------------------ #
    # Persistence (binary columnar format)
    # ------------------------------------------------------------------ #
    def dump_columnar(self, path: Path | str) -> None:
        """Write the raw columns to ``path`` (compact binary format).

        Layout: magic, version, name, entry count, then the three column
        byte blobs back to back.  Loading is a seek-free ``frombytes`` per
        column — no per-line parsing, no per-entry objects.
        """

        name_bytes = self.name.encode("utf-8")
        # Column payloads are written in native byte order (array.tobytes),
        # so the header records which one; load_columnar byte-swaps when
        # reading on a machine of the opposite endianness.
        header = _COLUMNAR_MAGIC + struct.pack(
            "<BBBH", _COLUMNAR_VERSION, 1 if self.loop else 0,
            1 if sys.byteorder == "little" else 0, len(name_bytes)
        )
        with Path(path).open("wb") as handle:
            handle.write(header)
            handle.write(name_bytes)
            handle.write(struct.pack("<Q", len(self)))
            handle.write(self._bubbles.tobytes())
            handle.write(self._addresses.tobytes())
            handle.write(bytes(self._flags))

    @staticmethod
    def _parse_columnar_header(data, path) -> Tuple[str, bool, bool, int, int]:
        """Validate a columnar buffer's header.

        Returns ``(name, loop, swap, count, offset)`` where ``offset`` is
        the start of the bubble column.  ``data`` is any bytes-like object
        (a ``read_bytes`` result or an ``mmap``).
        """

        if bytes(data[:4]) != _COLUMNAR_MAGIC:
            raise ValueError(f"{path}: not a columnar trace file")
        if len(data) < 9:  # magic + BBBH header
            raise ValueError(f"{path}: truncated columnar trace file")
        version, loop_byte, little_endian, name_length = \
            struct.unpack_from("<BBBH", data, 4)
        if version != _COLUMNAR_VERSION:
            raise ValueError(
                f"{path}: unsupported columnar trace version {version}"
            )
        swap = bool(little_endian) != (sys.byteorder == "little")
        offset = 9
        name_bytes = bytes(data[offset:offset + name_length])
        if len(name_bytes) != name_length or len(data) < offset + name_length + 8:
            raise ValueError(f"{path}: truncated columnar trace file")
        name = name_bytes.decode("utf-8")
        offset += name_length
        (count,) = struct.unpack_from("<Q", data, offset)
        offset += 8
        return name, bool(loop_byte), swap, count, offset

    @classmethod
    def load_columnar(cls, path: Path | str, mmap: bool = False) -> "Trace":
        """Load a trace written by :meth:`dump_columnar`.

        ``mmap=True`` maps the file read-only and exposes the columns as
        zero-copy views over the mapping: traces loaded by many co-located
        worker processes then share one physical copy through the page
        cache instead of each holding its own arrays (the sweep spool path,
        see :mod:`repro.workloads.spool`).  Falls back to the eager loader
        when the file's endianness does not match the host (the columns
        would need byte-swapping anyway).
        """

        if mmap:
            return cls._load_columnar_mmap(path)
        data = Path(path).read_bytes()
        name, loop, swap, count, offset = \
            cls._parse_columnar_header(data, path)
        bubbles = array(_BUBBLE_TYPECODE)
        bubble_bytes = count * bubbles.itemsize
        try:
            bubbles.frombytes(data[offset:offset + bubble_bytes])
        except ValueError as exc:
            raise ValueError(f"{path}: truncated columnar trace file") from exc
        offset += bubble_bytes
        addresses = array(_ADDRESS_TYPECODE)
        address_bytes = count * addresses.itemsize
        try:
            addresses.frombytes(data[offset:offset + address_bytes])
        except ValueError as exc:
            raise ValueError(f"{path}: truncated columnar trace file") from exc
        offset += address_bytes
        if swap:
            bubbles.byteswap()
            addresses.byteswap()
        flags = bytearray(data[offset:offset + count])
        # Every column must hold exactly `count` items: a file truncated at
        # an 8-byte boundary parses into *short* arrays, which the
        # per-column frombytes calls cannot see on their own.
        if not (len(bubbles) == len(addresses) == len(flags) == count):
            raise ValueError(f"{path}: truncated columnar trace file")
        return cls.from_columns(bubbles, addresses, flags, name=name,
                                loop=loop)

    @classmethod
    def _load_columnar_mmap(cls, path: Path | str) -> "Trace":
        import mmap as _mmap

        with Path(path).open("rb") as handle:
            try:
                mapping = _mmap.mmap(handle.fileno(), 0,
                                     access=_mmap.ACCESS_READ)
            except ValueError as exc:  # zero-length file cannot be mapped
                raise ValueError(
                    f"{path}: truncated columnar trace file"
                ) from exc
        name, loop, swap, count, offset = \
            cls._parse_columnar_header(mapping, path)
        if swap:
            # Cross-endian files need byte-swapped copies; zero-copy views
            # cannot represent that, so defer to the eager loader.
            mapping.close()
            return cls.load_columnar(path, mmap=False)
        item = struct.calcsize(_BUBBLE_TYPECODE)
        end = offset + 2 * item * count + count
        if len(mapping) < end:
            raise ValueError(f"{path}: truncated columnar trace file")
        view = memoryview(mapping)
        bubbles = view[offset:offset + item * count].cast(_BUBBLE_TYPECODE)
        offset += item * count
        addresses = view[offset:offset + item * count].cast(_ADDRESS_TYPECODE)
        offset += item * count
        flags = view[offset:offset + count]
        trace = cls.__new__(cls)
        trace._init_columns(bubbles, addresses, flags, name, loop)
        trace._mmap = mapping
        return trace

    # ------------------------------------------------------------------ #
    def characterize(self, mapper, window_entries: Optional[int] = None,
                     backend: str = "auto") -> TraceWindowStats:
        """Summarise the trace the way the paper's Table 3 does.

        ``mapper`` is a :class:`repro.dram.address.AddressMapper`; rows are
        counted in DRAM-coordinate space so the result reflects the actual
        activation pressure the trace can exert.

        ``backend`` selects the implementation: ``"numpy"`` vectorises over
        the address column (one ``map_row_ids`` + ``np.unique`` pass, no
        per-entry Python work), ``"scalar"`` is the reference loop, and
        ``"auto"`` (default) uses numpy when it is importable.  The two
        backends are result-identical
        (``tests/test_characterize_numpy.py``).
        """

        if backend not in ("auto", "scalar", "numpy"):
            raise ValueError(f"unknown characterize backend {backend!r}")
        if backend == "numpy" and _np is None:
            raise RuntimeError("numpy backend requested but numpy is "
                               "not installed")
        end = window_entries if window_entries else len(self)
        if backend != "scalar" and _np is not None:
            return self._characterize_numpy(mapper, end)
        return self._characterize_scalar(mapper, end)

    def _characterize_scalar(self, mapper, end: int) -> TraceWindowStats:
        addresses = self._addresses[:end]
        row_counts: dict = {}
        for address in addresses:
            coord = mapper.map(address)
            row_counts[coord.row_key] = row_counts.get(coord.row_key, 0) + 1
        memory_accesses = len(addresses)
        instructions = sum(self._bubbles[:end]) + memory_accesses
        rbmpki = (
            1000.0 * memory_accesses / instructions if instructions else 0.0
        )
        return TraceWindowStats(
            instructions=instructions,
            memory_accesses=memory_accesses,
            distinct_rows=len(row_counts),
            rows_over_512=sum(1 for c in row_counts.values() if c > 512),
            rows_over_128=sum(1 for c in row_counts.values() if c > 128),
            rows_over_64=sum(1 for c in row_counts.values() if c > 64),
            rbmpki=rbmpki,
        )

    def _characterize_numpy(self, mapper, end: int) -> TraceWindowStats:
        # The address column is array('Q'): a zero-copy uint64 view.
        addresses = _np.frombuffer(self._addresses, dtype=_np.uint64)[:end]
        row_ids = mapper.map_row_ids(addresses)
        _rows, counts = _np.unique(row_ids, return_counts=True)
        memory_accesses = int(addresses.size)
        bubbles = _np.frombuffer(self._bubbles, dtype=_np.int64)[:end]
        # Sums return to Python ints before the float division, so rbmpki
        # is bit-identical to the scalar path.
        instructions = int(bubbles.sum()) + memory_accesses
        rbmpki = (
            1000.0 * memory_accesses / instructions if instructions else 0.0
        )
        return TraceWindowStats(
            instructions=instructions,
            memory_accesses=memory_accesses,
            distinct_rows=int(counts.size),
            rows_over_512=int((counts > 512).sum()),
            rows_over_128=int((counts > 128).sum()),
            rows_over_64=int((counts > 64).sum()),
            rbmpki=rbmpki,
        )


class TraceCursor:
    """An iterator over a trace that can loop and reports progress."""

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self.position = 0
        self.wraps = 0
        self.entries_consumed = 0

    @property
    def exhausted(self) -> bool:
        return not self.trace.loop and self.position >= len(self.trace)

    def peek(self) -> Optional[TraceEntry]:
        if self.exhausted:
            return None
        return self.trace[self.position % len(self.trace)]

    def advance(self) -> Optional[TraceEntry]:
        entry = self.peek()
        if entry is None:
            return None
        self.position += 1
        self.entries_consumed += 1
        if self.trace.loop and self.position >= len(self.trace):
            self.position = 0
            self.wraps += 1
        return entry

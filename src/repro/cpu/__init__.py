"""CPU-side substrate: trace-driven cores, shared LLC, and MSHRs.

The paper's evaluation runs trace-driven cores (4-wide issue, 128-entry
instruction window) over a shared 8 MiB last-level cache.  BreakHammer's
throttling lever is the per-thread quota of LLC cache-miss buffers (MSHRs):
a suspect thread may only have ``Q_i`` outstanding LLC misses at a time.

* :mod:`repro.cpu.trace` — memory-access traces and readers/writers,
* :mod:`repro.cpu.cache` — a set-associative last-level cache,
* :mod:`repro.cpu.mshr` — the miss-status-holding-register file with
  per-thread quotas,
* :mod:`repro.cpu.core_model` — the trace-driven core model.
"""

from repro.cpu.cache import CacheConfig, CacheStats, SetAssociativeCache
from repro.cpu.core_model import Core, CoreConfig, CoreStats
from repro.cpu.dma import DmaConfig, DmaEngine, OutstandingRequestTable
from repro.cpu.mshr import MshrEntry, MshrFile
from repro.cpu.trace import Trace, TraceEntry, TraceWindowStats

__all__ = [
    "CacheConfig",
    "CacheStats",
    "Core",
    "CoreConfig",
    "CoreStats",
    "DmaConfig",
    "DmaEngine",
    "MshrEntry",
    "MshrFile",
    "OutstandingRequestTable",
    "SetAssociativeCache",
    "Trace",
    "TraceEntry",
    "TraceWindowStats",
]

"""RowHammer mitigation mechanisms.

Eight state-of-the-art mechanisms evaluated by the paper (PARA, Graphene,
Hydra, TWiCe, AQUA, REGA, RFM, PRAC), plus BlockHammer (the throttling-based
comparison point) and a no-mitigation baseline.  All share the
:class:`repro.mitigations.base.MitigationMechanism` interface.
"""

from repro.mitigations.aqua import Aqua
from repro.mitigations.base import (
    ActionObserver,
    MitigationMechanism,
    NoMitigation,
    PreventiveAction,
    PreventiveActionKind,
)
from repro.mitigations.blockhammer import BlockHammer
from repro.mitigations.graphene import Graphene, MisraGriesTable
from repro.mitigations.hydra import Hydra, HydraConfig
from repro.mitigations.para import Para
from repro.mitigations.prac import Prac
from repro.mitigations.rega import Rega
from repro.mitigations.registry import (
    MOTIVATION_MECHANISMS,
    NRH_SWEEP,
    PAIRED_MECHANISMS,
    available_mechanisms,
    create_all,
    create_mechanism,
    register_mechanism,
)
from repro.mitigations.rfm import RfmMitigation
from repro.mitigations.twice import TwiCe

__all__ = [
    "ActionObserver",
    "Aqua",
    "BlockHammer",
    "Graphene",
    "Hydra",
    "HydraConfig",
    "MOTIVATION_MECHANISMS",
    "MisraGriesTable",
    "MitigationMechanism",
    "NRH_SWEEP",
    "NoMitigation",
    "PAIRED_MECHANISMS",
    "Para",
    "Prac",
    "PreventiveAction",
    "PreventiveActionKind",
    "Rega",
    "RfmMitigation",
    "TwiCe",
    "available_mechanisms",
    "create_all",
    "create_mechanism",
    "register_mechanism",
]

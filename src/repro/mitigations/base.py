"""Common interface for RowHammer mitigation mechanisms.

Every mechanism evaluated by the paper fits the same shape: a *trigger
algorithm* observes row activations and occasionally demands one or more
*RowHammer-preventive actions* — victim-row refreshes, row migrations, or
RFM windows — which the memory controller must carry out before (or
alongside) ordinary traffic.  :class:`MitigationMechanism` captures that
shape; each concrete mechanism lives in its own module.

The controller reports two kinds of events to registered
:class:`ActionObserver` objects (BreakHammer is such an observer):

* every row activation, tagged with the responsible hardware thread, and
* every completed preventive action, tagged with the mechanism and a weight.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol

from repro.dram.address import DramAddress
from repro.dram.commands import Command, CommandType
from repro.dram.config import DeviceConfig


class PreventiveActionKind(enum.Enum):
    """The categories of RowHammer-preventive actions the paper discusses."""

    VICTIM_REFRESH = "victim_refresh"  # refresh the neighbours of an aggressor
    ROW_MIGRATION = "row_migration"  # AQUA-style quarantine migration
    RFM = "rfm"  # DDR5 refresh-management window
    BACKOFF = "backoff"  # PRAC alert_n back-off servicing


@dataclass
class PreventiveAction:
    """A unit of preventive work the controller must perform.

    ``commands`` are issued by the controller with priority over regular
    requests.  ``weight`` is the score mass the action carries when
    BreakHammer attributes it to threads (normally 1.0 per action).
    """

    kind: PreventiveActionKind
    commands: List[Command]
    mechanism: str
    aggressor_row: Optional[tuple] = None
    weight: float = 1.0
    created_cycle: int = 0
    completed_cycle: Optional[int] = None
    metadata: dict = field(default_factory=dict)

    @property
    def pending_commands(self) -> int:
        return len(self.commands)


class ActionObserver(Protocol):
    """Anything that wants to watch activations and preventive actions."""

    def on_activation(self, coordinate: DramAddress, thread_id: Optional[int],
                      cycle: int) -> None:
        ...

    def on_preventive_action(self, action: PreventiveAction, cycle: int) -> None:
        ...


class MitigationMechanism(abc.ABC):
    """Base class for all RowHammer mitigation mechanisms.

    Subclasses implement :meth:`on_activation` (the trigger algorithm) and
    may override :meth:`tick` (for time-driven mechanisms such as REGA),
    :meth:`on_refresh_window` (for mechanisms that reset state every tREFW,
    such as Graphene and TWiCe), and :meth:`allow_activation` (for
    access-blocking mechanisms such as BlockHammer).
    """

    #: Human-readable mechanism name, overridden by subclasses.
    name: str = "none"
    #: Whether the mechanism's preventive state lives on the DRAM die
    #: (RFM, PRAC, REGA) rather than in the memory controller.
    on_dram_die: bool = False

    def __init__(self, config: DeviceConfig, nrh: int) -> None:
        if nrh <= 0:
            raise ValueError("RowHammer threshold must be positive")
        self.config = config
        self.nrh = nrh
        self.actions_triggered = 0
        self.actions_by_kind: Dict[PreventiveActionKind, int] = {
            kind: 0 for kind in PreventiveActionKind
        }

    # ------------------------------------------------------------------ #
    # Trigger algorithm hooks
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def on_activation(self, coordinate: DramAddress,
                      thread_id: Optional[int],
                      cycle: int) -> List[PreventiveAction]:
        """Observe one row activation; return any preventive actions due."""

    def tick(self, cycle: int) -> List[PreventiveAction]:
        """Called once per cycle for time-driven mechanisms (default: none)."""

        return []

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Next cycle at which :meth:`tick` has time-driven work, or ``None``.

        The fast-forward simulation engine uses this to know it must not
        jump past a mechanism's internal deadline (e.g. a counter-window
        switch).  Mechanisms without time-driven state return ``None``.
        """

        return None

    def on_refresh_window(self, cycle: int) -> None:
        """Called once per refresh window (tREFW); resets windowed state."""

    def allow_activation(self, coordinate: DramAddress, cycle: int) -> bool:
        """Return ``False`` to delay an activation (BlockHammer-style)."""

        return True

    # ------------------------------------------------------------------ #
    # Helpers for subclasses
    # ------------------------------------------------------------------ #
    def _register(self, action: PreventiveAction) -> PreventiveAction:
        self.actions_triggered += 1
        self.actions_by_kind[action.kind] += 1
        return action

    def victim_refresh_action(self, coordinate: DramAddress, cycle: int,
                              blast_radius: int = 1,
                              kind: PreventiveActionKind = PreventiveActionKind.VICTIM_REFRESH,
                              weight: float = 1.0) -> PreventiveAction:
        """Build a preventive-refresh action for the neighbours of a row.

        ``blast_radius`` is the number of victim rows refreshed on each side
        of the aggressor.
        """

        commands = []
        for offset in range(1, blast_radius + 1):
            for direction in (-1, 1):
                victim = coordinate.row + direction * offset
                if 0 <= victim < self.config.rows_per_bank:
                    commands.append(
                        Command(
                            CommandType.VRR,
                            channel=coordinate.channel,
                            rank=coordinate.rank,
                            bank_group=coordinate.bank_group,
                            bank=coordinate.bank,
                            row=victim,
                        )
                    )
        action = PreventiveAction(
            kind=kind,
            commands=commands,
            mechanism=self.name,
            aggressor_row=coordinate.row_key,
            weight=weight,
            created_cycle=cycle,
        )
        return self._register(action)

    def rfm_action(self, coordinate: DramAddress, cycle: int,
                   weight: float = 1.0,
                   kind: PreventiveActionKind = PreventiveActionKind.RFM
                   ) -> PreventiveAction:
        """Build an RFM action targeting the bank of ``coordinate``."""

        command = Command(
            CommandType.RFM,
            channel=coordinate.channel,
            rank=coordinate.rank,
            bank_group=coordinate.bank_group,
            bank=coordinate.bank,
        )
        action = PreventiveAction(
            kind=kind,
            commands=[command],
            mechanism=self.name,
            aggressor_row=None,
            weight=weight,
            created_cycle=cycle,
        )
        return self._register(action)

    def migration_action(self, coordinate: DramAddress, cycle: int,
                         weight: float = 1.0) -> PreventiveAction:
        """Build a row-migration action (AQUA quarantine)."""

        command = Command(
            CommandType.MIG,
            channel=coordinate.channel,
            rank=coordinate.rank,
            bank_group=coordinate.bank_group,
            bank=coordinate.bank,
            row=coordinate.row,
        )
        action = PreventiveAction(
            kind=PreventiveActionKind.ROW_MIGRATION,
            commands=[command],
            mechanism=self.name,
            aggressor_row=coordinate.row_key,
            weight=weight,
            created_cycle=cycle,
        )
        return self._register(action)

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """Mechanism statistics for reports and tests."""

        return {
            "mechanism": self.name,
            "nrh": self.nrh,
            "actions_triggered": self.actions_triggered,
            "actions_by_kind": {
                kind.value: count for kind, count in self.actions_by_kind.items()
            },
        }


class NoMitigation(MitigationMechanism):
    """Baseline: no RowHammer mitigation (the paper's "No Defense")."""

    name = "none"

    def __init__(self, config: DeviceConfig, nrh: int = 10 ** 9) -> None:
        super().__init__(config, nrh)

    def on_activation(self, coordinate: DramAddress,
                      thread_id: Optional[int],
                      cycle: int) -> List[PreventiveAction]:
        return []

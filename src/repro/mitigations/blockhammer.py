"""BlockHammer — throttling-based RowHammer prevention (Yağlıkçı et al., HPCA 2021).

BlockHammer is the paper's state-of-the-art throttling *mitigation* (not an
add-on like BreakHammer): it blacklists rows that are being activated at a
rate that could reach the RowHammer threshold within a refresh window, and
delays further activations of blacklisted rows so the threshold can never be
reached before the periodic refresh restores the victims.

Two properties matter for the comparison in the paper's Fig. 18:

* BlockHammer never performs preventive refreshes — it only delays ACTs —
  so its cost is entirely the blocking delay;
* as ``N_RH`` decreases, the blacklist threshold falls and the required
  inter-activation delay grows, so even benign applications (which activate
  some rows hundreds of times per window, Table 3) become blocked and
  performance collapses.

The implementation uses exact per-row counters inside two time-interleaved
observation windows (the original uses counting Bloom filters; exactness only
makes our version stricter, never less safe).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dram.address import DramAddress
from repro.dram.config import DeviceConfig
from repro.mitigations.base import MitigationMechanism, PreventiveAction


class BlockHammer(MitigationMechanism):
    """Blacklist rapidly-activated rows and delay their future activations."""

    name = "blockhammer"

    def __init__(self, config: DeviceConfig, nrh: int,
                 blacklist_fraction: float = 0.25) -> None:
        super().__init__(config, nrh)
        timing = config.timing_cycles()
        self.window_cycles = timing.refresh_window
        # A row becomes blacklisted after this many activations in a window.
        self.blacklist_threshold = max(2, int(nrh * blacklist_fraction))
        # Once blacklisted, successive activations of the row must be spaced
        # far enough apart that the row cannot reach N_RH activations within
        # the refresh window.
        self.min_activation_interval = max(
            1, self.window_cycles // max(1, nrh)
        )

        # Two interleaved observation windows of per-row activation counts.
        self._counts_active: Dict[tuple, int] = {}
        self._counts_shadow: Dict[tuple, int] = {}
        self._last_activation_cycle: Dict[tuple, int] = {}
        self._next_window_switch = self.window_cycles // 2

        self.observed_activations = 0
        self.blacklisted_rows = 0
        self.delayed_activations = 0

    # ------------------------------------------------------------------ #
    def _row_count(self, row_key: tuple) -> int:
        return max(
            self._counts_active.get(row_key, 0),
            self._counts_shadow.get(row_key, 0),
        )

    def is_blacklisted(self, coordinate: DramAddress) -> bool:
        return self._row_count(coordinate.row_key) >= self.blacklist_threshold

    def allow_activation(self, coordinate: DramAddress, cycle: int) -> bool:
        if not self.is_blacklisted(coordinate):
            return True
        last = self._last_activation_cycle.get(coordinate.row_key)
        if last is None or cycle - last >= self.min_activation_interval:
            return True
        self.delayed_activations += 1
        return False

    def on_activation(self, coordinate: DramAddress,
                      thread_id: Optional[int],
                      cycle: int) -> List[PreventiveAction]:
        self.observed_activations += 1
        key = coordinate.row_key
        before = self._row_count(key)
        self._counts_active[key] = self._counts_active.get(key, 0) + 1
        self._counts_shadow[key] = self._counts_shadow.get(key, 0) + 1
        self._last_activation_cycle[key] = cycle
        if before < self.blacklist_threshold <= self._row_count(key):
            self.blacklisted_rows += 1
        return []

    def tick(self, cycle: int) -> List[PreventiveAction]:
        while cycle >= self._next_window_switch:
            self._next_window_switch += self.window_cycles // 2
            # The older window's counters expire; the shadow becomes active.
            self._counts_active = self._counts_shadow
            self._counts_shadow = {}
        return []

    def next_event_cycle(self, cycle: int) -> int:
        return self._next_window_switch

    def on_refresh_window(self, cycle: int) -> None:
        # Periodic refresh clears the last-activation history (victims are
        # now safe), but the interleaved counters expire on their own cadence.
        self._last_activation_cycle.clear()

    # ------------------------------------------------------------------ #
    def history_buffer_bytes(self) -> int:
        """Approximate SRAM cost of BlockHammer's row-tracking structures.

        The original design sizes its counting Bloom filters proportionally
        to the number of activations a refresh window can contain divided by
        the blacklist threshold; the cost therefore grows as N_RH decreases.
        Used by the Fig. 18 comparison's area commentary.
        """

        timing = self.config.timing_cycles()
        acts_per_window = timing.refresh_window // max(1, timing.trc)
        entries = max(1024, 8 * acts_per_window // max(1, self.blacklist_threshold))
        bytes_per_entry = 4
        return entries * bytes_per_entry * self.config.total_banks // 16

    def stats(self) -> dict:
        data = super().stats()
        data.update(
            blacklist_threshold=self.blacklist_threshold,
            min_activation_interval=self.min_activation_interval,
            blacklisted_rows=self.blacklisted_rows,
            delayed_activations=self.delayed_activations,
            observed_activations=self.observed_activations,
            history_buffer_bytes=self.history_buffer_bytes(),
        )
        return data

"""AQUA — quarantining aggressor rows via migration (Saxena et al., MICRO 2022).

AQUA tracks aggressor rows with a Misra-Gries summary (like Graphene), but
instead of refreshing victims it *migrates* the aggressor row's content into
a quarantine region of DRAM, breaking the physical adjacency between the
aggressor and its victims.  Migration is expensive — it occupies the bank for
roughly two row cycles — which is why AQUA scales poorly at low ``N_RH``
(paper Fig. 8) and why its preventive actions are such attractive targets for
memory performance attacks.

The quarantine region has finite capacity; when it fills, quarantined rows
must be migrated back (modelled by an extra migration action), matching the
original design's de-quarantine traffic.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dram.address import DramAddress
from repro.dram.config import DeviceConfig
from repro.mitigations.base import MitigationMechanism, PreventiveAction
from repro.mitigations.graphene import MisraGriesTable


class Aqua(MitigationMechanism):
    """Aggressor-row quarantine through row migration."""

    name = "aqua"

    def __init__(self, config: DeviceConfig, nrh: int,
                 table_entries: Optional[int] = None,
                 quarantine_rows_per_bank: int = 1024) -> None:
        super().__init__(config, nrh)
        self.migration_threshold = max(1, nrh // 2)
        if table_entries is None:
            timing = config.timing_cycles()
            acts_per_window = max(1, timing.refresh_window // max(1, timing.trc))
            table_entries = max(64, acts_per_window // self.migration_threshold)
        self.table_entries = table_entries
        self.quarantine_capacity = quarantine_rows_per_bank

        self._tables: Dict[tuple, MisraGriesTable] = {}
        # Per bank: number of rows currently in the quarantine area.
        self._quarantine_occupancy: Dict[tuple, int] = {}
        self.observed_activations = 0
        self.migrations = 0
        self.dequarantine_migrations = 0

    # ------------------------------------------------------------------ #
    def _table(self, bank_key: tuple) -> MisraGriesTable:
        table = self._tables.get(bank_key)
        if table is None:
            table = MisraGriesTable(capacity=self.table_entries)
            self._tables[bank_key] = table
        return table

    def on_activation(self, coordinate: DramAddress,
                      thread_id: Optional[int],
                      cycle: int) -> List[PreventiveAction]:
        self.observed_activations += 1
        actions: List[PreventiveAction] = []
        table = self._table(coordinate.bank_key)
        estimate = table.observe(coordinate.row)
        if estimate < self.migration_threshold:
            return actions

        table.reset_row(coordinate.row)
        self.migrations += 1
        actions.append(self.migration_action(coordinate, cycle))

        occupancy = self._quarantine_occupancy.get(coordinate.bank_key, 0) + 1
        if occupancy > self.quarantine_capacity:
            # Quarantine full: migrate the oldest row back out.
            self.dequarantine_migrations += 1
            occupancy -= 1
            actions.append(
                self.migration_action(coordinate, cycle, weight=0.5)
            )
        self._quarantine_occupancy[coordinate.bank_key] = occupancy
        return actions

    def on_refresh_window(self, cycle: int) -> None:
        for table in self._tables.values():
            table.clear()
        # Quarantined rows persist across windows (their adjacency is already
        # broken); only the tracking state resets.

    def stats(self) -> dict:
        data = super().stats()
        data.update(
            migration_threshold=self.migration_threshold,
            migrations=self.migrations,
            dequarantine_migrations=self.dequarantine_migrations,
            observed_activations=self.observed_activations,
        )
        return data

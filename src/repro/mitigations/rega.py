"""REGA — Refresh-Generating Activations (Marazzi et al., S&P 2023).

REGA changes the DRAM chip itself: every subarray gains a second row buffer
so victim rows can be refreshed *in parallel* with ordinary activations.  Its
protection strength is set by ``REGA_T`` (refresh one potential victim every
``T`` activations); stronger protection (lower ``N_RH``) requires refreshing
more rows per activation, which lengthens the row cycle.

Consequences for this model (mirroring the paper's footnote 10):

* REGA produces **no blocking preventive commands** — instead it inflates
  the bank-level timing parameters (tRAS / tRC).  The system builder asks
  :meth:`Rega.adjusted_timings` for the modified timings before constructing
  the DRAM channel.
* BreakHammer still needs something to score.  Per the paper, a thread's
  score is incremented by one for every ``REGA_T`` activations the thread
  performs; we emit a zero-command, zero-latency preventive action at that
  rate so the observer machinery sees it without consuming bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import List, Optional

from repro.dram.address import DramAddress
from repro.dram.config import DeviceConfig, TimingParameters
from repro.mitigations.base import (
    MitigationMechanism,
    PreventiveAction,
    PreventiveActionKind,
)


class Rega(MitigationMechanism):
    """In-DRAM parallel victim refresh with a timing-overhead cost."""

    name = "rega"
    on_dram_die = True

    def __init__(self, config: DeviceConfig, nrh: int,
                 rega_t: Optional[int] = None) -> None:
        super().__init__(config, nrh)
        # REGA_T: refresh one potential victim every T activations.  To be
        # safe, T must shrink as N_RH shrinks; the original work uses T in
        # the single digits for sub-1K thresholds.
        if rega_t is None:
            rega_t = max(1, nrh // 512)
        self.rega_t = rega_t
        # Rows that must be refreshed in parallel with each activation.
        self.victims_per_activation = max(1, math.ceil(2.0 / self.rega_t))
        self.observed_activations = 0
        self._activation_counter = 0

    # ------------------------------------------------------------------ #
    # Timing impact
    # ------------------------------------------------------------------ #
    def timing_penalty_ns(self) -> float:
        """Additional row-cycle time needed for the parallel refreshes.

        Each parallel victim refresh extends the restore phase; the penalty
        grows as REGA must protect lower thresholds.  The constant is chosen
        so the penalty is negligible at N_RH = 4K and becomes a double-digit
        percentage of tRC at N_RH = 64, matching the trend in the paper's
        Fig. 2/8 where REGA's overhead is modest but grows.
        """

        return 1.5 * self.victims_per_activation * math.log2(
            max(2, 4096 / max(1, self.nrh))
        )

    def adjusted_timings(self) -> TimingParameters:
        """Return the device timing parameters inflated by REGA's penalty."""

        penalty = self.timing_penalty_ns()
        base = self.config.timings
        return replace(
            base,
            tras=base.tras + penalty,
            trc=base.trc + penalty,
        )

    # ------------------------------------------------------------------ #
    def on_activation(self, coordinate: DramAddress,
                      thread_id: Optional[int],
                      cycle: int) -> List[PreventiveAction]:
        self.observed_activations += 1
        self._activation_counter += 1
        if self._activation_counter >= self.rega_t:
            self._activation_counter = 0
            action = PreventiveAction(
                kind=PreventiveActionKind.VICTIM_REFRESH,
                commands=[],  # refresh happens in parallel inside the chip
                mechanism=self.name,
                aggressor_row=coordinate.row_key,
                weight=1.0,
                created_cycle=cycle,
                metadata={"parallel": True},
            )
            return [self._register(action)]
        return []

    def stats(self) -> dict:
        data = super().stats()
        data.update(
            rega_t=self.rega_t,
            victims_per_activation=self.victims_per_activation,
            timing_penalty_ns=self.timing_penalty_ns(),
            observed_activations=self.observed_activations,
        )
        return data

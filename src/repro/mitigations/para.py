"""PARA — Probabilistic Adjacent Row Activation (Kim et al., ISCA 2014).

PARA is stateless: on every row activation it performs a preventive refresh
of the activated row's neighbours with probability ``p``.  To provide a
RowHammer-safe configuration for a threshold ``N_RH``, ``p`` must be high
enough that an aggressor is overwhelmingly unlikely to reach ``N_RH``
activations without any of them triggering a neighbour refresh; the standard
scaling (used by the paper and by BlockHammer's PARA comparison) is
``p ∝ 1 / N_RH`` with a safety multiplier.

PARA's weakness, which Fig. 8 of the paper highlights, is that at low
``N_RH`` the probability becomes so high that even benign applications pay a
preventive refresh on a large fraction of their activations.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.dram.address import DramAddress
from repro.dram.config import DeviceConfig
from repro.mitigations.base import MitigationMechanism, PreventiveAction


class Para(MitigationMechanism):
    """Probabilistic preventive refresh on each activation."""

    name = "para"

    #: Safety factor: the expected number of preventive refreshes an
    #: aggressor receives before reaching N_RH activations.
    SAFETY_FACTOR = 11.0

    def __init__(self, config: DeviceConfig, nrh: int,
                 probability: Optional[float] = None,
                 blast_radius: int = 1, seed: int = 0) -> None:
        super().__init__(config, nrh)
        if probability is None:
            probability = min(1.0, self.SAFETY_FACTOR / float(nrh))
        if not 0.0 < probability <= 1.0:
            raise ValueError("PARA probability must be in (0, 1]")
        self.probability = probability
        self.blast_radius = blast_radius
        self._rng = random.Random(seed)
        self.observed_activations = 0

    def on_activation(self, coordinate: DramAddress,
                      thread_id: Optional[int],
                      cycle: int) -> List[PreventiveAction]:
        self.observed_activations += 1
        if self._rng.random() < self.probability:
            return [
                self.victim_refresh_action(
                    coordinate, cycle, blast_radius=self.blast_radius
                )
            ]
        return []

    def stats(self) -> dict:
        data = super().stats()
        data.update(
            probability=self.probability,
            observed_activations=self.observed_activations,
        )
        return data

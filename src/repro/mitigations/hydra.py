"""Hydra — hybrid group/per-row activation tracking (Qureshi et al., ISCA 2022).

Hydra keeps the common case cheap with a small SRAM *group count table*
(GCT): rows are tracked in aggregated groups until a group's collective
activation count reaches the *group threshold*; only then does Hydra fall
back to precise per-row counters, which live in DRAM (the *row count table*,
RCT) with a small SRAM cache (RCC) in front.

Two kinds of RowHammer-preventive work arise, and both interfere with normal
traffic (and are therefore observed by BreakHammer, per the paper §4.1):

* a *preventive refresh* when a per-row counter exceeds the refresh
  threshold, and
* *RCT traffic* when the per-row counter must be fetched from / written back
  to DRAM on an RCC miss — modelled here as an extra DRAM access penalty
  carried by a preventive action with a smaller weight.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.dram.address import DramAddress
from repro.dram.commands import Command, CommandType
from repro.dram.config import DeviceConfig
from repro.mitigations.base import (
    MitigationMechanism,
    PreventiveAction,
    PreventiveActionKind,
)


@dataclass
class HydraConfig:
    """Tunable parameters of the Hydra tracker."""

    group_size: int = 128  # rows aggregated per group counter
    rcc_entries_per_bank: int = 64  # per-row counter cache capacity
    group_threshold_fraction: float = 0.5  # group threshold = fraction * N_RH
    refresh_threshold_fraction: float = 0.625  # per-row refresh threshold


class Hydra(MitigationMechanism):
    """Hybrid group / per-row tracking with a DRAM-resident counter table."""

    name = "hydra"

    def __init__(self, config: DeviceConfig, nrh: int,
                 hydra_config: Optional[HydraConfig] = None,
                 blast_radius: int = 1,
                 group_size: Optional[int] = None,
                 rcc_entries_per_bank: Optional[int] = None) -> None:
        super().__init__(config, nrh)
        self.params = hydra_config or HydraConfig()
        # Scalar table-size overrides: the registry (and the differential
        # fuzzer's `mitigation_kwargs` sampling) can resize the tracker
        # without constructing a HydraConfig.
        if group_size is not None or rcc_entries_per_bank is not None:
            self.params = replace(
                self.params,
                **({"group_size": group_size}
                   if group_size is not None else {}),
                **({"rcc_entries_per_bank": rcc_entries_per_bank}
                   if rcc_entries_per_bank is not None else {}),
            )
        self.group_threshold = max(1, int(nrh * self.params.group_threshold_fraction))
        self.refresh_threshold = max(1, int(nrh * self.params.refresh_threshold_fraction))
        self.blast_radius = blast_radius

        # Group count table: (bank_key, group_index) -> count
        self._group_counts: Dict[tuple, int] = {}
        # Row count table (the DRAM-resident precise counters).
        self._row_counts: Dict[tuple, int] = {}
        # Row counter cache: per bank an LRU of row ids present in SRAM.
        self._rcc: Dict[tuple, OrderedDict] = {}

        self.observed_activations = 0
        self.rcc_hits = 0
        self.rcc_misses = 0

    # ------------------------------------------------------------------ #
    def _group_of(self, row: int) -> int:
        return row // self.params.group_size

    def _rcc_for(self, bank_key: tuple) -> OrderedDict:
        cache = self._rcc.get(bank_key)
        if cache is None:
            cache = OrderedDict()
            self._rcc[bank_key] = cache
        return cache

    def _touch_rcc(self, bank_key: tuple, row: int) -> bool:
        """Access the row counter cache; return True on hit."""

        cache = self._rcc_for(bank_key)
        if row in cache:
            cache.move_to_end(row)
            self.rcc_hits += 1
            return True
        self.rcc_misses += 1
        cache[row] = True
        if len(cache) > self.params.rcc_entries_per_bank:
            cache.popitem(last=False)
        return False

    # ------------------------------------------------------------------ #
    def on_activation(self, coordinate: DramAddress,
                      thread_id: Optional[int],
                      cycle: int) -> List[PreventiveAction]:
        self.observed_activations += 1
        actions: List[PreventiveAction] = []
        bank_key = coordinate.bank_key
        group_key = (bank_key, self._group_of(coordinate.row))
        group_count = self._group_counts.get(group_key, 0) + 1
        self._group_counts[group_key] = group_count

        if group_count <= self.group_threshold:
            return actions

        # Per-row tracking engaged for this group.
        row_key = coordinate.row_key
        hit = self._touch_rcc(bank_key, coordinate.row)
        if not hit:
            # RCT access: one read (and eventual writeback) in the same bank.
            # Modelled as a lightweight preventive action because it consumes
            # DRAM bandwidth that ordinary requests cannot use.
            rct_access = PreventiveAction(
                kind=PreventiveActionKind.VICTIM_REFRESH,
                commands=[
                    Command(
                        CommandType.ACT,
                        channel=coordinate.channel,
                        rank=coordinate.rank,
                        bank_group=coordinate.bank_group,
                        bank=coordinate.bank,
                        row=(coordinate.row + self.config.rows_per_bank // 2)
                        % self.config.rows_per_bank,
                    ),
                    Command(
                        CommandType.PRE,
                        channel=coordinate.channel,
                        rank=coordinate.rank,
                        bank_group=coordinate.bank_group,
                        bank=coordinate.bank,
                    ),
                ],
                mechanism=self.name,
                aggressor_row=row_key,
                weight=0.25,
                created_cycle=cycle,
                metadata={"reason": "rct_miss"},
            )
            actions.append(self._register(rct_access))

        row_count = self._row_counts.get(row_key, group_count // 2) + 1
        self._row_counts[row_key] = row_count
        if row_count >= self.refresh_threshold:
            self._row_counts[row_key] = 0
            actions.append(
                self.victim_refresh_action(
                    coordinate, cycle, blast_radius=self.blast_radius
                )
            )
        return actions

    def on_refresh_window(self, cycle: int) -> None:
        # Periodic refresh resets all activation tracking state.
        self._group_counts.clear()
        self._row_counts.clear()
        for cache in self._rcc.values():
            cache.clear()

    # ------------------------------------------------------------------ #
    def sram_cost_bytes(self) -> int:
        """Approximate SRAM cost of Hydra's structures (for §3 discussion)."""

        banks = self.config.total_banks
        groups_per_bank = self.config.rows_per_bank // self.params.group_size
        gct_bits = banks * groups_per_bank * 16
        rcc_bits = banks * self.params.rcc_entries_per_bank * (16 + 17)
        return (gct_bits + rcc_bits) // 8

    def stats(self) -> dict:
        data = super().stats()
        data.update(
            group_threshold=self.group_threshold,
            refresh_threshold=self.refresh_threshold,
            rcc_hits=self.rcc_hits,
            rcc_misses=self.rcc_misses,
            observed_activations=self.observed_activations,
            sram_cost_bytes=self.sram_cost_bytes(),
        )
        return data

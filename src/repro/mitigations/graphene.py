"""Graphene — Misra-Gries frequent-row tracking (Park et al., MICRO 2020).

Graphene maintains, per bank, a small table of ``(row, estimated count)``
pairs managed with the Misra-Gries frequent-element algorithm plus a spillover
counter.  When a tracked row's estimated activation count exceeds the refresh
threshold, Graphene refreshes the row's neighbours and resets the entry.  The
table is reset every reset window (here: every refresh window, tREFW).

Configuration follows the original paper: with a RowHammer threshold
``N_RH``, the refresh threshold is ``N_RH / 2`` (so a row is refreshed well
before it can reach ``N_RH`` activations even across a reset boundary), and
the table must hold at least ``activations_per_window / refresh_threshold``
entries per bank to guarantee no aggressor escapes tracking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dram.address import DramAddress
from repro.dram.config import DeviceConfig
from repro.mitigations.base import MitigationMechanism, PreventiveAction


@dataclass
class MisraGriesTable:
    """A Misra-Gries summary of row-activation counts for one bank."""

    capacity: int
    counters: Dict[int, int] = field(default_factory=dict)
    spillover: int = 0

    def observe(self, row: int) -> int:
        """Count one activation of ``row``; return its estimated count."""

        if row in self.counters:
            self.counters[row] += 1
        elif len(self.counters) < self.capacity:
            self.counters[row] = self.spillover + 1
        else:
            # Decrement phase: find the minimum counter.
            min_row = min(self.counters, key=self.counters.get)
            min_value = self.counters[min_row]
            if min_value <= self.spillover:
                # Replace the minimum entry with the new row.
                del self.counters[min_row]
                self.counters[row] = self.spillover + 1
            else:
                self.spillover += 1
                return self.spillover
        return self.counters.get(row, self.spillover)

    def reset_row(self, row: int) -> None:
        if row in self.counters:
            self.counters[row] = self.spillover

    def clear(self) -> None:
        self.counters.clear()
        self.spillover = 0


class Graphene(MitigationMechanism):
    """Deterministic aggressor tracking with Misra-Gries summaries."""

    name = "graphene"

    def __init__(self, config: DeviceConfig, nrh: int,
                 table_entries: Optional[int] = None,
                 reset_on_refresh_window: bool = True,
                 blast_radius: int = 1) -> None:
        super().__init__(config, nrh)
        self.refresh_threshold = max(1, nrh // 2)
        if table_entries is None:
            # Worst case activations per bank per refresh window, divided by
            # the refresh threshold, bounds how many rows can cross it.
            timing = config.timing_cycles()
            acts_per_window = max(
                1, timing.refresh_window // max(1, timing.trc)
            )
            table_entries = max(64, acts_per_window // self.refresh_threshold)
        self.table_entries = table_entries
        self.blast_radius = blast_radius
        self.reset_on_refresh_window = reset_on_refresh_window
        self._tables: Dict[tuple, MisraGriesTable] = {}
        self.observed_activations = 0

    # ------------------------------------------------------------------ #
    def _table(self, bank_key: tuple) -> MisraGriesTable:
        table = self._tables.get(bank_key)
        if table is None:
            table = MisraGriesTable(capacity=self.table_entries)
            self._tables[bank_key] = table
        return table

    def on_activation(self, coordinate: DramAddress,
                      thread_id: Optional[int],
                      cycle: int) -> List[PreventiveAction]:
        self.observed_activations += 1
        table = self._table(coordinate.bank_key)
        estimate = table.observe(coordinate.row)
        if estimate >= self.refresh_threshold:
            table.reset_row(coordinate.row)
            return [
                self.victim_refresh_action(
                    coordinate, cycle, blast_radius=self.blast_radius
                )
            ]
        return []

    def on_refresh_window(self, cycle: int) -> None:
        if self.reset_on_refresh_window:
            for table in self._tables.values():
                table.clear()

    def stats(self) -> dict:
        data = super().stats()
        data.update(
            refresh_threshold=self.refresh_threshold,
            table_entries=self.table_entries,
            banks_tracked=len(self._tables),
            observed_activations=self.observed_activations,
        )
        return data

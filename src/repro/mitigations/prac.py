"""PRAC — Per Row Activation Counting (JEDEC DDR5, JESD79-5c, April 2024).

PRAC stores an activation counter inside every DRAM row.  When a row's
counter crosses the back-off threshold, the DRAM chip asserts the ``alert_n``
back-off signal; the memory controller must respond by issuing a
predetermined number of RFM commands, during which the chip refreshes the
endangered victims and resets the row's counter.

Compared to controller-side trackers, PRAC is precise (it never misses an
aggressor) but its back-off servicing blocks the bank, so at low ``N_RH`` a
hammering thread can force frequent back-offs and hog bandwidth — the
behaviour BreakHammer throttles.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dram.address import DramAddress
from repro.dram.config import DeviceConfig
from repro.mitigations.base import (
    MitigationMechanism,
    PreventiveAction,
    PreventiveActionKind,
)


class Prac(MitigationMechanism):
    """Per-row activation counters with alert_n back-off servicing."""

    name = "prac"
    on_dram_die = True

    def __init__(self, config: DeviceConfig, nrh: int,
                 backoff_threshold: Optional[int] = None,
                 rfm_per_backoff: int = 2,
                 blast_radius: int = 1) -> None:
        super().__init__(config, nrh)
        # The chip must alert early enough that the controller's servicing
        # window keeps every victim safe; half the threshold is the standard
        # conservative setting used in prior analyses.
        self.backoff_threshold = backoff_threshold or max(1, nrh // 2)
        self.rfm_per_backoff = rfm_per_backoff
        self.blast_radius = blast_radius
        self._row_counters: Dict[tuple, int] = {}
        self.observed_activations = 0
        self.backoffs = 0

    def on_activation(self, coordinate: DramAddress,
                      thread_id: Optional[int],
                      cycle: int) -> List[PreventiveAction]:
        self.observed_activations += 1
        key = coordinate.row_key
        count = self._row_counters.get(key, 0) + 1
        if count < self.backoff_threshold:
            self._row_counters[key] = count
            return []

        # alert_n back-off: the controller issues RFM commands and the chip
        # refreshes the aggressor's neighbours; the row counter resets.
        self._row_counters[key] = 0
        self.backoffs += 1
        refresh = self.victim_refresh_action(
            coordinate,
            cycle,
            blast_radius=self.blast_radius,
            kind=PreventiveActionKind.BACKOFF,
        )
        rfm_actions = [
            self.rfm_action(coordinate, cycle, weight=0.0,
                            kind=PreventiveActionKind.BACKOFF)
            for _ in range(max(0, self.rfm_per_backoff - 1))
        ]
        return [refresh, *rfm_actions]

    def on_refresh_window(self, cycle: int) -> None:
        # Periodic refresh restores every row's charge and resets counters.
        self._row_counters.clear()

    def stats(self) -> dict:
        data = super().stats()
        data.update(
            backoff_threshold=self.backoff_threshold,
            rfm_per_backoff=self.rfm_per_backoff,
            backoffs=self.backoffs,
            observed_activations=self.observed_activations,
            tracked_rows=len(self._row_counters),
        )
        return data

"""Registry of RowHammer mitigation mechanisms.

The experiment harness, examples, and tests create mechanisms by name so
that mechanism lists stay declarative (e.g. the paper's eight mechanisms in
Fig. 8 are simply ``PAIRED_MECHANISMS``).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List

from repro.dram.config import DeviceConfig
from repro.mitigations.aqua import Aqua
from repro.mitigations.base import MitigationMechanism, NoMitigation
from repro.mitigations.blockhammer import BlockHammer
from repro.mitigations.graphene import Graphene
from repro.mitigations.hydra import Hydra
from repro.mitigations.para import Para
from repro.mitigations.prac import Prac
from repro.mitigations.rega import Rega
from repro.mitigations.rfm import RfmMitigation
from repro.mitigations.twice import TwiCe

MechanismFactory = Callable[..., MitigationMechanism]

_REGISTRY: Dict[str, MechanismFactory] = {
    "none": NoMitigation,
    "para": Para,
    "graphene": Graphene,
    "hydra": Hydra,
    "twice": TwiCe,
    "aqua": Aqua,
    "rega": Rega,
    "rfm": RfmMitigation,
    "prac": Prac,
    "blockhammer": BlockHammer,
}

#: The eight mechanisms the paper pairs with BreakHammer (Figs. 6-17).
PAIRED_MECHANISMS: List[str] = [
    "para",
    "graphene",
    "hydra",
    "twice",
    "aqua",
    "rega",
    "rfm",
    "prac",
]

#: The mechanisms shown in the motivation figure (Fig. 2).
MOTIVATION_MECHANISMS: List[str] = ["hydra", "rfm", "para", "aqua"]

#: The N_RH sweep used throughout the paper's evaluation.
NRH_SWEEP: List[int] = [4096, 2048, 1024, 512, 256, 128, 64]


def available_mechanisms() -> List[str]:
    """All registered mechanism names."""

    return sorted(_REGISTRY)


def register_mechanism(name: str, factory: MechanismFactory,
                       overwrite: bool = False) -> None:
    """Register a custom mechanism (used by tests and extensions)."""

    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"mechanism {name!r} is already registered")
    _REGISTRY[key] = factory


def create_mechanism(name: str, config: DeviceConfig, nrh: int,
                     **kwargs) -> MitigationMechanism:
    """Instantiate a mechanism by name for the given threshold."""

    key = name.lower()
    if key not in _REGISTRY:
        raise ValueError(
            f"unknown mitigation mechanism {name!r}; "
            f"available: {', '.join(available_mechanisms())}"
        )
    factory = _REGISTRY[key]
    if key == "none":
        return factory(config)
    return factory(config, nrh, **kwargs)


def create_all(names: Iterable[str], config: DeviceConfig, nrh: int
               ) -> Dict[str, MitigationMechanism]:
    """Instantiate several mechanisms at once, keyed by name."""

    return {name: create_mechanism(name, config, nrh) for name in names}

"""TWiCe — Time Window Counter based row refresh (Lee et al., ISCA 2019).

TWiCe maintains a per-bank table of recently-activated rows.  Each entry
carries an activation count and a *lifetime*; entries whose activation rate
is too low to ever reach the RowHammer threshold within the refresh window
are pruned at periodic checkpoints, which keeps the table small.  When an
entry's count crosses the refresh threshold, the row's neighbours are
refreshed and the entry is reset.

The pruning rule follows the original paper: at the ``k``-th checkpoint an
entry must have at least ``k * threshold_to_window_ratio`` activations to
survive, otherwise the row provably cannot reach ``N_RH`` before the next
periodic refresh and its entry is dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dram.address import DramAddress
from repro.dram.config import DeviceConfig
from repro.mitigations.base import MitigationMechanism, PreventiveAction


@dataclass
class TwiCeEntry:
    """One tracked row."""

    activation_count: int = 0
    lifetime_checkpoints: int = 0


class TwiCe(MitigationMechanism):
    """Counter-table aggressor tracking with lifetime-based pruning."""

    name = "twice"

    def __init__(self, config: DeviceConfig, nrh: int,
                 checkpoint_interval_cycles: Optional[int] = None,
                 blast_radius: int = 1) -> None:
        super().__init__(config, nrh)
        timing = config.timing_cycles()
        self.refresh_threshold = max(1, nrh // 2)
        # Number of pruning checkpoints per refresh window.
        self.checkpoints_per_window = 16
        self.checkpoint_interval = (
            checkpoint_interval_cycles
            if checkpoint_interval_cycles is not None
            else max(1, timing.refresh_window // self.checkpoints_per_window)
        )
        # Minimum activations per checkpoint for an entry to stay alive.
        self.prune_rate = max(
            1, self.refresh_threshold // self.checkpoints_per_window
        )
        self.blast_radius = blast_radius

        self._tables: Dict[tuple, Dict[int, TwiCeEntry]] = {}
        self._next_checkpoint = self.checkpoint_interval
        self.observed_activations = 0
        self.pruned_entries = 0
        self.peak_table_size = 0

    # ------------------------------------------------------------------ #
    def _table(self, bank_key: tuple) -> Dict[int, TwiCeEntry]:
        table = self._tables.get(bank_key)
        if table is None:
            table = {}
            self._tables[bank_key] = table
        return table

    def on_activation(self, coordinate: DramAddress,
                      thread_id: Optional[int],
                      cycle: int) -> List[PreventiveAction]:
        self.observed_activations += 1
        table = self._table(coordinate.bank_key)
        entry = table.setdefault(coordinate.row, TwiCeEntry())
        entry.activation_count += 1
        self.peak_table_size = max(self.peak_table_size, len(table))
        if entry.activation_count >= self.refresh_threshold:
            entry.activation_count = 0
            entry.lifetime_checkpoints = 0
            return [
                self.victim_refresh_action(
                    coordinate, cycle, blast_radius=self.blast_radius
                )
            ]
        return []

    def tick(self, cycle: int) -> List[PreventiveAction]:
        while cycle >= self._next_checkpoint:
            self._next_checkpoint += self.checkpoint_interval
            self._prune()
        return []

    def next_event_cycle(self, cycle: int) -> int:
        return self._next_checkpoint

    def _prune(self) -> None:
        for table in self._tables.values():
            doomed = []
            for row, entry in table.items():
                entry.lifetime_checkpoints += 1
                required = entry.lifetime_checkpoints * self.prune_rate
                if entry.activation_count < required:
                    doomed.append(row)
            for row in doomed:
                del table[row]
                self.pruned_entries += 1

    def on_refresh_window(self, cycle: int) -> None:
        for table in self._tables.values():
            table.clear()

    def stats(self) -> dict:
        data = super().stats()
        data.update(
            refresh_threshold=self.refresh_threshold,
            checkpoint_interval=self.checkpoint_interval,
            pruned_entries=self.pruned_entries,
            peak_table_size=self.peak_table_size,
            observed_activations=self.observed_activations,
        )
        return data

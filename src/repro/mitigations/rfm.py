"""Periodic Refresh Management (RFM) — JEDEC DDR5 (JESD79-5).

The memory controller maintains a Rolling Accumulated ACT (RAA) counter per
bank.  Every ``RAAIMT`` activations the controller must issue an RFM command
to that bank, giving the DRAM die a time window (tRFM) to perform its own
RowHammer-preventive maintenance.  The RFM command blocks the bank, so RFM's
cost scales directly with activation rate — which is why an attacker that
maximises row activations also maximises RFM overhead for everyone sharing
the bank (the memory performance attack BreakHammer defeats).

The RAAIMT configuration follows the "mathematically-proven secure"
scaling used by the paper's reference [220]: RAAIMT shrinks proportionally
with the RowHammer threshold.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dram.address import DramAddress
from repro.dram.config import DeviceConfig
from repro.mitigations.base import MitigationMechanism, PreventiveAction


class RfmMitigation(MitigationMechanism):
    """Controller-issued RFM commands every RAAIMT activations per bank."""

    name = "rfm"
    on_dram_die = True

    #: Activations allowed per RFM at the reference threshold (N_RH = 4096).
    REFERENCE_RAAIMT = 80
    REFERENCE_NRH = 4096

    def __init__(self, config: DeviceConfig, nrh: int,
                 raaimt: Optional[int] = None) -> None:
        super().__init__(config, nrh)
        if raaimt is None:
            raaimt = max(
                4, int(self.REFERENCE_RAAIMT * nrh / self.REFERENCE_NRH)
            )
        self.raaimt = raaimt
        # RAA counter per bank.
        self._raa: Dict[tuple, int] = {}
        self.observed_activations = 0
        self.rfm_issued = 0

    def on_activation(self, coordinate: DramAddress,
                      thread_id: Optional[int],
                      cycle: int) -> List[PreventiveAction]:
        self.observed_activations += 1
        key = coordinate.bank_key
        count = self._raa.get(key, 0) + 1
        if count >= self.raaimt:
            self._raa[key] = 0
            self.rfm_issued += 1
            return [self.rfm_action(coordinate, cycle)]
        self._raa[key] = count
        return []

    def on_refresh_window(self, cycle: int) -> None:
        # Periodic refresh window resets RAA counters (REF decrements RAA in
        # the standard; a full window reset is the coarse equivalent).
        self._raa.clear()

    def stats(self) -> dict:
        data = super().stats()
        data.update(
            raaimt=self.raaimt,
            rfm_issued=self.rfm_issued,
            observed_activations=self.observed_activations,
        )
        return data

"""Memory request scheduling policies.

The paper's controller uses FR-FCFS with a *cap on column-over-row
reordering* (FR-FCFS+Cap, Mutlu & Moscibroda MICRO'07) of four: row-buffer
hits may be served ahead of older row-buffer misses, but at most ``cap``
times in a row per bank, which bounds the starvation a row-hit-friendly
(e.g. streaming or hammering) thread can inflict on others.

Two additional policies — plain FR-FCFS and strict FCFS — are provided for
ablation studies and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.controller.request import MemoryRequest
from repro.dram.device import Channel


@dataclass
class SchedulerDecision:
    """The request chosen by the scheduler, with the reason recorded."""

    request: MemoryRequest
    is_row_hit: bool
    reason: str


class BaseScheduler:
    """Interface shared by all scheduling policies.

    ``prioritize`` returns candidates in descending priority; the controller
    walks the list and issues the first command that is actually ready this
    cycle, which preserves bank-level parallelism (a stalled head-of-line
    request does not block requests to other banks).
    """

    name = "base"

    def prioritize(self, candidates: List[MemoryRequest], channel: Channel,
                   cycle: int) -> List[SchedulerDecision]:
        raise NotImplementedError

    def choose(self, candidates: List[MemoryRequest], channel: Channel,
               cycle: int) -> Optional[SchedulerDecision]:
        """The single highest-priority candidate (convenience for tests)."""

        ordered = self.prioritize(candidates, channel, cycle)
        return ordered[0] if ordered else None

    def notify_served(self, decision: SchedulerDecision) -> None:
        """Hook invoked when the chosen request's column command issues."""


def _is_row_hit(request: MemoryRequest, channel: Channel) -> bool:
    coord = request.coordinate
    if coord is None:
        return False
    return channel.bank(coord.rank, coord.bank_group, coord.bank).is_open(
        coord.row
    )


class FcfsScheduler(BaseScheduler):
    """Strict first-come-first-served scheduling (oldest request wins)."""

    name = "fcfs"

    def prioritize(self, candidates: List[MemoryRequest], channel: Channel,
                   cycle: int) -> List[SchedulerDecision]:
        ordered = sorted(candidates,
                         key=lambda r: (r.arrival_cycle, r.request_id))
        return [
            SchedulerDecision(req, _is_row_hit(req, channel), "fcfs-oldest")
            for req in ordered
        ]


class FrFcfsScheduler(BaseScheduler):
    """First-ready FCFS: row-buffer hits first, then the oldest request."""

    name = "frfcfs"

    def prioritize(self, candidates: List[MemoryRequest], channel: Channel,
                   cycle: int) -> List[SchedulerDecision]:
        hits: List[MemoryRequest] = []
        misses: List[MemoryRequest] = []
        for req in candidates:
            (hits if _is_row_hit(req, channel) else misses).append(req)
        hits.sort(key=lambda r: (r.arrival_cycle, r.request_id))
        misses.sort(key=lambda r: (r.arrival_cycle, r.request_id))
        return [
            SchedulerDecision(req, True, "row-hit") for req in hits
        ] + [
            SchedulerDecision(req, False, "oldest-miss") for req in misses
        ]


class FrFcfsCapScheduler(BaseScheduler):
    """FR-FCFS with a per-bank cap on column-over-row reordering.

    A row-buffer hit may bypass an older row-buffer miss to the same bank at
    most ``cap`` consecutive times; after that the oldest miss is scheduled
    even though it needs a PRE+ACT.  This is the policy used throughout the
    paper's evaluation (Cap = 4).
    """

    name = "frfcfs_cap"

    def __init__(self, cap: int = 4) -> None:
        if cap < 1:
            raise ValueError("cap must be at least 1")
        self.cap = cap
        self._hits_over_misses: Dict[tuple, int] = {}

    def prioritize(self, candidates: List[MemoryRequest], channel: Channel,
                   cycle: int) -> List[SchedulerDecision]:
        if not candidates:
            return []

        def bank_of(req: MemoryRequest) -> tuple:
            assert req.coordinate is not None
            return req.coordinate.bank_key

        hits: List[MemoryRequest] = []
        misses: List[MemoryRequest] = []
        for req in candidates:
            coord = req.coordinate
            if coord is None:
                misses.append(req)
                continue
            bank = channel.bank(coord.rank, coord.bank_group, coord.bank)
            (hits if bank.is_open(coord.row) else misses).append(req)

        oldest_miss_by_bank: Dict[tuple, MemoryRequest] = {}
        for req in misses:
            key = bank_of(req)
            cur = oldest_miss_by_bank.get(key)
            if cur is None or (req.arrival_cycle, req.request_id) < (
                cur.arrival_cycle, cur.request_id
            ):
                oldest_miss_by_bank[key] = req

        # Row hits that have not exhausted the cap against an older miss.
        eligible_hits: List[MemoryRequest] = []
        deferred_hits: List[MemoryRequest] = []
        for req in hits:
            key = bank_of(req)
            older_miss = oldest_miss_by_bank.get(key)
            if older_miss is not None and (
                older_miss.arrival_cycle,
                older_miss.request_id,
            ) < (req.arrival_cycle, req.request_id):
                if self._hits_over_misses.get(key, 0) >= self.cap:
                    deferred_hits.append(req)  # cap reached: miss goes first
                    continue
            eligible_hits.append(req)

        # Candidates arrive in queue (= arrival) order, so the sub-lists are
        # already oldest-first; no re-sorting is needed on the hot path.
        ordered: List[SchedulerDecision] = []
        ordered.extend(
            SchedulerDecision(req, True, "row-hit") for req in eligible_hits
        )
        ordered.extend(
            SchedulerDecision(req, False, "oldest-miss") for req in misses
        )
        ordered.extend(
            SchedulerDecision(req, True, "capped-hit") for req in deferred_hits
        )
        return ordered

    def notify_served(self, decision: SchedulerDecision) -> None:
        coord = decision.request.coordinate
        if coord is None:
            return
        key = coord.bank_key
        if decision.is_row_hit:
            self._hits_over_misses[key] = self._hits_over_misses.get(key, 0) + 1
        else:
            # A miss was served: the bank's reorder budget resets.
            self._hits_over_misses[key] = 0


def make_scheduler(name: str, cap: int = 4) -> BaseScheduler:
    """Factory used by :class:`repro.sim.config.SystemConfig`."""

    normalized = name.lower()
    if normalized in ("frfcfs_cap", "frfcfs+cap", "fr-fcfs+cap"):
        return FrFcfsCapScheduler(cap=cap)
    if normalized in ("frfcfs", "fr-fcfs"):
        return FrFcfsScheduler()
    if normalized == "fcfs":
        return FcfsScheduler()
    raise ValueError(f"unknown scheduler policy: {name!r}")

"""Memory request scheduling policies.

The paper's controller uses FR-FCFS with a *cap on column-over-row
reordering* (FR-FCFS+Cap, Mutlu & Moscibroda MICRO'07) of four: row-buffer
hits may be served ahead of older row-buffer misses, but at most ``cap``
times in a row per bank, which bounds the starvation a row-hit-friendly
(e.g. streaming or hammering) thread can inflict on others.

Two additional policies — plain FR-FCFS and strict FCFS — are provided for
ablation studies and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.controller.request import MemoryRequest
from repro.dram.device import Channel


@dataclass(slots=True)
class SchedulerDecision:
    """The request chosen by the scheduler, with the reason recorded."""

    request: MemoryRequest
    is_row_hit: bool
    reason: str


class BaseScheduler:
    """Interface shared by all scheduling policies.

    ``prioritize`` returns candidates in descending priority; the controller
    walks the list and issues the first command that is actually ready this
    cycle, which preserves bank-level parallelism (a stalled head-of-line
    request does not block requests to other banks).
    """

    name = "base"

    def prioritize(self, candidates: List[MemoryRequest], channel: Channel,
                   cycle: int) -> List[SchedulerDecision]:
        raise NotImplementedError

    def iter_prioritized(self, candidates: List[MemoryRequest],
                         channel: Channel, cycle: int,
                         dedup_banks: bool = False
                         ) -> Iterable[SchedulerDecision]:
        """Yield decisions in priority order, constructing them on demand.

        The controller stops consuming after the first issued command (at
        most ``MAX_SCHEDULE_ATTEMPTS`` failures), so building the full
        decision list every cycle is wasted work on the hot path.  The
        default just materialises :meth:`prioritize`; policies override it
        to construct only the consumed prefix.

        With ``dedup_banks`` the iterator may omit decisions that the
        controller provably never attempts: it only ever tries the first
        decision offered for each bank per cycle (a bank that refused one
        command this cycle refuses the rest, and a served request ends the
        cycle), so lower-priority decisions for an already-offered bank are
        dead weight.  Policies that don't implement the dedup ignore the
        flag — emitting the full sequence is always correct.
        """

        return self.prioritize(candidates, channel, cycle)

    def choose(self, candidates: List[MemoryRequest], channel: Channel,
               cycle: int) -> Optional[SchedulerDecision]:
        """The single highest-priority candidate (convenience for tests)."""

        ordered = self.prioritize(candidates, channel, cycle)
        return ordered[0] if ordered else None

    def notify_served(self, decision: SchedulerDecision) -> None:
        """Hook invoked when the chosen request's column command issues."""


def _is_row_hit(request: MemoryRequest, channel: Channel) -> bool:
    coord = request.coordinate
    if coord is None:
        return False
    return channel.bank(coord.rank, coord.bank_group, coord.bank).is_open(
        coord.row
    )


class FcfsScheduler(BaseScheduler):
    """Strict first-come-first-served scheduling (oldest request wins)."""

    name = "fcfs"

    def prioritize(self, candidates: List[MemoryRequest], channel: Channel,
                   cycle: int) -> List[SchedulerDecision]:
        ordered = sorted(candidates,
                         key=lambda r: (r.arrival_cycle, r.request_id))
        return [
            SchedulerDecision(req, _is_row_hit(req, channel), "fcfs-oldest")
            for req in ordered
        ]


class FrFcfsScheduler(BaseScheduler):
    """First-ready FCFS: row-buffer hits first, then the oldest request."""

    name = "frfcfs"

    def prioritize(self, candidates: List[MemoryRequest], channel: Channel,
                   cycle: int) -> List[SchedulerDecision]:
        hits: List[MemoryRequest] = []
        misses: List[MemoryRequest] = []
        for req in candidates:
            (hits if _is_row_hit(req, channel) else misses).append(req)
        hits.sort(key=lambda r: (r.arrival_cycle, r.request_id))
        misses.sort(key=lambda r: (r.arrival_cycle, r.request_id))
        return [
            SchedulerDecision(req, True, "row-hit") for req in hits
        ] + [
            SchedulerDecision(req, False, "oldest-miss") for req in misses
        ]


class FrFcfsCapScheduler(BaseScheduler):
    """FR-FCFS with a per-bank cap on column-over-row reordering.

    A row-buffer hit may bypass an older row-buffer miss to the same bank at
    most ``cap`` consecutive times; after that the oldest miss is scheduled
    even though it needs a PRE+ACT.  This is the policy used throughout the
    paper's evaluation (Cap = 4).
    """

    name = "frfcfs_cap"

    def __init__(self, cap: int = 4) -> None:
        if cap < 1:
            raise ValueError("cap must be at least 1")
        self.cap = cap
        self._hits_over_misses: Dict[tuple, int] = {}
        # Bank objects are immortal for a given channel; resolving them
        # through Channel.bank() on every classify pass was measurable.
        self._bank_cache: Dict[tuple, object] = {}
        self._bank_cache_channel: Optional[Channel] = None

    def prioritize(self, candidates: List[MemoryRequest], channel: Channel,
                   cycle: int) -> List[SchedulerDecision]:
        return list(self.iter_prioritized(candidates, channel, cycle))

    def iter_prioritized(self, candidates: List[MemoryRequest],
                         channel: Channel, cycle: int,
                         dedup_banks: bool = False
                         ) -> Iterable[SchedulerDecision]:
        """Yield FR-FCFS+Cap decisions in priority order, lazily.

        This is the controller's hottest loop, so it streams: candidates
        arrive in queue (= arrival) order, which makes "an older miss to
        this bank exists" exactly "a miss to this bank appeared earlier in
        the walk" — so an eligible row hit can be yielded the moment it is
        encountered, and when the controller issues for it (the common
        case) the rest of the queue is never classified at all.  Misses and
        cap-deferred hits are collected during the walk and yielded after
        it, each already oldest-first.  Each bank is resolved exactly once
        per walk (open-row lookups dominated when done per candidate).

        ``dedup_banks`` (see the base class) prunes the sequence to the
        first decision per bank: later same-bank hits can only follow a
        yielded hit (skipped by the consumer's failed-bank rule), younger
        misses can only follow their bank's oldest miss (ditto), and a
        cap-deferred hit always has an older miss to the same bank ahead
        of it in the sequence, so under the dedup rule it is never
        attempted at all.
        """

        if not candidates:
            return
        if channel is not self._bank_cache_channel:
            # Bank objects are immortal per channel; re-keying the cache
            # guards tests that share one scheduler across channels.
            self._bank_cache = {}
            self._bank_cache_channel = channel
        bank_cache = self._bank_cache
        open_row_by_bank: Dict[tuple, Optional[int]] = {}
        # Banks that already produced a miss (ordered_misses holds the
        # oldest per bank plus, without dedup, every younger one).
        banks_with_miss: set = set()
        hit_yielded: set = set()
        ordered_misses: List[tuple] = []  # (bank_key or None, request)
        deferred_hits: List[MemoryRequest] = []
        caps = self._hits_over_misses
        cap = self.cap
        for req in candidates:
            coord = req.coordinate
            if coord is None:
                ordered_misses.append((None, req))
                continue
            key = coord.bank_key
            if key in hit_yielded:
                continue  # only reachable with dedup_banks
            try:
                open_row = open_row_by_bank[key]
            except KeyError:
                bank = bank_cache.get(key)
                if bank is None:
                    bank = channel.bank(coord.rank, coord.bank_group,
                                        coord.bank)
                    bank_cache[key] = bank
                open_row = bank.open_row if bank.is_open() else None
                open_row_by_bank[key] = open_row
            if open_row is not None and open_row == coord.row:
                if key in banks_with_miss and caps.get(key, 0) >= cap:
                    if not dedup_banks:
                        deferred_hits.append(req)  # cap: miss goes first
                else:
                    yield SchedulerDecision(req, True, "row-hit")
                    if dedup_banks:
                        hit_yielded.add(key)
            elif key not in banks_with_miss:
                banks_with_miss.add(key)
                ordered_misses.append((key, req))
            elif not dedup_banks:
                ordered_misses.append((key, req))
        for key, req in ordered_misses:
            if key is not None and key in hit_yielded:
                continue  # a yielded hit outranks this bank's misses
            yield SchedulerDecision(req, False, "oldest-miss")
        for req in deferred_hits:
            yield SchedulerDecision(req, True, "capped-hit")

    def notify_served(self, decision: SchedulerDecision) -> None:
        coord = decision.request.coordinate
        if coord is None:
            return
        key = coord.bank_key
        if decision.is_row_hit:
            self._hits_over_misses[key] = self._hits_over_misses.get(key, 0) + 1
        else:
            # A miss was served: the bank's reorder budget resets.
            self._hits_over_misses[key] = 0


def make_scheduler(name: str, cap: int = 4) -> BaseScheduler:
    """Factory used by :class:`repro.sim.config.SystemConfig`."""

    normalized = name.lower()
    if normalized in ("frfcfs_cap", "frfcfs+cap", "fr-fcfs+cap"):
        return FrFcfsCapScheduler(cap=cap)
    if normalized in ("frfcfs", "fr-fcfs"):
        return FrFcfsScheduler()
    if normalized == "fcfs":
        return FcfsScheduler()
    raise ValueError(f"unknown scheduler policy: {name!r}")

"""Memory request representation.

A :class:`MemoryRequest` is the unit of work the cache hierarchy hands to the
memory controller: one cacheline read or write, tagged with the hardware
thread that caused it.  The thread tag is what allows mitigation mechanisms
and BreakHammer to attribute row activations to threads.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.dram.address import DramAddress

_request_ids = itertools.count()


class RequestType(enum.Enum):
    """The kind of memory request."""

    READ = "read"
    WRITE = "write"


# Assigned once as plain member attributes (not properties): the controller
# reads the flag on every queue/serve/complete step of every request.
RequestType.READ.is_write = False
RequestType.WRITE.is_write = True


@dataclass(eq=False, slots=True)
class MemoryRequest:
    """One cacheline-granularity memory request.

    Identity equality (``eq=False``): a request is a unique in-flight unit
    of work, and queue removal must match this object, not any request that
    happens to carry equal field values — which field-wise comparison also
    made a hot-path cost in ``RequestQueue.remove``.

    Attributes
    ----------
    address:
        Byte address of the cacheline.
    kind:
        Read or write.
    thread_id:
        Hardware thread that generated the request (``None`` for requests
        that cannot be attributed, e.g. writebacks of shared lines).
    arrival_cycle:
        Cycle at which the request entered the memory controller.
    coordinate:
        Decoded DRAM coordinate, filled in by the controller on arrival.
    completion_cycle:
        Cycle at which the data burst finished (set on completion).
    on_complete:
        Optional callback invoked when the request completes; the cache
        hierarchy uses it to release MSHRs and wake up cores.
    """

    address: int
    kind: RequestType
    thread_id: Optional[int] = None
    arrival_cycle: int = 0
    coordinate: Optional[DramAddress] = None
    completion_cycle: Optional[int] = None
    first_command_cycle: Optional[int] = None
    on_complete: Optional[Callable[["MemoryRequest", int], None]] = None
    request_id: int = field(default_factory=lambda: next(_request_ids))
    metadata: dict = field(default_factory=dict)

    @property
    def is_write(self) -> bool:
        return self.kind.is_write

    @property
    def latency(self) -> Optional[int]:
        """Total queueing + service latency in controller cycles."""

        if self.completion_cycle is None:
            return None
        return self.completion_cycle - self.arrival_cycle

    def complete(self, cycle: int) -> None:
        """Mark the request complete and fire its callback."""

        self.completion_cycle = cycle
        if self.on_complete is not None:
            self.on_complete(self, cycle)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryRequest(#{self.request_id} {self.kind.value} "
            f"addr=0x{self.address:x} thread={self.thread_id})"
        )


def read_request(address: int, thread_id: Optional[int] = None,
                 arrival_cycle: int = 0) -> MemoryRequest:
    """Convenience constructor for a read request."""

    return MemoryRequest(address=address, kind=RequestType.READ,
                         thread_id=thread_id, arrival_cycle=arrival_cycle)


def write_request(address: int, thread_id: Optional[int] = None,
                  arrival_cycle: int = 0) -> MemoryRequest:
    """Convenience constructor for a write request."""

    return MemoryRequest(address=address, kind=RequestType.WRITE,
                         thread_id=thread_id, arrival_cycle=arrival_cycle)

"""Memory-controller substrate.

The controller receives :class:`repro.controller.request.MemoryRequest`
objects from the cache hierarchy, schedules DRAM commands with an
FR-FCFS-with-cap policy, interleaves periodic refresh, and gives the attached
RowHammer mitigation mechanism the opportunity to inject preventive
maintenance commands.  Every row activation and every preventive action is
reported to registered observers — this is the hook BreakHammer attaches to.
"""

from repro.controller.controller import ControllerStats, MemoryController
from repro.controller.queues import RequestQueue
from repro.controller.request import MemoryRequest, RequestType
from repro.controller.scheduler import FrFcfsCapScheduler, SchedulerDecision

__all__ = [
    "ControllerStats",
    "FrFcfsCapScheduler",
    "MemoryController",
    "MemoryRequest",
    "RequestQueue",
    "RequestType",
    "SchedulerDecision",
]

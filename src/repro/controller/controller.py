"""The memory controller.

One :class:`MemoryController` instance drives one DRAM channel.  Per cycle it
issues at most one DRAM command, chosen with the following priority order
(highest first):

1. an overdue periodic refresh that can no longer be postponed,
2. pending RowHammer-preventive maintenance demanded by the attached
   mitigation mechanism (victim refreshes, RFM windows, row migrations),
3. a periodic refresh that is pending and whose rank has no ready work,
4. a command on behalf of a queued read (or write, during write drain),
   selected by the FR-FCFS+Cap scheduler.

Every issued ACT and every completed preventive action is reported to the
registered observers; BreakHammer registers itself as such an observer.

For the fast-forward engine the controller reports, after each tick,
whether the tick did anything observable and — when it did not — the
earliest future cycle it possibly can (:meth:`MemoryController.
next_event_cycle`), derived from the timing bounds of the commands it
tried but failed to issue, in-flight completion times, refresh deadlines,
and the mitigation mechanism's own clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.controller.queues import RequestQueue
from repro.controller.request import MemoryRequest, RequestType
from repro.controller.scheduler import (
    BaseScheduler,
    FrFcfsCapScheduler,
    SchedulerDecision,
)
from repro.dram.address import AddressMapper, DramAddress, MappingScheme
from repro.dram.commands import Command, CommandType
from repro.dram.config import DeviceConfig
from repro.dram.device import Channel
from repro.dram.energy import EnergyModel
from repro.dram.refresh import RefreshManager
from repro.mitigations.base import (
    ActionObserver,
    MitigationMechanism,
    NoMitigation,
    PreventiveAction,
)


@dataclass
class ControllerStats:
    """Aggregate statistics collected by the controller."""

    reads_completed: int = 0
    writes_completed: int = 0
    activations: int = 0
    precharges: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    refreshes: int = 0
    preventive_actions: int = 0
    preventive_commands: int = 0
    blocked_activations: int = 0
    read_latencies: List[int] = field(default_factory=list)
    latency_by_thread: Dict[int, List[int]] = field(default_factory=dict)
    activations_by_thread: Dict[int, int] = field(default_factory=dict)

    def record_read_latency(self, thread_id: Optional[int], latency: int) -> None:
        self.read_latencies.append(latency)
        if thread_id is not None:
            self.latency_by_thread.setdefault(thread_id, []).append(latency)

    def record_activation(self, thread_id: Optional[int]) -> None:
        self.activations += 1
        if thread_id is not None:
            self.activations_by_thread[thread_id] = (
                self.activations_by_thread.get(thread_id, 0) + 1
            )


class MemoryController:
    """Cycle-driven memory controller for one DRAM channel."""

    def __init__(
        self,
        config: DeviceConfig,
        mitigation: Optional[MitigationMechanism] = None,
        scheduler: Optional[BaseScheduler] = None,
        mapper: Optional[AddressMapper] = None,
        channel_index: int = 0,
        read_queue_size: int = 64,
        write_queue_size: int = 64,
        write_drain_high: float = 0.75,
        write_drain_low: float = 0.25,
    ) -> None:
        self.config = config
        self.channel_index = channel_index
        self.channel = Channel(config, channel_index)
        self.timing = config.timing_cycles()
        self.mitigation = mitigation or NoMitigation(config)
        self.scheduler = scheduler or FrFcfsCapScheduler(cap=4)
        self.mapper = mapper or AddressMapper(config, MappingScheme.MOP)
        self.refresh_manager = RefreshManager(config, channel=channel_index)
        self.energy = EnergyModel(config)

        self.read_queue = RequestQueue(read_queue_size, name="read")
        self.write_queue = RequestQueue(write_queue_size, name="write")
        self._write_drain = False
        self._write_drain_high = write_drain_high
        self._write_drain_low = write_drain_low

        # Preventive work waiting to be issued, in FIFO order.
        self._pending_actions: List[PreventiveAction] = []
        # Requests whose column command has issued; completed when due.
        self._in_flight: List[Tuple[int, MemoryRequest]] = []

        self.observers: List[ActionObserver] = []
        self.stats = ControllerStats()
        self.cycle = 0
        self._next_refresh_window = self.timing.refresh_window

        # Fast-forward bookkeeping, refreshed by every tick(): whether the
        # tick had any observable effect, and the (kind, rank, bank_group,
        # bank) coordinates of the commands it tried but failed to issue.
        # next_event_cycle() turns the latter into timing bounds lazily, so
        # busy ticks pay nothing for the bookkeeping.
        self._progress = True
        self._stalled_commands: List[Tuple] = []

        # Whether the mitigation can veto activations (BlockHammer-style).
        # A gating mechanism makes the request-scan outcome depend on time
        # in ways the scan caches below cannot see, so both are disabled.
        self._gating_mitigation = (
            type(self.mitigation).allow_activation
            is not MitigationMechanism.allow_activation
        )
        # Failed-scan memo: after a request scan in which every tried
        # decision failed, the candidate sequence and its failure are fully
        # determined by (channel issue serial, queue versions) until the
        # earliest timing bound of the stalled commands.  Until either
        # changes, the scan can be replayed without walking the queue.
        # ``None`` or ``(key, stalled_tuples, earliest_ready_bound)``.
        self._scan_memo: Optional[Tuple] = None
        # One-shot scan prediction installed by the batch engine's
        # vectorised kernel: ``(cycle, issue_serial, read_version,
        # write_version, winner_request_or_None, is_row_hit,
        # stalled_tuples)``.  Consumed (and validated) by
        # _issue_request_command; a stale or wrong prediction falls back to
        # the ordinary scheduler walk, so predictions can never change
        # behaviour — only skip provably-identical work.
        self._scan_prediction: Optional[Tuple] = None
        self.scan_predictions_used = 0
        self.scan_mispredictions = 0
        self.scan_memo_hits = 0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def register_observer(self, observer: ActionObserver) -> None:
        """Attach an observer (e.g. BreakHammer) for activation/action events."""

        self.observers.append(observer)

    def enqueue(self, request: MemoryRequest) -> bool:
        """Accept a memory request; returns ``False`` when the queue is full."""

        queue = self.write_queue if request.is_write else self.read_queue
        if queue.is_full:
            return False
        request.arrival_cycle = self.cycle
        request.coordinate = self.mapper.map(request.address)
        queue.push(request)
        return True

    def can_accept(self, kind: RequestType) -> bool:
        queue = self.write_queue if kind.is_write else self.read_queue
        return not queue.is_full

    @property
    def pending_requests(self) -> int:
        return len(self.read_queue) + len(self.write_queue) + len(self._in_flight)

    @property
    def pending_preventive_actions(self) -> int:
        return len(self._pending_actions)

    def tick(self, cycle: int) -> List[MemoryRequest]:
        """Advance one cycle; return the requests that completed this cycle."""

        self.cycle = cycle
        self._progress = False
        self._stalled_commands.clear()
        self.refresh_manager.tick(cycle)
        self._tick_refresh_window(cycle)
        self._collect_mitigation_ticks(cycle)
        completed = self._drain_completed(cycle)
        if completed:
            self._progress = True
        self._update_write_drain()
        self._issue_one_command(cycle)
        return completed

    def next_event_cycle(self) -> Optional[int]:
        """Earliest future cycle at which this controller can act.

        Only meaningful immediately after :meth:`tick`.  Returns
        ``cycle + 1`` whenever the last tick issued a command, completed a
        request, or mutated any statistic (a blocked activation counts —
        the cycle engine re-attempts and re-counts it every cycle), so the
        fast engine stays cycle-accurate through busy periods.  When the
        last tick was provably idle, the result is the minimum of the
        collected command-timing bounds, in-flight completion times,
        refresh deadlines, and the mitigation mechanism's own deadlines.
        ``None`` means the controller has no future work at all.
        """

        cycle = self.cycle
        if self._progress:
            return cycle + 1
        earliest = self._next_refresh_window
        for kind, rank, bank_group, bank in self._stalled_commands:
            bound = self.channel.kind_earliest_ready_cycle(
                kind, rank, bank_group, bank, cycle
            )
            if bound <= cycle:
                # A nominally-ready command did not issue: a non-timing
                # condition intervened.  Fall back to per-cycle stepping.
                return cycle + 1
            if bound < earliest:
                earliest = bound
        if self._in_flight:
            done_event = min(done for done, _ in self._in_flight)
            if done_event < earliest:
                earliest = done_event
        urgent_delay = int(self.REFRESH_PRIORITY_URGENCY * self.timing.trefi)
        for state in self.refresh_manager.states:
            if state.pending:
                # A pending REF changes scheduling priority once it becomes
                # urgent; make sure that crossing is simulated.
                event = state.next_refresh_cycle + urgent_delay
                if event <= cycle:
                    continue
            else:
                event = state.next_refresh_cycle
            if event < earliest:
                earliest = event
        mitigation_event = self.mitigation.next_event_cycle(cycle)
        if mitigation_event is not None and \
                cycle < mitigation_event < earliest:
            earliest = mitigation_event
        if earliest <= cycle:
            return cycle + 1
        return earliest

    # ------------------------------------------------------------------ #
    # Internal: housekeeping
    # ------------------------------------------------------------------ #
    def _tick_refresh_window(self, cycle: int) -> None:
        while cycle >= self._next_refresh_window:
            self.mitigation.on_refresh_window(cycle)
            self._next_refresh_window += self.timing.refresh_window
            self._progress = True

    def _collect_mitigation_ticks(self, cycle: int) -> None:
        for action in self.mitigation.tick(cycle):
            self._pending_actions.append(action)
            self._progress = True

    def _drain_completed(self, cycle: int) -> List[MemoryRequest]:
        if not self._in_flight:
            return []
        done: List[MemoryRequest] = []
        remaining: List[Tuple[int, MemoryRequest]] = []
        for done_cycle, request in self._in_flight:
            if done_cycle <= cycle:
                request.complete(cycle)
                done.append(request)
                if request.is_write:
                    self.stats.writes_completed += 1
                else:
                    self.stats.reads_completed += 1
                    if request.latency is not None:
                        self.stats.record_read_latency(
                            request.thread_id, request.latency
                        )
            else:
                remaining.append((done_cycle, request))
        self._in_flight = remaining
        return done

    def _update_write_drain(self) -> None:
        occupancy = self.write_queue.occupancy
        if not self._write_drain and occupancy >= self._write_drain_high:
            self._write_drain = True
        elif self._write_drain and occupancy <= self._write_drain_low:
            self._write_drain = False
        # Always drain writes if there is nothing else to do.
        if not self.read_queue and self.write_queue:
            self._write_drain = True

    # ------------------------------------------------------------------ #
    # Internal: command issue
    # ------------------------------------------------------------------ #
    def _issue_one_command(self, cycle: int) -> None:
        if self._issue_urgent_refresh(cycle):
            return
        if self._issue_preventive(cycle):
            return
        if self._issue_request_command(cycle):
            return
        self._issue_opportunistic_refresh(cycle)

    # -- refresh -------------------------------------------------------- #
    #: A pending refresh overdue by more than this fraction of tREFI takes
    #: priority over regular requests (JEDEC allows postponing refreshes,
    #: but they must not starve behind a saturated request stream).
    REFRESH_PRIORITY_URGENCY = 0.5

    def _issue_urgent_refresh(self, cycle: int) -> bool:
        for state in self.refresh_manager.states:
            urgency = self.refresh_manager.urgency(state.rank, cycle)
            if urgency < self.REFRESH_PRIORITY_URGENCY:
                continue
            if self._try_refresh_rank(state.rank, cycle):
                return True
        return False

    def _issue_opportunistic_refresh(self, cycle: int) -> bool:
        command = self.refresh_manager.pending_refresh(cycle)
        if command is None:
            return False
        return self._try_refresh_rank(command.rank, cycle)

    def _try_refresh_rank(self, rank: int, cycle: int) -> bool:
        ref = Command(CommandType.REF, channel=self.channel_index, rank=rank)
        if self.channel.ready(ref, cycle):
            self.channel.issue(ref, cycle)
            self.energy.record(CommandType.REF)
            self.refresh_manager.refresh_issued(rank, cycle)
            self.stats.refreshes += 1
            self._progress = True
            return True
        # Close an open bank in this rank so the refresh can go out soon.
        any_open = False
        for bank in self.channel.rank(rank).iter_banks():
            if bank.is_open():
                any_open = True
                if self.channel.kind_ready(CommandType.PRE, rank,
                                           bank.bank_group, bank.bank, cycle):
                    pre = Command(
                        CommandType.PRE,
                        channel=self.channel_index,
                        rank=rank,
                        bank_group=bank.bank_group,
                        bank=bank.bank,
                    )
                    self.channel.issue(pre, cycle)
                    self.energy.record(CommandType.PRE)
                    self.stats.precharges += 1
                    self._progress = True
                    return True
                self._stalled_commands.append(
                    (CommandType.PRE, rank, bank.bank_group, bank.bank)
                )
        if not any_open:
            self._stalled_commands.append((CommandType.REF, rank, 0, 0))
        return False

    # -- preventive maintenance ------------------------------------------ #
    def _issue_preventive(self, cycle: int) -> bool:
        if not self._pending_actions:
            return False
        action = self._pending_actions[0]
        if not action.commands:
            self._finish_action(action, cycle)
            return False
        command = action.commands[0]
        if self.channel.ready(command, cycle):
            self.channel.issue(command, cycle)
            self.energy.record(command.kind)
            self.stats.preventive_commands += 1
            self._progress = True
            action.commands.pop(0)
            if not action.commands:
                self._finish_action(action, cycle)
            return True
        # The target bank may hold an open row: close it so the
        # maintenance command can issue.
        bank = self.channel.bank(command.rank, command.bank_group, command.bank)
        if bank.is_open():
            pre = Command(
                CommandType.PRE,
                channel=self.channel_index,
                rank=command.rank,
                bank_group=command.bank_group,
                bank=command.bank,
            )
            if self.channel.ready(pre, cycle):
                self.channel.issue(pre, cycle)
                self.energy.record(CommandType.PRE)
                self.stats.precharges += 1
                self._progress = True
                return True
            self._stalled_commands.append(
                (CommandType.PRE, command.rank, command.bank_group,
                 command.bank)
            )
        else:
            self._stalled_commands.append(
                (command.kind, command.rank, command.bank_group, command.bank)
            )
        return False

    def _finish_action(self, action: PreventiveAction, cycle: int) -> None:
        action.completed_cycle = cycle
        self._pending_actions.remove(action)
        self.stats.preventive_actions += 1
        self._progress = True
        for observer in self.observers:
            observer.on_preventive_action(action, cycle)

    # -- regular requests ------------------------------------------------ #
    def _candidate_requests(self) -> List[MemoryRequest]:
        queue = self.write_queue if self._write_drain else self.read_queue
        candidates = list(queue)
        if not candidates and not self._write_drain and self.write_queue:
            candidates = list(self.write_queue)
        return candidates

    #: Number of top-priority candidates the controller will try per cycle
    #: before giving up; bounds the per-cycle scheduling work while still
    #: preserving bank-level parallelism.
    MAX_SCHEDULE_ATTEMPTS = 16

    #: Sentinel bound for a failed scan that only queue or channel
    #: mutations (never bare time) can unblock.
    _NO_TIMING_BOUND = 1 << 62

    def _scan_key(self) -> Tuple[int, int, int]:
        """Versions that pin the request scan's inputs.

        The candidate sequence and every per-decision outcome apart from
        pure timing readiness are functions of the queues' contents, the
        channel state (open rows, timing floors, refresh/cap state — all
        mutated only by command issues), and the write-drain flag (itself
        determined by the queue occupancies).  So (issue serial, read
        version, write version) unchanged ⟹ same candidates, same
        priority sequence, same non-timing gates.
        """

        return (self.channel.issue_serial, self.read_queue.version,
                self.write_queue.version)

    def _issue_request_command(self, cycle: int) -> bool:
        prediction = self._scan_prediction
        if prediction is not None:
            self._scan_prediction = None
            if (prediction[0] == cycle
                    and prediction[1] == self.channel.issue_serial
                    and prediction[2] == self.read_queue.version
                    and prediction[3] == self.write_queue.version):
                request = prediction[4]
                if request is None:
                    # Predicted full failure: replay the stalled commands
                    # the walk would have recorded (they feed
                    # next_event_cycle's timing bounds) and skip the walk.
                    if prediction[6]:
                        self._stalled_commands.extend(prediction[6])
                    self.scan_predictions_used += 1
                    return False
                is_row_hit = prediction[5]
                decision = SchedulerDecision(
                    request, is_row_hit,
                    "row-hit" if is_row_hit else "oldest-miss",
                )
                if self._try_serve(decision, cycle):
                    self.scan_predictions_used += 1
                    return True
                # Wrong prediction: the failed attempt only appended a
                # stalled-command bound (idempotent for next_event_cycle),
                # so falling through to the full walk stays exact.
                self.scan_mispredictions += 1

        memo = self._scan_memo
        if memo is not None:
            if memo[0] == self._scan_key():
                if cycle < memo[2]:
                    # Nothing the scan depends on changed and no tried
                    # command can have become timing-ready: the walk would
                    # fail exactly as before.
                    self._stalled_commands.extend(memo[1])
                    self.scan_memo_hits += 1
                    return False
            else:
                self._scan_memo = None

        candidates = self._candidate_requests()
        if not candidates:
            self._scan_memo = (self._scan_key(), (), self._NO_TIMING_BOUND)
            return False
        ordered = self.scheduler.iter_prioritized(candidates, self.channel,
                                                  cycle, dedup_banks=True)
        attempts = 0
        stall_start = len(self._stalled_commands)
        # A bank that could not accept one candidate's command this cycle
        # will not accept another candidate's either, so each bank is tried
        # at most once per cycle.
        failed_banks = set()
        for decision in ordered:
            coord = decision.request.coordinate
            if coord is not None and coord.bank_key in failed_banks:
                continue
            if self._try_serve(decision, cycle):
                return True
            if coord is not None:
                failed_banks.add(coord.bank_key)
            attempts += 1
            if attempts >= self.MAX_SCHEDULE_ATTEMPTS:
                break
        if attempts < self.MAX_SCHEDULE_ATTEMPTS \
                and not self._gating_mitigation:
            self._memoize_failed_scan(cycle, stall_start)
        return False

    def _memoize_failed_scan(self, cycle: int, stall_start: int) -> None:
        """Record a fully-failed scan so identical ticks can skip it.

        Only called when every yielded decision was tried (the attempt
        budget did not truncate the walk) and the mitigation cannot gate
        activations.  Decisions that failed the refresh-urgency gate left
        no stalled command; they stay blocked until a REF issues, which
        bumps the channel serial and invalidates the memo.
        """

        stalled = tuple(self._stalled_commands[stall_start:])
        bound = self._NO_TIMING_BOUND
        for kind, rank, bank_group, bank in stalled:
            ready = self.channel.kind_earliest_ready_cycle(
                kind, rank, bank_group, bank, cycle
            )
            if ready <= cycle:
                # Non-timing failure of a nominally-ready command; the
                # engine steps per-cycle here (see next_event_cycle), so
                # do not memoize.
                return
            if ready < bound:
                bound = ready
        self._scan_memo = (self._scan_key(), stalled, bound)

    def _try_serve(self, decision, cycle: int) -> bool:
        request = decision.request
        coord = request.coordinate
        assert coord is not None
        channel = self.channel
        bank = channel.ranks[coord.rank].banks[coord.bank_group][coord.bank]
        bank_open = bank.is_open()
        # Readiness is probed through Channel.kind_ready (the single source
        # of the timing rules, shared with next_event_cycle's bound
        # estimates) before any Command object is built: most attempts on a
        # saturated channel fail.

        if bank_open and bank.open_row == coord.row:
            kind = CommandType.WR if request.is_write else CommandType.RD
            if not channel.kind_ready(kind, coord.rank, coord.bank_group,
                                      coord.bank, cycle):
                self._stalled_commands.append(
                    (kind, coord.rank, coord.bank_group, coord.bank)
                )
                return False
            command = Command(
                kind,
                channel=self.channel_index,
                rank=coord.rank,
                bank_group=coord.bank_group,
                bank=coord.bank,
                row=coord.row,
                column=coord.column,
                source_thread=request.thread_id,
            )
            done = self.channel.issue(command, cycle)
            self.energy.record(kind)
            self.stats.row_hits += 1
            self._progress = True
            if request.first_command_cycle is None:
                request.first_command_cycle = cycle
            self._remove_from_queue(request)
            self._in_flight.append((done, request))
            self.scheduler.notify_served(decision)
            return True

        if bank_open:
            # Row conflict: close the open row first.
            if not channel.kind_ready(CommandType.PRE, coord.rank,
                                      coord.bank_group, coord.bank, cycle):
                self._stalled_commands.append(
                    (CommandType.PRE, coord.rank, coord.bank_group, coord.bank)
                )
                return False
            pre = Command(
                CommandType.PRE,
                channel=self.channel_index,
                rank=coord.rank,
                bank_group=coord.bank_group,
                bank=coord.bank,
            )
            self.channel.issue(pre, cycle)
            self.energy.record(CommandType.PRE)
            self.stats.precharges += 1
            self.stats.row_conflicts += 1
            self._progress = True
            bank.record_conflict()
            return True

        # Bank closed: activate the row (subject to the mitigation's gate and
        # to refresh priority — new activations would starve an overdue REF).
        # These two gates are not timing conditions, so no idle bound is
        # recorded for them: the refresh itself and the mitigation deadline
        # are tracked as events of their own.
        if self.refresh_manager.urgency(coord.rank, cycle) >= \
                self.REFRESH_PRIORITY_URGENCY:
            return False
        if not self.mitigation.allow_activation(coord, cycle):
            # Counted per attempted cycle, so the fast engine must keep
            # stepping cycle by cycle while an activation is being delayed.
            self.stats.blocked_activations += 1
            self._progress = True
            return False
        if not channel.kind_ready(CommandType.ACT, coord.rank,
                                  coord.bank_group, coord.bank, cycle):
            self._stalled_commands.append(
                (CommandType.ACT, coord.rank, coord.bank_group, coord.bank)
            )
            return False
        act = Command(
            CommandType.ACT,
            channel=self.channel_index,
            rank=coord.rank,
            bank_group=coord.bank_group,
            bank=coord.bank,
            row=coord.row,
            source_thread=request.thread_id,
        )
        self.channel.issue(act, cycle)
        self.energy.record(CommandType.ACT)
        self.energy.record(CommandType.PRE)  # every ACT implies a later PRE pair
        self.stats.record_activation(request.thread_id)
        self.stats.row_misses += 1
        self._progress = True
        if request.first_command_cycle is None:
            request.first_command_cycle = cycle
        self._notify_activation(coord, request.thread_id, cycle)
        return True

    def _remove_from_queue(self, request: MemoryRequest) -> None:
        queue = self.write_queue if request.is_write else self.read_queue
        queue.remove(request)

    def _notify_activation(self, coord: DramAddress, thread_id: Optional[int],
                           cycle: int) -> None:
        for observer in self.observers:
            observer.on_activation(coord, thread_id, cycle)
        for action in self.mitigation.on_activation(coord, thread_id, cycle):
            self._pending_actions.append(action)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def drain(self, max_cycles: int = 1_000_000) -> int:
        """Run the controller until all queued work completes.

        Returns the cycle at which the controller went idle.  Used by tests
        and by the end-of-simulation flush.
        """

        cycle = self.cycle
        while (self.pending_requests or self._pending_actions) and max_cycles > 0:
            cycle += 1
            max_cycles -= 1
            self.tick(cycle)
        return cycle

    def snapshot(self) -> Dict[str, object]:
        """A summary dictionary used by the stats collector."""

        return {
            "reads_completed": self.stats.reads_completed,
            "writes_completed": self.stats.writes_completed,
            "activations": self.stats.activations,
            "row_hits": self.stats.row_hits,
            "row_misses": self.stats.row_misses,
            "row_conflicts": self.stats.row_conflicts,
            "refreshes": self.stats.refreshes,
            "preventive_actions": self.stats.preventive_actions,
            "preventive_commands": self.stats.preventive_commands,
            "blocked_activations": self.stats.blocked_activations,
            "mitigation": self.mitigation.stats(),
            "channel": self.channel.stats(),
        }

"""Bounded request queues used by the memory controller.

The paper's configuration (Table 1) uses 64-entry read and write request
queues.  :class:`RequestQueue` is a small bounded container that preserves
arrival order (needed for the "first-come" part of FR-FCFS) and offers the
queries the scheduler needs: oldest entry, entries targeting an open row,
per-bank views.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional

from repro.controller.request import MemoryRequest


class RequestQueue:
    """A bounded, arrival-ordered queue of memory requests."""

    def __init__(self, capacity: int = 64, name: str = "queue") -> None:
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._entries: List[MemoryRequest] = []
        self.enqueued_total = 0
        self.rejected_total = 0
        self.peak_occupancy = 0
        # Mutation version: bumped on every successful push and every
        # remove.  Consumers (the batch engine's scan predictions, the
        # controller's failed-scan memo) compare it to prove the queue —
        # and hence the scheduler's candidate sequence — is unchanged.
        self.version = 0
        # Optional mutation journal: when set (by the batch engine) every
        # push/remove is appended as ``(is_push, request)`` so array
        # mirrors can be maintained incrementally.
        self.journal: Optional[List] = None

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[MemoryRequest]:
        return iter(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def occupancy(self) -> float:
        return len(self._entries) / self.capacity

    # ------------------------------------------------------------------ #
    def push(self, request: MemoryRequest) -> bool:
        """Append ``request`` if there is room; return ``False`` otherwise."""

        if self.is_full:
            self.rejected_total += 1
            return False
        self._entries.append(request)
        self.enqueued_total += 1
        self.version += 1
        if self.journal is not None:
            self.journal.append((True, request))
        self.peak_occupancy = max(self.peak_occupancy, len(self._entries))
        return True

    def remove(self, request: MemoryRequest) -> None:
        """Remove a specific request (after it has been scheduled)."""

        self._entries.remove(request)
        self.version += 1
        if self.journal is not None:
            self.journal.append((False, request))

    def oldest(self) -> Optional[MemoryRequest]:
        """Return the oldest request without removing it."""

        return self._entries[0] if self._entries else None

    # ------------------------------------------------------------------ #
    def matching(self, predicate: Callable[[MemoryRequest], bool]
                 ) -> List[MemoryRequest]:
        """Return all queued requests satisfying ``predicate`` in arrival order."""

        return [req for req in self._entries if predicate(req)]

    def first_matching(self, predicate: Callable[[MemoryRequest], bool]
                       ) -> Optional[MemoryRequest]:
        for req in self._entries:
            if predicate(req):
                return req
        return None

    def for_bank(self, bank_key: tuple) -> List[MemoryRequest]:
        """All requests whose decoded coordinate targets ``bank_key``."""

        return self.matching(
            lambda r: r.coordinate is not None and r.coordinate.bank_key == bank_key
        )

    def threads_present(self) -> Iterable[int]:
        """Distinct thread ids currently waiting in the queue."""

        return {
            req.thread_id for req in self._entries if req.thread_id is not None
        }

    def count_for_thread(self, thread_id: int) -> int:
        return sum(1 for req in self._entries if req.thread_id == thread_id)

"""Optional system-software feedback interface (paper §4 and §5.2).

BreakHammer optionally exposes each hardware thread's RowHammer-preventive
score to the operating system, "similarly to how it accesses thread-specific
special registers".  The OS can then associate scores with software threads,
processes, address spaces or users, which closes the two gaps hardware-only
tracking leaves open:

* a *circumvention* attack that rotates the hammering work across many
  short-lived hardware threads of the same process (§5.2), and
* accounting at a granularity that matches administrative action (stop or
  deprioritise a process/user rather than a hardware context).

:class:`ScoreRegisterFile` models the exposed per-hardware-thread registers,
and :class:`SoftwareScoreTracker` models the OS-side bookkeeping: owners,
their accumulated scores across scheduling epochs, and a simple policy that
flags owners whose cumulative score is an outlier — reusing the same
thresholded-deviation test the hardware uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.core.breakhammer import BreakHammer
from repro.core.suspect import SuspectDetector


class ScoreRegisterFile:
    """The per-hardware-thread score registers exposed to system software."""

    def __init__(self, breakhammer: BreakHammer) -> None:
        self._breakhammer = breakhammer

    def read(self, hw_thread: int) -> float:
        """Read one thread's current RowHammer-preventive score register."""

        return self._breakhammer.score_of(hw_thread)

    def read_all(self) -> Dict[int, float]:
        return self._breakhammer.export_scores()

    @property
    def num_threads(self) -> int:
        return self._breakhammer.num_threads


@dataclass
class OwnerRecord:
    """OS-side accumulated state for one owner (process, user, cgroup…)."""

    owner: str
    cumulative_score: float = 0.0
    epochs_observed: int = 0
    epochs_flagged: int = 0
    hw_threads_seen: set = field(default_factory=set)


class SoftwareScoreTracker:
    """OS-level score aggregation across scheduling epochs.

    At every scheduling epoch the OS knows which owner ran on which hardware
    thread; :meth:`sample_epoch` reads the score registers, charges each
    owner with the *increase* since the previous sample on that thread, and
    re-evaluates the owner population with the same outlier rule the
    hardware uses.  An owner that keeps rotating its hammering work across
    hardware threads therefore keeps accumulating blame even though no
    single hardware thread looks suspicious.
    """

    def __init__(self, registers: ScoreRegisterFile,
                 threat_threshold: float = 8.0,
                 outlier_threshold: float = 0.65) -> None:
        self.registers = registers
        self.detector = SuspectDetector(threat_threshold, outlier_threshold)
        self.owners: Dict[str, OwnerRecord] = {}
        self._previous_sample: Dict[int, float] = {
            thread: 0.0 for thread in range(registers.num_threads)
        }
        self.epochs = 0

    # ------------------------------------------------------------------ #
    def _record(self, owner: str) -> OwnerRecord:
        record = self.owners.get(owner)
        if record is None:
            record = OwnerRecord(owner=owner)
            self.owners[owner] = record
        return record

    def sample_epoch(self, schedule: Mapping[int, str]) -> List[str]:
        """Charge owners for this epoch's score increases; return flagged owners.

        ``schedule`` maps hardware thread → owner name for the epoch that
        just ended.  Score registers may also have been rotated (reset) by
        the hardware between samples; a register that decreased is treated
        as having started from zero.
        """

        self.epochs += 1
        current = self.registers.read_all()
        for thread, owner in schedule.items():
            before = self._previous_sample.get(thread, 0.0)
            now = current.get(thread, 0.0)
            increase = now - before if now >= before else now
            record = self._record(owner)
            record.cumulative_score += max(0.0, increase)
            record.hw_threads_seen.add(thread)
        for thread, value in current.items():
            self._previous_sample[thread] = value
        for owner in {schedule[t] for t in schedule}:
            self.owners[owner].epochs_observed += 1

        flagged = self.flagged_owners()
        for owner in flagged:
            self.owners[owner].epochs_flagged += 1
        return flagged

    # ------------------------------------------------------------------ #
    def flagged_owners(self) -> List[str]:
        """Owners whose cumulative score is an outlier among all owners."""

        if not self.owners:
            return []
        names = list(self.owners)
        scores = [self.owners[name].cumulative_score for name in names]
        decision = self.detector.evaluate(scores)
        return [names[i] for i in decision.suspects]

    def score_of(self, owner: str) -> float:
        record = self.owners.get(owner)
        return record.cumulative_score if record else 0.0

    def report(self) -> List[Dict[str, object]]:
        """A per-owner summary, sorted by cumulative score (highest first)."""

        rows = [
            {
                "owner": record.owner,
                "cumulative_score": round(record.cumulative_score, 3),
                "epochs_observed": record.epochs_observed,
                "epochs_flagged": record.epochs_flagged,
                "hw_threads_seen": sorted(record.hw_threads_seen),
            }
            for record in self.owners.values()
        ]
        rows.sort(key=lambda row: row["cumulative_score"], reverse=True)
        return rows

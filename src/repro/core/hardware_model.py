"""Hardware cost model — §6 of the paper.

The paper implements BreakHammer in Chisel, synthesises it with a 65 nm
library, and reports:

* storage: two 32-bit score counters, one 16-bit activation counter, and two
  1-bit suspect flags per hardware thread;
* area: 0.000105 mm² per memory channel (65 nm), i.e. roughly 0.0002 % of a
  high-end Intel Xeon die;
* latency: an 8-stage pipeline clocked at 1.5 GHz (≈ 0.67 ns per decision),
  comfortably below tRRD (2.5 ns DDR4 / 5 ns DDR5), so the logic sits off
  the critical scheduling path.

This module reproduces that arithmetic analytically so the §6 numbers can be
regenerated and the claims ("latency below tRRD", "near-zero area") can be
checked programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.dram.config import DeviceConfig


@dataclass(frozen=True)
class HardwareCostReport:
    """The derived hardware-cost numbers."""

    bits_per_thread: int
    total_bits: int
    total_bytes: float
    area_mm2_per_channel: float
    area_mm2_total: float
    xeon_area_fraction: float
    pipeline_stages: int
    clock_ghz: float
    decision_latency_ns: float
    trrd_ns: float
    fits_under_trrd: bool

    def as_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


class HardwareCostModel:
    """Analytical area/latency model of BreakHammer's hardware."""

    #: Storage per hardware thread (paper §6): 2 × 32-bit score counters,
    #: 1 × 16-bit activation counter, 2 × 1-bit suspect flags.
    SCORE_COUNTER_BITS = 32
    SCORE_COUNTERS = 2
    ACTIVATION_COUNTER_BITS = 16
    SUSPECT_FLAG_BITS = 1
    SUSPECT_FLAGS = 2

    #: Area of the paper's synthesised design per memory channel (65 nm) for
    #: the reference 4-thread configuration, and the resulting per-bit cost
    #: used to extrapolate to other thread counts.
    REFERENCE_THREADS = 4
    REFERENCE_AREA_MM2 = 0.000105

    #: A high-end Intel Xeon die area (mm²) used for the fraction claim.
    XEON_DIE_AREA_MM2 = 660.0

    #: Pipeline characteristics from the Chisel model.
    PIPELINE_STAGES = 8
    CLOCK_GHZ = 1.5

    def __init__(self, num_threads: int = 4, channels: int = 1,
                 device_config: DeviceConfig | None = None) -> None:
        if num_threads <= 0:
            raise ValueError("need at least one hardware thread")
        if channels <= 0:
            raise ValueError("need at least one memory channel")
        self.num_threads = num_threads
        self.channels = channels
        self.device_config = device_config or DeviceConfig.ddr5_4800()

    # ------------------------------------------------------------------ #
    def bits_per_thread(self) -> int:
        return (
            self.SCORE_COUNTERS * self.SCORE_COUNTER_BITS
            + self.ACTIVATION_COUNTER_BITS
            + self.SUSPECT_FLAGS * self.SUSPECT_FLAG_BITS
        )

    def total_bits(self) -> int:
        return self.bits_per_thread() * self.num_threads * self.channels

    def area_mm2_per_channel(self) -> float:
        reference_bits = self.bits_per_thread() * self.REFERENCE_THREADS
        per_bit = self.REFERENCE_AREA_MM2 / reference_bits
        return per_bit * self.bits_per_thread() * self.num_threads

    def decision_latency_ns(self) -> float:
        return 1.0 / self.CLOCK_GHZ

    def report(self) -> HardwareCostReport:
        area_per_channel = self.area_mm2_per_channel()
        area_total = area_per_channel * self.channels
        trrd_ns = self.device_config.timings.trrd_s
        latency = self.decision_latency_ns()
        return HardwareCostReport(
            bits_per_thread=self.bits_per_thread(),
            total_bits=self.total_bits(),
            total_bytes=self.total_bits() / 8.0,
            area_mm2_per_channel=area_per_channel,
            area_mm2_total=area_total,
            xeon_area_fraction=area_total / self.XEON_DIE_AREA_MM2,
            pipeline_stages=self.PIPELINE_STAGES,
            clock_ghz=self.CLOCK_GHZ,
            decision_latency_ns=latency,
            trrd_ns=trrd_ns,
            fits_under_trrd=latency < trrd_ns,
        )

"""Throttling suspect threads — Expression 1 of the paper.

Each hardware thread ``i`` has a dynamic request quota ``Q_i`` — the number
of LLC cache-miss buffers (MSHRs) it may hold simultaneously — and a
``recent_suspect_i`` flag saying whether it was identified as a suspect in
the *previous* throttling window.

When thread ``i`` is (re-)identified as a suspect:

* if it was already a suspect in the previous window, its quota shrinks
  additively: ``Q_i = max(Q_i - P_oldsuspect, 0)``;
* otherwise the quota shrinks multiplicatively: ``Q_i = Q_i / P_newsuspect``.

If a thread goes one full throttling window without being identified as a
suspect, its quota is restored to the full MSHR pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass(frozen=True)
class QuotaPolicy:
    """The constants of Expression 1 (paper Table 2)."""

    p_oldsuspect: int = 1
    p_newsuspect: int = 10

    def __post_init__(self) -> None:
        if self.p_oldsuspect < 0:
            raise ValueError("P_oldsuspect must be non-negative")
        if self.p_newsuspect < 1:
            raise ValueError("P_newsuspect must be at least 1")


@dataclass
class ThreadQuotaState:
    """Per-thread throttling state."""

    thread_id: int
    quota: int
    recent_suspect: bool = False
    suspect_this_window: bool = False
    windows_as_suspect: int = 0
    times_throttled: int = 0


class Throttler:
    """Maintains per-thread MSHR quotas according to Expression 1.

    The throttler does not touch the MSHR file directly; instead it calls the
    ``apply_quota`` callback (wired to :meth:`repro.cpu.mshr.MshrFile.set_quota`
    by the system builder) whenever a quota changes, so the same logic can be
    unit-tested in isolation and reused for the DMA/LSU variants discussed in
    §4.4 of the paper.
    """

    def __init__(self, num_threads: int, full_quota: int,
                 policy: Optional[QuotaPolicy] = None,
                 apply_quota: Optional[Callable[[int, int], None]] = None) -> None:
        if num_threads <= 0:
            raise ValueError("need at least one thread")
        if full_quota <= 0:
            raise ValueError("full quota must be positive")
        self.num_threads = num_threads
        self.full_quota = full_quota
        self.policy = policy or QuotaPolicy()
        self.apply_quota = apply_quota
        self.threads: List[ThreadQuotaState] = [
            ThreadQuotaState(thread_id=i, quota=full_quota)
            for i in range(num_threads)
        ]
        self.quota_reductions = 0
        self.quota_restorations = 0

    # ------------------------------------------------------------------ #
    def _apply(self, state: ThreadQuotaState) -> None:
        if self.apply_quota is not None:
            self.apply_quota(state.thread_id, state.quota)

    def quota_of(self, thread_id: int) -> int:
        return self.threads[thread_id].quota

    def is_throttled(self, thread_id: int) -> bool:
        return self.threads[thread_id].quota < self.full_quota

    # ------------------------------------------------------------------ #
    def mark_suspect(self, thread_id: int) -> int:
        """Reduce ``thread_id``'s quota per Expression 1; return the new quota."""

        state = self.threads[thread_id]
        if not state.suspect_this_window:
            # Apply the quota reduction at most once per window per thread;
            # repeated suspect hits within a window keep the same quota.
            if state.recent_suspect:
                new_quota = max(state.quota - self.policy.p_oldsuspect, 0)
            else:
                new_quota = max(1, state.quota // self.policy.p_newsuspect)
            if new_quota != state.quota:
                state.quota = new_quota
                self.quota_reductions += 1
                self._apply(state)
            state.suspect_this_window = True
            state.times_throttled += 1
        return state.quota

    def end_window(self) -> None:
        """Advance to the next throttling window.

        Threads flagged this window become ``recent_suspect`` for the next
        one; threads that stayed clean for the whole window get their full
        quota back.
        """

        for state in self.threads:
            if state.suspect_this_window:
                state.recent_suspect = True
                state.windows_as_suspect += 1
            else:
                if state.recent_suspect or state.quota < self.full_quota:
                    state.quota = self.full_quota
                    self.quota_restorations += 1
                    self._apply(state)
                state.recent_suspect = False
            state.suspect_this_window = False

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        return {
            "full_quota": self.full_quota,
            "policy": {
                "p_oldsuspect": self.policy.p_oldsuspect,
                "p_newsuspect": self.policy.p_newsuspect,
            },
            "quota_reductions": self.quota_reductions,
            "quota_restorations": self.quota_restorations,
            "threads": [
                {
                    "thread_id": s.thread_id,
                    "quota": s.quota,
                    "recent_suspect": s.recent_suspect,
                    "windows_as_suspect": s.windows_as_suspect,
                    "times_throttled": s.times_throttled,
                }
                for s in self.threads
            ],
        }

"""BreakHammer: observe, identify, throttle.

:class:`BreakHammer` ties the three sub-mechanisms together and plugs into
the rest of the system through two narrow interfaces:

* it is registered as an :class:`repro.mitigations.base.ActionObserver` on
  the memory controller, so it sees every row activation (with its thread
  tag) and every completed RowHammer-preventive action;
* it drives per-thread MSHR quotas through a callback supplied by the system
  builder (usually :meth:`repro.cpu.mshr.MshrFile.set_quota`).

Per throttling window (``TH_window``, default 64 ms) it:

1. attributes each preventive action's weight to threads proportionally to
   their share of row activations since the previous action (§4.1),
2. runs Algorithm 1 on the active score counter set to find suspects (§4.2),
3. reduces suspects' quotas per Expression 1 and restores quotas of threads
   that stayed clean for a full window (§4.3),
4. rotates the two score counter sets (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.scores import DualCounterSet
from repro.core.suspect import SuspectDecision, SuspectDetector
from repro.core.throttler import QuotaPolicy, Throttler
from repro.dram.address import DramAddress
from repro.dram.config import DeviceConfig
from repro.mitigations.base import PreventiveAction


@dataclass(frozen=True)
class BreakHammerConfig:
    """BreakHammer's tunable parameters (paper Table 2)."""

    window_ms: float = 64.0  # TH_window
    threat_threshold: float = 32.0  # TH_threat
    outlier_threshold: float = 0.65  # TH_outlier
    p_oldsuspect: int = 1
    p_newsuspect: int = 10

    def as_dict(self) -> Dict[str, float]:
        return {
            "TH_window_ms": self.window_ms,
            "TH_threat": self.threat_threshold,
            "TH_outlier": self.outlier_threshold,
            "P_oldsuspect": self.p_oldsuspect,
            "P_newsuspect": self.p_newsuspect,
        }


@dataclass
class BreakHammerStats:
    """Counters BreakHammer maintains for reporting."""

    activations_observed: int = 0
    actions_observed: int = 0
    score_attributed: float = 0.0
    suspect_detections: int = 0
    windows_elapsed: int = 0
    suspects_by_thread: Dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "activations_observed": self.activations_observed,
            "actions_observed": self.actions_observed,
            "score_attributed": round(self.score_attributed, 3),
            "suspect_detections": self.suspect_detections,
            "windows_elapsed": self.windows_elapsed,
            "suspects_by_thread": dict(self.suspects_by_thread),
        }


class BreakHammer:
    """The BreakHammer mechanism (paper §4)."""

    def __init__(
        self,
        num_threads: int,
        config: Optional[BreakHammerConfig] = None,
        device_config: Optional[DeviceConfig] = None,
        full_quota: int = 64,
        apply_quota: Optional[Callable[[int, int], None]] = None,
        cycle_time_ns: Optional[float] = None,
    ) -> None:
        if num_threads <= 0:
            raise ValueError("BreakHammer needs at least one hardware thread")
        self.num_threads = num_threads
        self.config = config or BreakHammerConfig()
        if cycle_time_ns is None:
            cycle_time_ns = (
                device_config.timings.tck if device_config is not None else 0.416
            )
        self.cycle_time_ns = cycle_time_ns
        self.window_cycles = max(
            1, int(self.config.window_ms * 1e6 / cycle_time_ns)
        )

        self.scores = DualCounterSet(num_threads)
        self.detector = SuspectDetector(
            threat_threshold=self.config.threat_threshold,
            outlier_threshold=self.config.outlier_threshold,
        )
        self.throttler = Throttler(
            num_threads=num_threads,
            full_quota=full_quota,
            policy=QuotaPolicy(
                p_oldsuspect=self.config.p_oldsuspect,
                p_newsuspect=self.config.p_newsuspect,
            ),
            apply_quota=apply_quota,
        )

        # Row activations per thread since the last preventive action (§4.1).
        self._activations_since_action = [0] * num_threads
        self._next_window_end = self.window_cycles
        self.stats = BreakHammerStats()
        self.last_decision: Optional[SuspectDecision] = None

    # ------------------------------------------------------------------ #
    # ActionObserver interface (called by the memory controller)
    # ------------------------------------------------------------------ #
    def on_activation(self, coordinate: DramAddress,
                      thread_id: Optional[int], cycle: int) -> None:
        """Record one row activation for its responsible thread."""

        self.stats.activations_observed += 1
        if thread_id is not None and 0 <= thread_id < self.num_threads:
            self._activations_since_action[thread_id] += 1

    def on_preventive_action(self, action: PreventiveAction, cycle: int) -> None:
        """Attribute a completed preventive action and re-run Algorithm 1."""

        self.stats.actions_observed += 1
        self._attribute_scores(action.weight)
        decision = self.detector.evaluate(self.scores.scores())
        self.last_decision = decision
        for thread_id in decision.suspects:
            self.stats.suspect_detections += 1
            self.stats.suspects_by_thread[thread_id] = (
                self.stats.suspects_by_thread.get(thread_id, 0) + 1
            )
            self.throttler.mark_suspect(thread_id)

    # ------------------------------------------------------------------ #
    # Periodic work
    # ------------------------------------------------------------------ #
    def tick(self, cycle: int) -> int:
        """Advance the throttling-window clock; return windows ended.

        The loop (rather than a single ``if``) lets the clock catch up when
        the fast-forward engine jumps the simulation over several window
        boundaries at once.
        """

        windows_ended = 0
        while cycle >= self._next_window_end:
            self._end_window()
            self._next_window_end += self.window_cycles
            windows_ended += 1
        return windows_ended

    def next_event_cycle(self) -> int:
        """The next cycle at which :meth:`tick` will do work (window end)."""

        return self._next_window_end

    def _end_window(self) -> None:
        self.stats.windows_elapsed += 1
        self.throttler.end_window()
        self.scores.rotate()

    # ------------------------------------------------------------------ #
    # Score attribution (§4.1)
    # ------------------------------------------------------------------ #
    def _attribute_scores(self, weight: float) -> None:
        total = sum(self._activations_since_action)
        if total <= 0 or weight <= 0:
            return
        for thread_id, count in enumerate(self._activations_since_action):
            if count:
                share = weight * count / total
                self.scores.add(thread_id, share)
                self.stats.score_attributed += share
        # Activation tracking resets after every preventive action.
        self._activations_since_action = [0] * self.num_threads

    # ------------------------------------------------------------------ #
    # Introspection (the optional system-software interface of §4)
    # ------------------------------------------------------------------ #
    def score_of(self, thread_id: int) -> float:
        return self.scores.score_of(thread_id)

    def quota_of(self, thread_id: int) -> int:
        return self.throttler.quota_of(thread_id)

    def is_throttled(self, thread_id: int) -> bool:
        return self.throttler.is_throttled(thread_id)

    def suspects(self) -> List[int]:
        if self.last_decision is None:
            return []
        return list(self.last_decision.suspects)

    def export_scores(self) -> Dict[int, float]:
        """The per-thread scores exposed to system software (paper §4)."""

        return {i: self.scores.score_of(i) for i in range(self.num_threads)}

    def snapshot(self) -> Dict[str, object]:
        return {
            "config": self.config.as_dict(),
            "window_cycles": self.window_cycles,
            "stats": self.stats.as_dict(),
            "scores": self.scores.snapshot(),
            "throttler": self.throttler.snapshot(),
        }

"""RowHammer-preventive score counters with two-set time interleaving.

Each hardware thread owns a *RowHammer-preventive score*: the (fractional)
number of preventive actions attributed to it.  Indefinitely accumulating
scores would eventually punish long-running benign threads, so BreakHammer
(paper §4.2, Fig. 4) keeps **two** counter sets:

* both sets are *trained* (incremented) during every throttling window;
* only the *active* set answers suspect-identification queries;
* at the end of each window the active set is reset and the other set —
  which has been training for one full window already — becomes active.

This way the active set always reflects roughly one window's worth of
history, and monitoring never has a blind spot right after a reset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class ScoreCounterSet:
    """One set of per-thread RowHammer-preventive score counters."""

    num_threads: int
    scores: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_threads <= 0:
            raise ValueError("need at least one hardware thread")
        if not self.scores:
            self.scores = [0.0] * self.num_threads
        elif len(self.scores) != self.num_threads:
            raise ValueError("scores length must equal num_threads")

    def add(self, thread_id: int, amount: float) -> None:
        self.scores[thread_id] += amount

    def get(self, thread_id: int) -> float:
        return self.scores[thread_id]

    def mean(self) -> float:
        return sum(self.scores) / len(self.scores)

    def total(self) -> float:
        return sum(self.scores)

    def reset(self) -> None:
        for i in range(len(self.scores)):
            self.scores[i] = 0.0

    def as_dict(self) -> Dict[int, float]:
        return {i: score for i, score in enumerate(self.scores)}


class DualCounterSet:
    """The two time-interleaved score counter sets of Fig. 4.

    ``add`` trains both sets; queries (``score_of``, ``mean``) read only the
    active set; ``rotate`` resets the active set and makes the other set
    active — exactly the behaviour at the end of each throttling window.
    """

    def __init__(self, num_threads: int) -> None:
        self.num_threads = num_threads
        self._sets = [ScoreCounterSet(num_threads), ScoreCounterSet(num_threads)]
        self._active_index = 0
        self.rotations = 0

    # ------------------------------------------------------------------ #
    @property
    def active(self) -> ScoreCounterSet:
        return self._sets[self._active_index]

    @property
    def training(self) -> ScoreCounterSet:
        """The set that is training but not yet answering queries."""

        return self._sets[1 - self._active_index]

    # ------------------------------------------------------------------ #
    def add(self, thread_id: int, amount: float) -> None:
        """Attribute ``amount`` of score to ``thread_id`` in both sets."""

        if not 0 <= thread_id < self.num_threads:
            raise IndexError(f"thread {thread_id} out of range")
        if amount < 0:
            raise ValueError("score increments must be non-negative")
        for counter_set in self._sets:
            counter_set.add(thread_id, amount)

    def score_of(self, thread_id: int) -> float:
        return self.active.get(thread_id)

    def scores(self) -> List[float]:
        return list(self.active.scores)

    def mean(self) -> float:
        return self.active.mean()

    def rotate(self) -> None:
        """End-of-window: reset the active set and swap roles."""

        self.active.reset()
        self._active_index = 1 - self._active_index
        self.rotations += 1

    def reset_all(self) -> None:
        for counter_set in self._sets:
            counter_set.reset()

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        return {
            "active_index": self._active_index,
            "rotations": self.rotations,
            "active_scores": self.active.as_dict(),
            "training_scores": self.training.as_dict(),
        }

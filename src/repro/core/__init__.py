"""BreakHammer — the paper's primary contribution.

BreakHammer sits next to the memory controller, observes the preventive
actions of whichever RowHammer mitigation mechanism is deployed, attributes
them to hardware threads, identifies suspect threads with outlier analysis,
and throttles suspects by shrinking their LLC cache-miss-buffer (MSHR)
quotas.

* :mod:`repro.core.scores` — per-thread score counters with the paper's
  two-set time interleaving (Fig. 4),
* :mod:`repro.core.suspect` — Algorithm 1 (thresholded deviation from the
  mean),
* :mod:`repro.core.throttler` — Expression 1 (quota reduction and recovery),
* :mod:`repro.core.breakhammer` — the orchestrating mechanism that plugs
  into the controller as an observer and into the MSHR file as a quota
  driver,
* :mod:`repro.core.security` — Expression 2 and the Fig. 5 security bound,
* :mod:`repro.core.hardware_model` — the §6 area / latency model.
"""

from repro.core.breakhammer import BreakHammer, BreakHammerConfig, BreakHammerStats
from repro.core.hardware_model import HardwareCostModel, HardwareCostReport
from repro.core.scores import DualCounterSet, ScoreCounterSet
from repro.core.security import SecurityAnalysis, max_attacker_score_ratio
from repro.core.software_interface import ScoreRegisterFile, SoftwareScoreTracker
from repro.core.suspect import SuspectDetector, SuspectDecision
from repro.core.throttler import QuotaPolicy, ThreadQuotaState, Throttler

__all__ = [
    "BreakHammer",
    "BreakHammerConfig",
    "BreakHammerStats",
    "DualCounterSet",
    "HardwareCostModel",
    "HardwareCostReport",
    "QuotaPolicy",
    "ScoreCounterSet",
    "ScoreRegisterFile",
    "SecurityAnalysis",
    "SoftwareScoreTracker",
    "SuspectDecision",
    "SuspectDetector",
    "ThreadQuotaState",
    "Throttler",
    "max_attacker_score_ratio",
]

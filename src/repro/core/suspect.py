"""Suspect-thread identification — Algorithm 1 of the paper.

BreakHammer marks a hardware thread as *suspect* when, at the moment a
RowHammer-preventive action is attributed, the thread's score

1. exceeds the *threat threshold* ``TH_threat`` (so threads that have caused
   only a handful of actions are never punished), and
2. exceeds the mean score across all threads by more than a factor of
   ``TH_outlier`` — i.e. ``score > (1 + TH_outlier) * mean(scores)``.

The detector is stateless apart from its two thresholds; the caller provides
the score vector (the active counter set) and receives the set of suspects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class SuspectDecision:
    """The outcome of one outlier-analysis pass."""

    suspects: tuple
    mean_score: float
    max_allowed_deviation: float
    scores: tuple

    def is_suspect(self, thread_id: int) -> bool:
        return thread_id in self.suspects

    @property
    def any_suspect(self) -> bool:
        return bool(self.suspects)


class SuspectDetector:
    """Thresholded deviation-from-the-mean outlier analysis (Alg. 1)."""

    def __init__(self, threat_threshold: float = 32.0,
                 outlier_threshold: float = 0.65) -> None:
        if threat_threshold < 0:
            raise ValueError("TH_threat must be non-negative")
        if outlier_threshold < 0:
            raise ValueError("TH_outlier must be non-negative")
        self.threat_threshold = threat_threshold
        self.outlier_threshold = outlier_threshold
        self.evaluations = 0

    def evaluate(self, scores: Sequence[float]) -> SuspectDecision:
        """Apply Algorithm 1's checks to ``scores`` (one entry per thread)."""

        if not scores:
            raise ValueError("scores must contain at least one thread")
        self.evaluations += 1
        mean_score = sum(scores) / len(scores)
        max_allowed = (1.0 + self.outlier_threshold) * mean_score
        suspects: List[int] = []
        for thread_id, score in enumerate(scores):
            # Avoid marking threads with low scores (line 11).
            if score < self.threat_threshold:
                continue
            # Mark threads that exceed the mean by a factor of TH_outlier
            # (line 15).
            if score > max_allowed:
                suspects.append(thread_id)
        return SuspectDecision(
            suspects=tuple(suspects),
            mean_score=mean_score,
            max_allowed_deviation=max_allowed,
            scores=tuple(scores),
        )

    # ------------------------------------------------------------------ #
    def minimum_detectable_score(self, scores: Sequence[float]) -> float:
        """The smallest score a thread would need to be marked suspect.

        Useful for tests and for the security analysis: it is the maximum of
        ``TH_threat`` and ``(1 + TH_outlier) * mean(scores)``.
        """

        if not scores:
            raise ValueError("scores must contain at least one thread")
        mean_score = sum(scores) / len(scores)
        return max(self.threat_threshold,
                   (1.0 + self.outlier_threshold) * mean_score)

"""Security analysis — Expression 2 and Fig. 5 of the paper.

The paper analyses the strongest memory-performance attack an adversary can
mount *without* being identified as a suspect: the attacker keeps every
attack thread's RowHammer-preventive score just below the outlier bound.

With ``N_atk`` attack threads, ``N_ben`` benign threads, a benign average
score ``RS_ben_avg``, and outlier threshold ``TH_outlier``, the maximum score
an attack thread can reach before detection satisfies Expression 2:

    RS_atk_max < ((N_atk * RS_atk + N_ben * RS_ben_avg) / (N_atk + N_ben))
                 * (1 + TH_outlier)

Solving the fixed point where every attack thread holds the same maximal
score yields the closed form implemented by :func:`max_attacker_score_ratio`,
which is what Fig. 5 plots (normalised to the benign average score).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence


def max_attacker_score_ratio(attacker_fraction: float,
                             outlier_threshold: float) -> float:
    """Maximum attack-thread score, normalised to the benign average.

    Parameters
    ----------
    attacker_fraction:
        ``N_atk / (N_atk + N_ben)`` — the fraction of hardware threads the
        attacker controls, in ``[0, 1)``.
    outlier_threshold:
        BreakHammer's ``TH_outlier``.

    Returns
    -------
    float
        The largest ``RS_atk / RS_ben_avg`` an undetected attack thread can
        sustain.  Diverges to infinity as the attacker fraction approaches
        ``1 / (1 + TH_outlier)`` ... 1 — i.e. only an attacker controlling
        nearly all threads escapes the bound, which is the paper's point.
    """

    if not 0.0 <= attacker_fraction <= 1.0:
        raise ValueError("attacker_fraction must be within [0, 1]")
    if outlier_threshold < 0:
        raise ValueError("outlier_threshold must be non-negative")
    factor = 1.0 + outlier_threshold
    benign_fraction = 1.0 - attacker_fraction
    denominator = 1.0 - factor * attacker_fraction
    if denominator <= 0.0:
        return float("inf")
    return factor * benign_fraction / denominator


@dataclass
class SecurityAnalysis:
    """Convenience wrapper producing the Fig. 5 data series."""

    outlier_thresholds: Sequence[float] = (
        0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95
    )

    def curve(self, outlier_threshold: float,
              attacker_percentages: Sequence[int] = tuple(range(0, 101, 10)),
              cap: float = 10.0) -> List[float]:
        """One Fig. 5 line: RS_atk_max / RS_ben_avg vs attacker share."""

        values = []
        for percent in attacker_percentages:
            ratio = max_attacker_score_ratio(percent / 100.0, outlier_threshold)
            values.append(min(ratio, cap))
        return values

    def figure5(self, attacker_percentages: Sequence[int] = tuple(range(0, 101, 10)),
                cap: float = 10.0) -> Dict[float, List[float]]:
        """All Fig. 5 lines keyed by TH_outlier."""

        return {
            th: self.curve(th, attacker_percentages, cap)
            for th in self.outlier_thresholds
        }

    # ------------------------------------------------------------------ #
    # The two observations the paper makes from Fig. 5
    # ------------------------------------------------------------------ #
    def paper_observation_50pct(self) -> float:
        """At TH_outlier = 0.65 and 50% attacker threads: ≈ 4.71×."""

        return max_attacker_score_ratio(0.5, 0.65)

    def paper_observation_90pct(self) -> float:
        """At TH_outlier = 0.05 and 90% attacker threads: ≈ 1.90×."""

        return max_attacker_score_ratio(0.9, 0.05)

    def minimum_attacker_share_for_ratio(self, target_ratio: float,
                                         outlier_threshold: float,
                                         resolution: int = 1000) -> float:
        """Smallest attacker-thread fraction achieving ``target_ratio``.

        Used to reproduce statements like "an attacker cannot trigger twice
        the preventive actions of benign threads unless it controls 90% of
        all hardware threads" (paper §1/§5.2).
        """

        for step in range(resolution + 1):
            fraction = step / resolution
            if max_attacker_score_ratio(fraction, outlier_threshold) >= target_ratio:
                return fraction
        return 1.0

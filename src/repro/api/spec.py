"""Declarative experiment specifications.

:class:`ExperimentSpec` is the single frozen description of *what* a sweep
computes: the workload mixes, the mitigation mechanisms, the N_RH sweep,
the BreakHammer thresholds, the simulation engine, the seeds, and the
scale (cycles per run, trace sizes).  Everything in a spec affects
simulation **results** — execution knobs (worker count, cache directory)
live on :class:`repro.api.Session` instead, so one spec always lands in
one :class:`repro.analysis.runcache.RunCache` fingerprint namespace no
matter how it is executed.

Specs are validated up front (unknown mechanisms, malformed mixes, bad
engines and non-positive scales fail at construction, not mid-sweep),
fingerprint-stable (:meth:`fingerprint` digests every field), and
serialisable: :func:`load_spec` reads the TOML/JSON files the
``python -m repro.api run`` CLI consumes, and :meth:`ExperimentSpec.as_dict`
round-trips through :meth:`ExperimentSpec.from_dict`.

``engine=None`` means "not pinned": the session resolves it through the
one documented precedence chain (explicit spec field > ``REPRO_ENGINE`` >
``"fast"``, see :func:`repro.api.session.resolve_execution`).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.mitigations.registry import PAIRED_MECHANISMS
from repro.sim.config import SIMULATION_ENGINES
from repro.workloads.mixes import (
    ATTACK_MIXES,
    ATTACKER_LETTERS,
    BENIGN_MIXES,
    MIX_LETTER_SET,
)

#: Workload letters :func:`repro.workloads.mixes.make_mix` understands
#: (``A``/``S``/``X`` are the double-sided, many-sided, and half-double
#: attacker geometries).
MIX_LETTERS = MIX_LETTER_SET

#: Cores of the harness machine — every harness mix names one per core.
HARNESS_CORES = 4


@dataclass(frozen=True)
class RunPoint:
    """One grid coordinate of a spec: the unit a session submits."""

    mix: str
    mechanism: str
    nrh: int
    breakhammer: bool = False
    seed: int = 0

    def as_run_spec(self) -> Tuple[str, str, int, bool]:
        """The legacy ``(mix, mechanism, nrh, breakhammer)`` tuple."""

        return (self.mix, self.mechanism, self.nrh, self.breakhammer)


@dataclass(frozen=True)
class ExperimentSpec:
    """A complete, validated description of one experiment sweep.

    Field-for-field this mirrors the result-affecting half of the legacy
    :class:`repro.analysis.experiments.HarnessConfig`; the execution half
    (``jobs``, ``cache_dir``) intentionally does not exist here.
    """

    sim_cycles: int = 25_000
    entries_per_core: int = 8_000
    attacker_entries: int = 12_000
    nrh_default: int = 1024
    nrh_low: int = 64
    nrh_sweep: Tuple[int, ...] = (4096, 2048, 1024, 512, 256, 128, 64)
    attack_mixes: Tuple[str, ...] = tuple(ATTACK_MIXES)
    benign_mixes: Tuple[str, ...] = tuple(BENIGN_MIXES)
    mechanisms: Tuple[str, ...] = tuple(PAIRED_MECHANISMS)
    seeds: Tuple[int, ...] = (0,)
    threat_threshold: float = 4.0
    outlier_threshold: float = 0.65
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        # Coerce sequences so specs are hashable and fingerprint-stable no
        # matter how the caller spelled them (lists from TOML/JSON).
        for name in ("nrh_sweep", "attack_mixes", "benign_mixes",
                     "mechanisms", "seeds"):
            object.__setattr__(self, name, tuple(getattr(self, name)))
        self._validate()

    # ------------------------------------------------------------------ #
    # Validation — fail at construction, not mid-sweep.
    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        from repro.mitigations.registry import available_mechanisms

        if self.sim_cycles <= 0:
            raise ValueError("sim_cycles must be positive")
        if self.entries_per_core <= 0 or self.attacker_entries <= 0:
            raise ValueError("trace entry counts must be positive")
        if self.engine is not None and self.engine not in SIMULATION_ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of "
                f"{SIMULATION_ENGINES} (or None to defer to REPRO_ENGINE)"
            )
        if not self.nrh_sweep:
            raise ValueError("nrh_sweep cannot be empty")
        for nrh in (*self.nrh_sweep, self.nrh_default, self.nrh_low):
            if not isinstance(nrh, int) or nrh <= 0:
                raise ValueError(f"N_RH values must be positive ints: {nrh!r}")
        if not self.seeds:
            raise ValueError("need at least one seed")
        known = set(available_mechanisms())
        for mechanism in self.mechanisms:
            if mechanism not in known:
                raise ValueError(
                    f"unknown mechanism {mechanism!r}; "
                    f"available: {', '.join(sorted(known))}"
                )
        if not self.attack_mixes and not self.benign_mixes:
            raise ValueError("need at least one workload mix")
        for mix in (*self.attack_mixes, *self.benign_mixes):
            self._validate_mix(mix)
        for mix in self.attack_mixes:
            # Catalog mixes carry no attacker core by construction (the
            # prefix would otherwise alias the S/X letters).
            if (mix.startswith("ingest:")
                    or not set(mix.upper()) & set(ATTACKER_LETTERS)):
                raise ValueError(
                    f"attack mix {mix!r} has no attacker core (need one "
                    f"of {sorted(ATTACKER_LETTERS)}; ingested workloads "
                    "are benign and belong in benign_mixes)"
                )
        if not 0.0 < self.outlier_threshold <= 1.0:
            raise ValueError("outlier_threshold must be in (0, 1]")
        if self.threat_threshold <= 0:
            raise ValueError("threat_threshold must be positive")

    @staticmethod
    def _validate_mix(mix: str) -> None:
        """One mix string: known letters, or a resolvable catalog name.

        Both failure modes raise here, at construction, with the full
        menu — the available letters *and* the ingested workload names —
        instead of surfacing deep inside trace generation mid-sweep.
        """

        from repro.workloads.ingest.catalog import (
            WORKLOAD_DIR_ENV,
            WorkloadCatalog,
            is_catalog_mix,
            parse_catalog_mix,
        )

        catalog = WorkloadCatalog.resolve()
        if is_catalog_mix(mix):
            name, cores = parse_catalog_mix(mix)  # raises on bad grammar
            if catalog is None:
                raise ValueError(
                    f"mix {mix!r} needs a workload catalog, but none is "
                    f"configured: set {WORKLOAD_DIR_ENV} (or pass "
                    "Session(workload_dir=...)) and ingest with "
                    "'python -m repro.api workloads ingest'"
                )
            available = catalog.names()
            if name not in available:
                raise ValueError(
                    f"mix {mix!r}: no ingested workload {name!r} in "
                    f"{catalog.directory} (ingested workloads: "
                    f"{', '.join(available) if available else 'none'})"
                )
            if cores != HARNESS_CORES:
                raise ValueError(
                    f"mix {mix!r} must name {HARNESS_CORES} cores "
                    f"(write 'ingest:{name} x{HARNESS_CORES}')"
                )
            return
        bad = set(mix.upper()) - MIX_LETTERS
        if bad:
            names = catalog.names() if catalog is not None else []
            raise ValueError(
                f"mix {mix!r} uses unknown workload letters {sorted(bad)}; "
                f"available letters: {', '.join(sorted(MIX_LETTERS))}; "
                f"ingested workloads: "
                f"{', '.join(names) if names else 'none'} "
                "(address them as 'ingest:<name> x4')"
            )
        if len(mix) != HARNESS_CORES:
            raise ValueError(
                f"mix {mix!r} must name {HARNESS_CORES} cores "
                "(one letter per core of the harness machine)"
            )

    # ------------------------------------------------------------------ #
    # Profiles (the spec-level equivalents of HarnessConfig's).
    # ------------------------------------------------------------------ #
    @classmethod
    def full(cls, **overrides) -> "ExperimentSpec":
        """The paper's full sweep (long)."""

        return cls(**overrides)

    @classmethod
    def fast(cls, **overrides) -> "ExperimentSpec":
        """A profile small enough for CI and the pytest benchmarks."""

        base = dict(
            sim_cycles=12_000,
            entries_per_core=4_000,
            attacker_entries=6_000,
            nrh_sweep=(4096, 1024, 256, 64),
            attack_mixes=("HHMA", "MMLA"),
            benign_mixes=("HHMM", "MMLL"),
        )
        base.update(overrides)
        return cls(**base)

    @classmethod
    def smoke(cls, **overrides) -> "ExperimentSpec":
        """The smallest useful profile (unit/integration tests)."""

        base = dict(
            sim_cycles=6_000,
            entries_per_core=2_000,
            attacker_entries=3_000,
            nrh_sweep=(1024, 64),
            attack_mixes=("MMLA",),
            benign_mixes=("MMLL",),
            mechanisms=("para", "graphene", "rfm"),
        )
        base.update(overrides)
        return cls(**base)

    @classmethod
    def tiny(cls, **overrides) -> "ExperimentSpec":
        """Micro scale for examples, smoke CI, and streaming tests."""

        base = dict(
            sim_cycles=1_500,
            entries_per_core=600,
            attacker_entries=800,
            nrh_sweep=(64,),
            attack_mixes=("MMLA",),
            benign_mixes=("MMLL",),
            mechanisms=("para",),
        )
        base.update(overrides)
        return cls(**base)

    @classmethod
    def profile(cls, name: str, **overrides) -> "ExperimentSpec":
        """Look a profile up by name (``full``/``fast``/``smoke``/``tiny``)."""

        factories = {"full": cls.full, "fast": cls.fast,
                     "smoke": cls.smoke, "tiny": cls.tiny}
        if name not in factories:
            raise ValueError(
                f"unknown profile {name!r}; one of {sorted(factories)}"
            )
        return factories[name](**overrides)

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    def resolved(self, engine: str) -> "ExperimentSpec":
        """This spec with the engine pinned (sessions store the result)."""

        if engine not in SIMULATION_ENGINES:
            raise ValueError(f"unknown engine {engine!r}")
        if self.engine == engine:
            return self
        return dataclasses.replace(self, engine=engine)

    def fingerprint(self, workload_dir: Optional[str] = None) -> str:
        """Digest of every result-affecting field (RunCache keys fall out).

        Unpinned engines digest as the default ``"fast"`` so that a spec
        resolved explicitly to the default and an unpinned spec share one
        cache namespace (they compute identical results).

        When the spec references ingested workloads (``ingest:`` mixes),
        the catalog **trace digests** fold in too — the mix string names
        the workload, but its *content* is whatever was last ingested, so
        re-ingesting a trace moves every referencing spec to a fresh
        fingerprint and stale cache entries can never be served.
        ``workload_dir`` overrides ``REPRO_WORKLOAD_DIR`` for the lookup
        (sessions pass their own).
        """

        from repro.sim.config import config_fingerprint

        resolved = self if self.engine is not None else self.resolved("fast")
        digests = self.catalog_digests(workload_dir)
        if digests:
            return config_fingerprint(resolved,
                                      ("workload-catalog", digests))
        return config_fingerprint(resolved)

    def catalog_digests(self, workload_dir: Optional[str] = None
                        ) -> Tuple[Tuple[str, str], ...]:
        """Sorted ``(name, trace_digest)`` pairs of referenced workloads."""

        from repro.workloads.ingest.catalog import (
            WorkloadCatalog,
            is_catalog_mix,
            parse_catalog_mix,
        )

        names = [parse_catalog_mix(mix)[0]
                 for mix in (*self.attack_mixes, *self.benign_mixes)
                 if is_catalog_mix(mix)]
        if not names:
            return ()
        catalog = WorkloadCatalog.resolve(workload_dir)
        if catalog is None:
            raise ValueError(
                "spec references ingested workloads but no catalog is "
                "configured (REPRO_WORKLOAD_DIR / workload_dir)"
            )
        return catalog.digests(names)

    def grid(self, mixes: Optional[Sequence[str]] = None,
             breakhammer_values: Sequence[bool] = (False, True),
             ) -> List[RunPoint]:
        """The cartesian mixes × mechanisms × nrh × BH × seeds grid."""

        mixes = list(mixes if mixes is not None
                     else (*self.attack_mixes, *self.benign_mixes))
        return [
            RunPoint(mix, mechanism, nrh, bh, seed)
            for seed in self.seeds
            for mechanism in self.mechanisms
            for nrh in self.nrh_sweep
            for bh in breakhammer_values
            for mix in mixes
        ]

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        for name, value in data.items():
            if isinstance(value, tuple):
                data[name] = list(value)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object],
                  profile: Optional[str] = None) -> "ExperimentSpec":
        """Build a spec from plain data, optionally over a named profile."""

        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown ExperimentSpec fields: {unknown}")
        if profile:
            return cls.profile(profile, **data)
        return cls(**data)

    def dump_json(self, path: Path | str) -> None:
        Path(path).write_text(json.dumps(self.as_dict(), indent=2) + "\n",
                              encoding="utf-8")


@dataclass(frozen=True)
class SpecFile:
    """A parsed spec file: the spec plus file-level run directives."""

    spec: ExperimentSpec
    figures: Tuple[str, ...] = ()
    jobs: Optional[int] = None
    cache_dir: Optional[str] = None
    backend: Optional[str] = None
    broker: Optional[str] = None
    workers: Optional[int] = None


def _parse_spec_data(data: Dict[str, object], source: str) -> SpecFile:
    data = dict(data)
    profile = data.pop("profile", None)
    figures = tuple(data.pop("figures", ()) or ())
    execution = dict(data.pop("execution", {}) or {})
    spec_fields = dict(data.pop("spec", {}) or {})
    # Top-level spec fields are accepted too (flat JSON dumps round-trip).
    spec_fields.update(data)
    jobs = execution.pop("jobs", None)
    cache_dir = execution.pop("cache_dir", None)
    backend = execution.pop("backend", None)
    broker = execution.pop("broker", None)
    workers = execution.pop("workers", None)
    if execution:
        raise ValueError(
            f"{source}: unknown [execution] keys: {sorted(execution)}"
        )
    for name, value in (("jobs", jobs), ("workers", workers)):
        if value is not None and (not isinstance(value, int) or value < 0):
            raise ValueError(
                f"{source}: {name} must be a non-negative integer"
            )
    spec = ExperimentSpec.from_dict(spec_fields, profile=profile)
    return SpecFile(spec=spec, figures=figures, jobs=jobs,
                    cache_dir=cache_dir, backend=backend, broker=broker,
                    workers=workers)


def spec_from_data(data: Dict[str, object],
                   source: str = "<spec data>") -> SpecFile:
    """Parse already-deserialised spec-file data (the ``load_spec`` format).

    The experiment service (``POST /v1/specs``) and any other caller that
    receives spec content without a file path funnel through the same
    parser as :func:`load_spec`, so file-based and wire-based specs can
    never drift apart.  ``source`` names the origin in error messages.
    """

    if not isinstance(data, dict):
        raise ValueError(f"{source}: spec data must be a table/object")
    return _parse_spec_data(data, source)


def load_spec(path: Path | str) -> SpecFile:
    """Parse a ``.toml`` or ``.json`` experiment spec file.

    The format::

        profile = "smoke"           # optional base profile
        figures = ["fig2", "fig6"]  # optional figure selection

        [spec]                      # overrides on top of the profile
        sim_cycles = 2000
        mechanisms = ["para", "rfm"]

        [execution]                 # optional execution defaults
        jobs = 2
        cache_dir = "/tmp/repro-cache"
        backend = "cluster"         # "local" (default) or "cluster"
        broker = "0.0.0.0:7777"     # cluster listen address
        workers = 2                 # co-located cluster workers to spawn

    JSON files use the same keys.  Execution values from the file rank
    below explicit CLI flags / ``Session`` arguments and above ``REPRO_*``
    environment variables (see ``resolve_execution``).
    """

    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() == ".json":
        data = json.loads(text)
    elif path.suffix.lower() == ".toml":
        import tomllib

        data = tomllib.loads(text)
    else:
        raise ValueError(
            f"{path}: unsupported spec format {path.suffix!r} "
            "(expected .toml or .json)"
        )
    if not isinstance(data, dict):
        raise ValueError(f"{path}: spec file must contain a table/object")
    return _parse_spec_data(data, str(path))

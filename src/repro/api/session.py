"""Sessions: executor + cache lifecycle and futures-based streaming sweeps.

A :class:`Session` binds one :class:`~repro.api.spec.ExperimentSpec` to one
execution environment (worker pool, on-disk run cache) and exposes the
futures surface: :meth:`Session.submit` returns
:class:`~repro.analysis.executor.RunHandle` objects, figures *subscribe* to
their grid's handles and aggregate as results stream in, and
:meth:`Session.figures` overlaps one figure's aggregation with the next
figure's execution on a shared pool.  Results are bit-identical to the
legacy batch path (``tests/test_api_session.py`` pins this for serial and
parallel executors, cold and warm caches).

Execution-knob resolution (the one documented place)
----------------------------------------------------
:func:`resolve_execution` is the **single** resolution point for the
execution knobs.  Precedence, highest first:

1. explicit arguments — a ``Session(...)`` keyword, a CLI flag, or a
   pinned ``ExperimentSpec.engine`` field;
2. the environment: ``REPRO_ENGINE``, ``REPRO_JOBS``, ``REPRO_CACHE_DIR``,
   ``REPRO_BACKEND``;
3. defaults: the ``fast`` engine, serial execution (jobs=1), cache off,
   the ``local`` backend.

``backend="cluster"`` swaps the sweep executor for the socket
broker/worker fabric (:mod:`repro.cluster`): the session hosts a
:class:`~repro.cluster.broker.ClusterBroker` at ``broker=`` (default: an
ephemeral local TCP port), optionally spawns ``workers=N`` co-located
worker processes, and materialises the spec's traces to a columnar spool
directory that co-located workers mmap instead of regenerating
(:mod:`repro.workloads.spool`).  Figure streaming, caching, and results
are unchanged — cluster sweeps are bit-identical to serial ones
(``tests/test_cluster.py``).

Explicit spec/session values therefore always beat ``REPRO_*`` variables.
``cache_dir=""`` (explicit empty string) force-disables the cache even when
``REPRO_CACHE_DIR`` is exported, matching the legacy
:class:`~repro.analysis.runcache.RunCache` contract.
"""

from __future__ import annotations

import dataclasses
import os
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.aggregate import SeriesStats

from repro.analysis.executor import (
    BACKEND_ENV,
    JOBS_ENV,
    RunHandle,
    SweepPlan,
    iter_completed,
    resolve_backend,
    resolve_jobs,
)
from repro.analysis.experiments import (
    FIGURES,
    TABLES,
    ExperimentRunner,
    HarnessConfig,
)
from repro.analysis.figures import FigureData, TableData
from repro.analysis.runcache import CACHE_DIR_ENV, RunCache
from repro.api.spec import ExperimentSpec, RunPoint
from repro.sim.config import ENGINE_ENV, SIMULATION_ENGINES
from repro.sim.stats import RunStatistics

#: Default engine when neither the spec nor ``REPRO_ENGINE`` pins one.
DEFAULT_ENGINE = "fast"


@dataclass(frozen=True)
class ExecutionPlan:
    """The fully resolved execution knobs of one session."""

    engine: str
    jobs: int
    cache_dir: Optional[str]
    backend: str = "local"


def resolve_engine(explicit: Optional[str] = None) -> str:
    """The effective engine: explicit value, else ``$REPRO_ENGINE``, else fast."""

    engine = explicit
    if engine is None:
        env = os.environ.get(ENGINE_ENV, "").strip().lower()
        engine = env or DEFAULT_ENGINE
    if engine not in SIMULATION_ENGINES:
        raise ValueError(
            f"engine {engine!r} (from "
            f"{'argument/spec' if explicit else ENGINE_ENV}) is not one of "
            f"{SIMULATION_ENGINES}"
        )
    return engine


def resolve_execution(spec: Optional[ExperimentSpec] = None,
                      jobs: Optional[int] = None,
                      cache_dir: Optional[str] = None,
                      engine: Optional[str] = None,
                      backend: Optional[str] = None) -> ExecutionPlan:
    """Resolve every execution knob in one place (see the module docstring).

    ``engine`` (argument) beats ``spec.engine`` beats ``$REPRO_ENGINE``;
    ``jobs``/``cache_dir``/``backend`` arguments beat ``$REPRO_JOBS``/
    ``$REPRO_CACHE_DIR``/``$REPRO_BACKEND``.
    ``jobs=None`` defers to the environment; ``jobs=0`` does too (the legacy
    HarnessConfig convention).  ``cache_dir=None`` defers, ``""`` disables.

    Engines: ``fast`` (default) and ``cycle`` (the per-cycle reference —
    bisect engine regressions with ``REPRO_ENGINE=cycle``) run one grid
    point per task.  ``engine="batch"`` additionally makes the sweep
    layer coalesce compatible pending points into multi-lane lockstep
    runs: points sharing a workload mix group into chunks of up to
    ``BATCH_GROUP_LANES`` lanes (mechanism, N_RH, BreakHammer, and seed
    vary freely per lane — grouping by mix only shares trace generation,
    it is never a correctness constraint), and the vectorised scheduler
    scan drives all lanes per global cycle.  Lanes with a non-default
    scheduler or a gating mitigation fall back to the scalar per-lane
    scan, still in lockstep.  Every engine and every grouping is
    bit-identical (``tests/test_engine_equivalence.py``,
    ``tests/test_batch_engine.py``, and the tri-engine fuzz corpus).
    """

    if engine is None and spec is not None:
        engine = spec.engine
    resolved_engine = resolve_engine(engine)
    resolved_jobs = resolve_jobs(jobs or 0)
    resolved_backend = resolve_backend(backend)
    if cache_dir is None:
        cache_dir = os.environ.get(CACHE_DIR_ENV)
        if not cache_dir:
            cache_dir = None
    elif cache_dir == "":
        cache_dir = None
    return ExecutionPlan(engine=resolved_engine, jobs=resolved_jobs,
                         cache_dir=cache_dir, backend=resolved_backend)


class Session:
    """Owns executor + cache lifecycle for one :class:`ExperimentSpec`.

    Usage::

        from repro.api import ExperimentSpec, Session

        with Session(ExperimentSpec.fast(), jobs=4) as session:
            handle = session.submit("MMLA", "para", 64, True)
            stats = handle.result()          # one grid point
            fig8 = session.figure("fig8")    # streamed figure sweep
            all_figs = session.figures(["fig6", "fig7", "fig12"])

    The session resolves its execution knobs once, up front, through
    :func:`resolve_execution`, builds the (legacy) runner it drives, and
    closes the worker pool on exit.  Alone-IPC baselines are first-class:
    :meth:`submit_alone` shards one handle per trace across the same pool
    the grid runs use.
    """

    def __init__(self, spec: Optional[ExperimentSpec] = None, *,
                 jobs: Optional[int] = None,
                 cache_dir: Optional[str] = None,
                 engine: Optional[str] = None,
                 backend: Optional[str] = None,
                 broker: Optional[str] = None,
                 workers: Optional[int] = None,
                 spool_dir: Optional[str] = None,
                 workload_dir: Optional[str] = None) -> None:
        spec = spec if spec is not None else ExperimentSpec()
        self.execution = resolve_execution(spec, jobs=jobs,
                                           cache_dir=cache_dir,
                                           engine=engine, backend=backend)
        self.spec = spec.resolved(self.execution.engine)
        # Where ingested (``ingest:``) mixes load from; explicit argument
        # beats REPRO_WORKLOAD_DIR (resolved by the workload catalog).
        self._workload_dir = workload_dir
        self._spool_owned: Optional[str] = None
        resolved_spool = self._resolve_spool_dir(spool_dir)
        self._runner = ExperimentRunner(HarnessConfig.from_spec(
            self.spec,
            jobs=self.execution.jobs,
            # "" force-disables so an exported REPRO_CACHE_DIR can never
            # resurrect a cache the resolution chain decided against.
            cache_dir=self.execution.cache_dir or "",
            backend=self.execution.backend,
            broker=broker,
            cluster_workers=workers or 0,
            spool_dir=resolved_spool,
            workload_dir=workload_dir,
        ), _api_owned=True)
        self._closed = False
        if resolved_spool is not None:
            try:
                self.materialise_spool()
            except BaseException:
                # Spooling failed (read-only/full filesystem): tear the
                # half-built session down — worker pool / cluster broker
                # included — instead of leaking it from a failed __init__.
                self.close()
                raise

    def _resolve_spool_dir(self, spool_dir: Optional[str]) -> Optional[str]:
        """Where this spec's traces spool to (``None`` = no spooling).

        Cluster sessions always spool — that is how co-located workers
        share page cache instead of regenerating traces — preferring a
        stable per-spec directory under the run-cache root, else a
        session-owned temporary directory.  Local sessions spool only when
        ``spool_dir`` is passed explicitly.
        """

        if spool_dir is not None:
            return str(Path(spool_dir).expanduser())
        if self.execution.backend != "cluster":
            return None
        if self.execution.cache_dir:
            return str(Path(self.execution.cache_dir).expanduser()
                       / f"spool-{self.spec.fingerprint(self._workload_dir)}")
        self._spool_owned = tempfile.mkdtemp(prefix="repro-spool-")
        return self._spool_owned

    def materialise_spool(self) -> int:
        """Write the spec's mixes to the spool once; returns mixes written.

        Already-spooled mixes (matching scale, seed, and fingerprint) are
        left untouched, so repeat sessions over a shared cache directory
        materialise nothing.
        """

        from repro.workloads.spool import TraceSpool

        config = self._runner.config
        if not config.spool_dir:
            return 0
        spool = TraceSpool(config.spool_dir)
        written = 0
        for seed in self.spec.seeds:
            for name in (*self.spec.attack_mixes, *self.spec.benign_mixes):
                written += spool.dump_mix(
                    self._runner.mix(name, seed), seed=seed,
                    entries_per_core=config.entries_per_core,
                    attacker_entries=config.attacker_entries,
                    fingerprint=self._runner.fingerprint,
                )
        return written

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def runner(self) -> ExperimentRunner:
        """The legacy runner this session drives (shared caches)."""

        return self._runner

    @property
    def jobs(self) -> int:
        return self._runner.jobs

    @property
    def engine(self) -> str:
        return self.spec.engine

    @property
    def backend(self) -> str:
        return self.execution.backend

    @property
    def spool_dir(self) -> Optional[str]:
        """The columnar trace spool this session's workers mmap, if any."""

        return self._runner.config.spool_dir

    @property
    def cache(self) -> Optional[RunCache]:
        return self._runner.disk_cache

    @property
    def fingerprint(self) -> str:
        return self._runner.fingerprint

    @property
    def runs_executed(self) -> int:
        return self._runner.runs_executed

    def stats(self) -> Dict[str, object]:
        """Uniform observability snapshot — works on **every** backend.

        Unlike :meth:`cluster_stats` (which raises on local sessions),
        this returns the same shape everywhere: the resolved execution
        knobs, the executor run counter, and the persistent
        :class:`RunCache` counters (``None`` when the cache is disabled).
        Cluster sessions additionally nest the broker's scheduling and
        elasticity counters under ``"cluster"``.  This is what the
        experiment service serves from ``GET /statsz``.
        """

        data: Dict[str, object] = {
            "backend": self.backend,
            "engine": self.engine,
            "jobs": self.jobs,
            "fingerprint": self.fingerprint,
            "runs_executed": self.runs_executed,
            "cache": (self.cache.stats() if self.cache is not None
                      else None),
        }
        if self.backend == "cluster":
            data["cluster"] = self.cluster_stats()
        return data

    def cluster_stats(self) -> Dict[str, object]:
        """Scheduling/elasticity counters of the cluster backend.

        A snapshot of the broker's observable state: scheduling mode,
        ``scheduled_by_cost`` / ``chunked_claims`` / ``autoscale_events``
        counters, per-worker served/elapsed tallies, queue depth, and the
        cost model's learned-table size and persistence path.  Raises
        :class:`TypeError` on non-cluster sessions (same contract as
        :func:`repro.cluster.cluster_broker`).
        """

        from repro.cluster import cluster_broker

        return cluster_broker(self).stats()

    def close(self) -> None:
        if not self._closed:
            self._runner.close()
            if self._spool_owned is not None:
                shutil.rmtree(self._spool_owned, ignore_errors=True)
                self._spool_owned = None
            self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Futures surface
    # ------------------------------------------------------------------ #
    def submit(self, mix: str, mechanism: str, nrh: int,
               breakhammer: bool = False, seed: int = 0) -> RunHandle:
        """Submit one grid point; returns its (possibly completed) handle."""

        return self._runner.submit_prefetch(
            [(mix, mechanism, nrh, breakhammer)], seed=seed
        )[0]

    def submit_point(self, point: RunPoint) -> RunHandle:
        return self.submit(point.mix, point.mechanism, point.nrh,
                           point.breakhammer, point.seed)

    def submit_grid(self, points: Iterable[RunPoint]) -> List[RunHandle]:
        """Submit many grid points: one handle per *distinct* point.

        Duplicates collapse, so the returned list can be shorter than the
        input; when the input may contain repeats, key results by point
        (``dict(zip(dict.fromkeys(points), handles))``) instead of zipping
        against the raw input.
        """

        by_seed: Dict[int, List[RunPoint]] = {}
        order: List[RunPoint] = []
        for point in points:
            by_seed.setdefault(point.seed, []).append(point)
            order.append(point)
        handles: Dict[RunPoint, RunHandle] = {}
        for seed, group in by_seed.items():
            submitted = self._runner.submit_prefetch(
                [p.as_run_spec() for p in group], seed=seed
            )
            for point, handle in zip(dict.fromkeys(group), submitted):
                handles[point] = handle
        return [handles[point] for point in dict.fromkeys(order)]

    def submit_alone(self, mix: str, seed: int = 0) -> List[RunHandle]:
        """One handle per trace of ``mix``'s standalone-IPC baselines.

        The baselines are sharded across the same worker pool as grid
        runs — they are ordinary spec points, not a serial preamble.
        """

        return self._runner.submit_prefetch([], alone_mixes=[mix], seed=seed)

    def run(self, mix: str, mechanism: str, nrh: int,
            breakhammer: bool = False, seed: int = 0) -> RunStatistics:
        """Blocking convenience: submit one point and wait for its result."""

        return self.submit(mix, mechanism, nrh, breakhammer, seed).result()

    # ------------------------------------------------------------------ #
    # Streamed figures
    # ------------------------------------------------------------------ #
    def figure(self, figure_id: str, *,
               target_ci: Optional[float] = None,
               max_seeds: Optional[int] = None, **kwargs) -> FigureData:
        """Compute one figure through the streaming path.

        The figure's declarative :class:`SweepPlan` is submitted as
        futures; results are merged into the session's caches in
        completion order (out-of-order on a pool — aggregation bookkeeping
        overlaps execution), and the figure's aggregation then reads the
        warm caches.  Bit-identical to the legacy batch
        ``ExperimentRunner.figureN`` path.

        ``target_ci`` switches to an **adaptive campaign**: the spec's
        base seed batch runs first, and additional seeds are then
        submitted *only for the grid points whose 95% CI half-width is
        still wider than the target*, round by round, until every cell
        meets the target or the campaign has consumed ``max_seeds``
        distinct seeds (default: the base batch plus four).  Cells of the
        result may therefore carry different sample counts — each
        :class:`~repro.analysis.aggregate.SeriesStats` records its own
        ``n``.  Requires at least two base seeds (one sample has no CI to
        compare).
        """

        if target_ci is None:
            if max_seeds is not None:
                raise ValueError("max_seeds only applies with target_ci")
            return self.stream(figure_id, **kwargs)
        return self._adaptive_figure(figure_id, target_ci, max_seeds, kwargs)

    def _adaptive_figure(self, figure_id: str, target_ci: float,
                         max_seeds: Optional[int],
                         kwargs: Dict[str, object]) -> FigureData:
        runner = self._runner
        plan = runner.figure_plan(figure_id, **kwargs)
        if plan.empty:
            raise ValueError(
                f"figure {figure_id!r} has no sweep plan to adapt"
            )
        if len(plan.seeds) < 2:
            raise ValueError(
                "adaptive campaigns need at least two seeds in the spec: "
                "one sample has a degenerate CI, so target_ci could never "
                "trigger an escalation"
            )
        self._consume(runner.submit_plan(plan))
        frames = [runner.figure_frame(plan, seed) for seed in plan.seeds]
        template = frames[0]
        # Per-cell sample lists, in the template's (series, x) order — the
        # escalation loop appends to wide cells only, so counts go ragged.
        samples: Dict[Tuple[str, object], List[float]] = {}
        for frame in frames:
            for label, series in frame.series.items():
                for index, x in enumerate(frame.x_values):
                    samples.setdefault((label, x), []).append(
                        series.values[index]
                    )
        used = list(plan.seeds)
        budget = max_seeds if max_seeds is not None else len(plan.seeds) + 4
        while True:
            wide = [
                cell for cell, values in samples.items()
                if SeriesStats.from_samples(values).ci95 > target_ci
            ]
            if not wide or len(used) >= budget:
                break
            new_seed = max(used) + 1
            escalation = dataclasses.replace(
                runner.escalation_plan(plan, wide), seeds=(new_seed,)
            )
            self._consume(runner.submit_plan(escalation))
            frame = runner.figure_frame(escalation, new_seed)
            for label, x in wide:
                samples[(label, x)].append(
                    frame.series[label].values[frame.x_values.index(x)]
                )
            used.append(new_seed)
        figure = FigureData(
            figure_id=template.figure_id,
            title=template.title,
            x_label=template.x_label,
            y_label=template.y_label,
            x_values=list(template.x_values),
            notes=template.notes,
        )
        for label in template.series:
            stats = [SeriesStats.from_samples(samples[(label, x)])
                     for x in template.x_values]
            figure.add_series(label, [cell.mean for cell in stats],
                              stats=stats)
        return figure

    def figures(self, figure_ids: Sequence[str],
                **kwargs_by_figure) -> Dict[str, FigureData]:
        """Compute several figures, overlapping aggregation with execution.

        Every figure's plan is submitted up front (shared points are
        deduplicated — overlapping grids execute once); each figure is
        then aggregated as soon as *its* handles have completed, while the
        later figures' remaining points are still executing in the pool.
        ``kwargs_by_figure`` maps a figure id to its keyword arguments.
        """

        submitted: Dict[str, List[RunHandle]] = {}
        for figure_id in dict.fromkeys(figure_ids):
            kwargs = kwargs_by_figure.get(figure_id, {})
            plan = self._runner.figure_plan(figure_id, **kwargs)
            submitted[figure_id] = self._runner.submit_plan(plan)
        results: Dict[str, FigureData] = {}
        for figure_id, handles in submitted.items():
            self._consume(handles)
            kwargs = kwargs_by_figure.get(figure_id, {})
            results[figure_id] = self._aggregate_fn(figure_id)(**kwargs)
        return results

    def stream(self, figure_id: str, on_result=None, **kwargs) -> FigureData:
        """Like :meth:`figure`, invoking ``on_result(handle)`` per completion.

        The callback observes every handle (cached ones included) in
        completion order — progress bars and live dashboards subscribe
        here without changing the aggregation result.
        """

        aggregate = self._aggregate_fn(figure_id)
        plan = self._runner.figure_plan(figure_id, **kwargs)
        for handle in iter_completed(self._runner.submit_plan(plan)):
            handle.result()
            if on_result is not None:
                on_result(handle)
        return aggregate(**kwargs)

    def headline_numbers(self, nrh: Optional[int] = None) -> Dict[str, float]:
        self._consume(self._runner.submit_plan(
            self._runner.headline_plan(nrh)
        ))
        return self._runner.headline_numbers(nrh)

    def table(self, table_id: str) -> TableData:
        if table_id not in TABLES:
            raise ValueError(
                f"unknown table {table_id!r}; one of {sorted(TABLES)}"
            )
        return getattr(self._runner, TABLES[table_id])()

    # ------------------------------------------------------------------ #
    def _aggregate_fn(self, figure_id: str):
        if figure_id not in FIGURES:
            raise ValueError(
                f"unknown figure {figure_id!r}; one of {sorted(FIGURES)}"
            )
        return getattr(self._runner, FIGURES[figure_id])

    @staticmethod
    def _consume(handles: Sequence[RunHandle]) -> None:
        for handle in iter_completed(handles):
            handle.result()

"""``python -m repro.api`` — the unified experiment CLI."""

import sys

from repro.api.cli import main

if __name__ == "__main__":
    sys.exit(main())

"""The unified ``python -m repro.api`` command line.

One invocation path for sweeps, smoke profiles, fuzz campaigns, workload
ingestion, and the bundled examples::

    python -m repro.api run sweep.toml --jobs 4 --out results/
    python -m repro.api run --profile smoke --figures fig6,fig12
    python -m repro.api fuzz --seed 0 --count 200 --jobs 2
    python -m repro.api examples --scale tiny
    python -m repro.api workloads ingest trace.csv.gz --name gap-bfs
    python -m repro.api workloads list

``run`` loads a declarative :class:`~repro.api.spec.ExperimentSpec` (TOML or
JSON, see :func:`~repro.api.spec.load_spec`) or a named profile, opens a
:class:`~repro.api.session.Session`, streams the requested figures through
the futures path, prints each one, and (with ``--out``) persists the
figure dictionaries as JSON.  Execution flags follow the documented
precedence: CLI flag > spec file ``[execution]`` > ``REPRO_*`` environment.

``fuzz`` forwards to the differential scenario fuzzer
(:mod:`repro.testing.fuzz`), so fuzz campaigns share this entry point.

``examples`` executes every ``examples/*.py`` script in a subprocess at the
requested scale (the scripts honour ``REPRO_EXAMPLE_SCALE``); the
``examples_smoke`` pytest marker drives the same path in CI.

``workloads`` manages the ingested-workload catalog
(:mod:`repro.workloads.ingest`): ``ingest`` imports an external trace
file (text/CSV, gzip-transparent), ``list`` shows every catalogued
workload with its characterization summary, ``verify`` checks entry
integrity (CRC frames, digests, entry counts), and ``drop`` removes one.
The catalog root is ``--workload-dir`` or ``REPRO_WORKLOAD_DIR``;
catalogued names are spec-addressable as ``"ingest:<name> x4"`` mixes.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.experiments import FIGURES
from repro.analysis.report import render_figure
from repro.api.session import Session
from repro.api.spec import ExperimentSpec, SpecFile, load_spec

#: Figures the ``run`` subcommand computes when none are selected.
DEFAULT_FIGURES = ("fig2", "fig6", "fig7", "fig8")

#: Environment variable the bundled examples read their scale from.
EXAMPLE_SCALE_ENV = "REPRO_EXAMPLE_SCALE"


def _parse_figures(raw: Optional[str], fallback: Sequence[str]) -> List[str]:
    names = ([part.strip() for part in raw.split(",") if part.strip()]
             if raw else list(fallback))
    unknown = sorted(set(names) - set(FIGURES) - {"headline"})
    if unknown:
        raise SystemExit(
            f"unknown figures: {', '.join(unknown)} "
            f"(known: {', '.join(sorted(FIGURES))}, headline)"
        )
    return names


def _cmd_run(args: argparse.Namespace) -> int:
    if args.spec is not None:
        spec_file = load_spec(args.spec)
    elif args.profile is not None:
        spec_file = SpecFile(spec=ExperimentSpec.profile(args.profile))
    else:
        raise SystemExit("run: need a spec file or --profile")
    figures = _parse_figures(args.figures, spec_file.figures
                             or DEFAULT_FIGURES)
    jobs = args.jobs if args.jobs is not None else spec_file.jobs
    cache_dir = (args.cache_dir if args.cache_dir is not None
                 else spec_file.cache_dir)
    backend = args.backend if args.backend is not None else spec_file.backend
    broker = args.broker if args.broker is not None else spec_file.broker
    workers = args.workers if args.workers is not None else spec_file.workers
    out_dir = Path(args.out) if args.out else None
    with Session(spec_file.spec, jobs=jobs, cache_dir=cache_dir,
                 engine=args.engine, backend=backend, broker=broker,
                 workers=workers) as session:
        print(f"spec fingerprint {session.fingerprint} | "
              f"engine={session.engine} backend={session.backend} "
              f"jobs={session.jobs} "
              f"cache={'on' if session.cache else 'off'}")
        # The statistics line appears only for multi-seed specs: a
        # single-seed run's textual output stays byte-identical to the
        # pre-statistics CLI for existing consumers.
        if len(session.spec.seeds) > 1:
            seeds = ",".join(str(seed) for seed in session.spec.seeds)
            print(f"seeds [{seeds}] | figure cells report mean ± 95% CI "
                  f"over {len(session.spec.seeds)} seeds")
        wanted = [f for f in figures if f != "headline"]
        results = session.figures(wanted)
        for figure_id in wanted:
            figure = results[figure_id]
            print()
            print(render_figure(figure))
            if out_dir is not None:
                out_dir.mkdir(parents=True, exist_ok=True)
                path = out_dir / f"{figure_id}.json"
                path.write_text(
                    json.dumps(figure.as_dict(), indent=2) + "\n",
                    encoding="utf-8",
                )
        if "headline" in figures:
            numbers = session.headline_numbers()
            print()
            for key, value in numbers.items():
                print(f"{key}: {value:.4f}")
            if out_dir is not None:
                (out_dir / "headline.json").write_text(
                    json.dumps(numbers, indent=2) + "\n", encoding="utf-8"
                )
        print(f"\n{session.runs_executed} simulation(s) executed"
              + (f"; cache {session.cache.stats()}" if session.cache else ""))
    return 0


def _cmd_fuzz(extra: Sequence[str]) -> int:
    from repro.testing.fuzz import main as fuzz_main

    return fuzz_main(list(extra))


def _examples_dir() -> Path:
    # repo/src/repro/api/cli.py -> repo/examples
    return Path(__file__).resolve().parents[3] / "examples"


def run_examples(scale: str = "tiny",
                 examples_dir: Optional[Path] = None) -> int:
    """Execute every ``examples/*.py`` at ``scale``; non-zero on failure."""

    directory = examples_dir or _examples_dir()
    scripts = sorted(directory.glob("*.py"))
    if not scripts:
        print(f"no example scripts under {directory}", file=sys.stderr)
        return 1
    env = dict(os.environ, **{EXAMPLE_SCALE_ENV: scale})
    # Examples resolve src/ relative to their own location; a copy run
    # from elsewhere (or an uninstalled checkout) still needs the
    # package importable in the subprocess.
    src_dir = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src_dir, env.get("PYTHONPATH")) if part)
    failures = 0
    for script in scripts:
        print(f"== {script.name} (scale={scale}) ==", flush=True)
        proc = subprocess.run([sys.executable, str(script)], env=env)
        if proc.returncode != 0:
            failures += 1
            print(f"{script.name}: exit {proc.returncode}", file=sys.stderr)
    print(f"{len(scripts) - failures}/{len(scripts)} examples succeeded")
    return 1 if failures else 0


def _cmd_examples(args: argparse.Namespace) -> int:
    return run_examples(scale=args.scale)


def _resolve_catalog(args: argparse.Namespace):
    from repro.workloads.ingest import WORKLOAD_DIR_ENV, WorkloadCatalog

    catalog = WorkloadCatalog.resolve(args.workload_dir)
    if catalog is None:
        raise SystemExit(
            f"workloads {args.workloads_command}: no catalog configured; "
            f"pass --workload-dir or set {WORKLOAD_DIR_ENV}"
        )
    return catalog


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads.ingest import CatalogError, IngestError

    catalog = _resolve_catalog(args)
    command = args.workloads_command
    try:
        if command == "ingest":
            entry = catalog.ingest(args.file, name=args.name,
                                   format=args.format)
            character = dict(entry.characterization)
            print(f"ingested {entry.name}: {entry.entries} entries "
                  f"({entry.format}), rbmpki {character.get('rbmpki')}, "
                  f"digest {entry.trace_digest[:12]}")
            print(f"spec-addressable as mix 'ingest:{entry.name} x4'")
            return 0
        if command == "list":
            names = catalog.names()
            if not names:
                print(f"no ingested workloads in {catalog.directory}")
                return 0
            for name in names:
                entry = catalog.entry(name)
                character = dict(entry.characterization)
                print(f"{entry.name}: {entry.entries} entries "
                      f"({entry.format}), rbmpki "
                      f"{character.get('rbmpki')}, digest "
                      f"{entry.trace_digest[:12]}")
            return 0
        if command == "verify":
            names = args.names or catalog.names()
            if not names:
                print(f"no ingested workloads in {catalog.directory}")
                return 0
            failures = 0
            for name in names:
                problems = catalog.verify(name)
                if problems:
                    failures += 1
                    for problem in problems:
                        print(f"{name}: {problem}")
                else:
                    print(f"{name}: ok")
            return 1 if failures else 0
        if command == "drop":
            if not catalog.drop(args.name):
                print(f"no ingested workload {args.name!r} in "
                      f"{catalog.directory}", file=sys.stderr)
                return 1
            print(f"dropped {args.name}")
            return 0
    except (CatalogError, IngestError, OSError) as exc:
        print(f"workloads {command}: {exc}", file=sys.stderr)
        return 1
    raise SystemExit(f"unknown workloads command {command!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.api",
        description="Declarative experiment API: sweeps, smoke profiles, "
                    "fuzz campaigns, and examples share this entry point.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute an experiment spec")
    run.add_argument("spec", nargs="?", default=None,
                     help="path to a .toml or .json ExperimentSpec file")
    run.add_argument("--profile", choices=("full", "fast", "smoke", "tiny"),
                     help="use a named profile instead of a spec file")
    run.add_argument("--figures", default=None,
                     help="comma-separated figure ids (default: the spec "
                          "file's list, else fig2,fig6,fig7,fig8); "
                          "'headline' selects the headline numbers")
    run.add_argument("--jobs", type=int, default=None,
                     help="worker processes (beats [execution] and "
                          "REPRO_JOBS)")
    run.add_argument("--cache-dir", default=None,
                     help="persistent run-cache directory ('' disables; "
                          "beats [execution] and REPRO_CACHE_DIR)")
    run.add_argument("--engine", choices=("cycle", "fast"), default=None,
                     help="simulation engine (beats the spec and "
                          "REPRO_ENGINE)")
    run.add_argument("--backend", choices=("local", "cluster"), default=None,
                     help="sweep backend (beats [execution] and "
                          "REPRO_BACKEND); 'cluster' hosts a socket broker "
                          "— see python -m repro.cluster")
    run.add_argument("--broker", default=None,
                     help="cluster listen address (HOST:PORT or unix:/path)")
    run.add_argument("--workers", type=int, default=None,
                     help="co-located cluster worker processes to spawn")
    run.add_argument("--out", default=None,
                     help="directory for per-figure JSON dumps")

    # Help-only stub: main() short-circuits `fuzz` before parse_args so
    # the fuzzer's own argparse sees its flags verbatim; do not add
    # options here, they would never be parsed.
    sub.add_parser(
        "fuzz", add_help=False,
        help="differential fuzz campaign (forwards every following "
             "argument to repro.testing.fuzz)",
    )

    examples = sub.add_parser("examples",
                              help="run every examples/*.py script")
    examples.add_argument("--scale", default="tiny",
                          choices=("tiny", "default"),
                          help="example scale via REPRO_EXAMPLE_SCALE "
                               "(default: tiny)")

    workloads = sub.add_parser(
        "workloads", help="manage the ingested-workload catalog")
    wsub = workloads.add_subparsers(dest="workloads_command", required=True)
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--workload-dir", default=None,
                        help="catalog directory (beats REPRO_WORKLOAD_DIR)")
    ingest = wsub.add_parser(
        "ingest", parents=[common],
        help="import an external trace file into the catalog")
    ingest.add_argument("file", help="trace file (text or CSV, optionally "
                                     "gzip-compressed)")
    ingest.add_argument("--name", default=None,
                        help="catalog name (default: the file stem)")
    ingest.add_argument("--format", choices=("text", "csv"), default=None,
                        help="input format (default: inferred from the "
                             "file name)")
    wsub.add_parser("list", parents=[common],
                    help="list every catalogued workload")
    verify = wsub.add_parser(
        "verify", parents=[common],
        help="check catalog entry integrity (frames, digests, counts)")
    verify.add_argument("names", nargs="*",
                        help="workloads to verify (default: all)")
    drop = wsub.add_parser("drop", parents=[common],
                           help="remove one catalogued workload")
    drop.add_argument("name", help="workload to remove")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "fuzz":
        # Forward everything after `fuzz` verbatim to the fuzzer CLI.
        return _cmd_fuzz(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "examples":
        return _cmd_examples(args)
    if args.command == "workloads":
        return _cmd_workloads(args)
    raise SystemExit(f"unknown command {args.command!r}")

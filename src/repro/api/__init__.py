"""repro.api — the declarative public experiment surface.

The stable way to run this reproduction's sweeps:

* :class:`ExperimentSpec` — a frozen, validated, fingerprint-stable
  description of *what* to compute (mixes × mechanisms × N_RH ×
  BreakHammer × engine/seed/scale);
* :class:`Session` — owns executor + run-cache lifecycle for one spec and
  returns :class:`RunHandle` futures; figures subscribe to handles and
  aggregate as results stream in;
* :func:`load_spec` + ``python -m repro.api run <spec.toml|json>`` — the
  file/CLI form of the same thing (fuzz campaigns and the bundled
  examples share the CLI via ``python -m repro.api fuzz`` / ``examples``);
* :func:`resolve_execution` — the one documented resolution point for the
  ``REPRO_ENGINE`` / ``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` environment
  variables (explicit spec/session values always win).

The legacy :class:`repro.analysis.experiments.ExperimentRunner` facade
remains as a deprecation shim driving the same engine; results are
bit-identical between the two surfaces.
"""

from repro.analysis.executor import RunHandle, SweepPlan, iter_completed
from repro.api.session import (
    DEFAULT_ENGINE,
    ExecutionPlan,
    Session,
    resolve_engine,
    resolve_execution,
)
from repro.api.spec import (
    ExperimentSpec,
    RunPoint,
    SpecFile,
    load_spec,
    spec_from_data,
)

__all__ = [
    "DEFAULT_ENGINE",
    "ExecutionPlan",
    "ExperimentSpec",
    "RunHandle",
    "RunPoint",
    "Session",
    "SpecFile",
    "SweepPlan",
    "iter_completed",
    "load_spec",
    "resolve_engine",
    "resolve_execution",
    "spec_from_data",
]

"""DRAM device geometry and timing configuration.

Two presets are provided, mirroring the configurations used by the paper:

* :func:`DeviceConfig.ddr5_4800` — the paper's evaluated system (Table 1):
  DDR5, one channel, two ranks, eight bank groups with two banks each
  (32 banks total), 64K rows per bank.
* :func:`DeviceConfig.ddr4_3200` — a DDR4-style configuration used by some
  unit tests and sensitivity studies.

All timing parameters are stored in nanoseconds and converted to controller
clock cycles by :class:`TimingParameters.in_cycles`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class TimingParameters:
    """DRAM timing parameters, in nanoseconds.

    Only the constraints that influence the BreakHammer study are modelled.
    The values are representative of DDR5-4800 / DDR4-3200 datasheets rather
    than exact copies of any vendor part.
    """

    tck: float = 0.416  # clock period
    trcd: float = 16.0  # ACT -> RD/WR on same bank
    trp: float = 16.0  # PRE -> ACT on same bank
    tras: float = 32.0  # ACT -> PRE on same bank
    trc: float = 48.0  # ACT -> ACT on same bank
    trrd_s: float = 2.5  # ACT -> ACT different bank group
    trrd_l: float = 5.0  # ACT -> ACT same bank group
    tfaw: float = 13.33  # four-activate window per rank
    tccd_s: float = 2.5  # RD -> RD different bank group
    tccd_l: float = 5.0  # RD -> RD same bank group
    twr: float = 30.0  # write recovery (WR -> PRE)
    twtr: float = 10.0  # WR -> RD turnaround
    trtp: float = 7.5  # RD -> PRE
    trfc: float = 295.0  # refresh cycle time (REF blocks the rank)
    trefi: float = 3900.0  # refresh interval (DDR5: 3.9 us)
    trfm: float = 195.0  # RFM command blocking time
    tvrr: float = 60.0  # one victim-row refresh (preventive refresh) per row
    tbl: float = 3.33  # data burst length on the bus (BL16 at 4800 MT/s)
    refresh_window_ms: float = 32.0  # tREFW: every row refreshed once per window

    def compressed(self, factor: float) -> "TimingParameters":
        """Return timings with every service time divided by ``factor``.

        Used by the scaled simulation profile: compressing DRAM service
        times lets a short Python run contain as many row activations (and
        therefore as many mitigation triggers) as a much longer run would,
        while keeping every *relative* relationship between timing
        parameters intact.  ``tck`` (the clock) is not changed.
        """

        if factor <= 0:
            raise ValueError("compression factor must be positive")
        return TimingParameters(
            tck=self.tck,
            trcd=self.trcd / factor,
            trp=self.trp / factor,
            tras=self.tras / factor,
            trc=self.trc / factor,
            trrd_s=self.trrd_s / factor,
            trrd_l=self.trrd_l / factor,
            tfaw=self.tfaw / factor,
            tccd_s=self.tccd_s / factor,
            tccd_l=self.tccd_l / factor,
            twr=self.twr / factor,
            twtr=self.twtr / factor,
            trtp=self.trtp / factor,
            trfc=self.trfc / factor,
            trefi=self.trefi / factor,
            trfm=self.trfm / factor,
            tvrr=self.tvrr / factor,
            tbl=self.tbl / factor,
            refresh_window_ms=self.refresh_window_ms / factor,
        )

    def in_cycles(self) -> "TimingCycles":
        """Convert all parameters to integer controller clock cycles."""

        def cyc(ns: float) -> int:
            return max(1, int(math.ceil(ns / self.tck)))

        return TimingCycles(
            trcd=cyc(self.trcd),
            trp=cyc(self.trp),
            tras=cyc(self.tras),
            trc=cyc(self.trc),
            trrd_s=cyc(self.trrd_s),
            trrd_l=cyc(self.trrd_l),
            tfaw=cyc(self.tfaw),
            tccd_s=cyc(self.tccd_s),
            tccd_l=cyc(self.tccd_l),
            twr=cyc(self.twr),
            twtr=cyc(self.twtr),
            trtp=cyc(self.trtp),
            trfc=cyc(self.trfc),
            trefi=cyc(self.trefi),
            trfm=cyc(self.trfm),
            tvrr=cyc(self.tvrr),
            tbl=cyc(self.tbl),
            refresh_window=cyc(self.refresh_window_ms * 1e6),
        )


@dataclass(frozen=True)
class TimingCycles:
    """Timing parameters expressed in integer controller cycles."""

    trcd: int
    trp: int
    tras: int
    trc: int
    trrd_s: int
    trrd_l: int
    tfaw: int
    tccd_s: int
    tccd_l: int
    twr: int
    twtr: int
    trtp: int
    trfc: int
    trefi: int
    trfm: int
    tvrr: int
    tbl: int
    refresh_window: int


@dataclass(frozen=True)
class DeviceConfig:
    """Geometry and timing of the simulated DRAM subsystem.

    The default geometry matches the paper's Table 1: one channel, two ranks,
    eight bank groups per rank, two banks per bank group and 64K rows per
    bank.  ``rows_per_bank`` may be reduced in tests to keep state small; all
    address arithmetic derives from the fields rather than hard-coded shifts.
    """

    name: str = "ddr5_4800"
    channels: int = 1
    ranks: int = 2
    bank_groups: int = 8
    banks_per_group: int = 2
    rows_per_bank: int = 65536
    columns_per_row: int = 1024
    device_width_bits: int = 64
    cacheline_bytes: int = 64
    timings: TimingParameters = field(default_factory=TimingParameters)

    # ------------------------------------------------------------------ #
    # Derived geometry
    # ------------------------------------------------------------------ #
    @property
    def banks_per_rank(self) -> int:
        return self.bank_groups * self.banks_per_group

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks * self.banks_per_rank

    @property
    def row_size_bytes(self) -> int:
        return self.columns_per_row * (self.device_width_bits // 8)

    @property
    def columns_per_cacheline(self) -> int:
        return max(1, self.cacheline_bytes // (self.device_width_bits // 8))

    @property
    def cachelines_per_row(self) -> int:
        return max(1, self.row_size_bytes // self.cacheline_bytes)

    @property
    def capacity_bytes(self) -> int:
        return (
            self.channels
            * self.ranks
            * self.banks_per_rank
            * self.rows_per_bank
            * self.row_size_bytes
        )

    def timing_cycles(self) -> TimingCycles:
        return self.timings.in_cycles()

    def scaled(self, **overrides) -> "DeviceConfig":
        """Return a copy of this configuration with fields replaced.

        Convenience for tests and benchmarks that need smaller geometries.
        """

        return replace(self, **overrides)

    def time_compressed(self, factor: float) -> "DeviceConfig":
        """Return a copy with DRAM service times divided by ``factor``.

        See :meth:`TimingParameters.compressed`; used by the fast simulation
        profile so short runs exhibit enough row activations to exercise
        RowHammer mitigation triggers.
        """

        return replace(self, timings=self.timings.compressed(factor),
                       name=f"{self.name}_x{factor:g}")

    # ------------------------------------------------------------------ #
    # Presets
    # ------------------------------------------------------------------ #
    @classmethod
    def ddr5_4800(cls, **overrides) -> "DeviceConfig":
        """The paper's evaluated DDR5 configuration (Table 1)."""

        cfg = cls()
        return cfg.scaled(**overrides) if overrides else cfg

    @classmethod
    def ddr4_3200(cls, **overrides) -> "DeviceConfig":
        """A DDR4-3200-style configuration (single rank, 16 banks)."""

        timings = TimingParameters(
            tck=0.625,
            trcd=13.75,
            trp=13.75,
            tras=32.0,
            trc=45.75,
            trrd_s=2.5,
            trrd_l=4.9,
            tfaw=21.0,
            tccd_s=2.5,
            tccd_l=5.0,
            twr=15.0,
            twtr=7.5,
            trtp=7.5,
            trfc=350.0,
            trefi=7800.0,
            trfm=350.0,
            tvrr=60.0,
            tbl=2.5,
            refresh_window_ms=64.0,
        )
        cfg = cls(
            name="ddr4_3200",
            channels=1,
            ranks=1,
            bank_groups=4,
            banks_per_group=4,
            rows_per_bank=65536,
            columns_per_row=1024,
            timings=timings,
        )
        return cfg.scaled(**overrides) if overrides else cfg

    @classmethod
    def tiny(cls, **overrides) -> "DeviceConfig":
        """A deliberately small geometry for fast unit tests."""

        cfg = cls(
            name="tiny",
            channels=1,
            ranks=1,
            bank_groups=2,
            banks_per_group=2,
            rows_per_bank=256,
            columns_per_row=64,
        )
        return cfg.scaled(**overrides) if overrides else cfg

    def describe(self) -> Dict[str, object]:
        """Return a dictionary summary (used by the Table 1 benchmark)."""

        return {
            "name": self.name,
            "channels": self.channels,
            "ranks": self.ranks,
            "bank_groups": self.bank_groups,
            "banks_per_group": self.banks_per_group,
            "banks_total": self.total_banks,
            "rows_per_bank": self.rows_per_bank,
            "row_size_bytes": self.row_size_bytes,
            "capacity_bytes": self.capacity_bytes,
            "tck_ns": self.timings.tck,
            "refresh_window_ms": self.timings.refresh_window_ms,
        }

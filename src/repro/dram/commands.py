"""DRAM command vocabulary.

The memory controller communicates with the DRAM device model exclusively
through :class:`Command` objects.  Besides the standard DDR command set
(ACT/PRE/RD/WR/REF), the model includes the commands RowHammer mitigation
mechanisms rely on:

* ``VRR`` — a victim-row (preventive) refresh targeting the neighbours of an
  aggressor row.  Used by PARA, Graphene, Hydra, TWiCe, PRAC back-off
  servicing, and by the in-DRAM TRR window granted by RFM.
* ``RFM`` — the DDR5 Refresh-Management command: gives the DRAM die a time
  window to perform its own preventive maintenance.
* ``MIG`` — a row migration (copy) step used by AQUA's quarantine mechanism.

Commands carry the full DRAM coordinate tuple so that banks can update state
and the energy model can account for them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class CommandType(enum.Enum):
    """Every DRAM command the simulated controller can issue."""

    ACT = "ACT"  # activate a row (open it into the row buffer)
    PRE = "PRE"  # precharge (close) the open row of a bank
    PREA = "PREA"  # precharge all banks of a rank
    RD = "RD"  # read a column burst from the open row
    WR = "WR"  # write a column burst into the open row
    REF = "REF"  # periodic all-bank refresh
    VRR = "VRR"  # victim-row refresh (RowHammer-preventive refresh)
    RFM = "RFM"  # DDR5 refresh management command
    MIG = "MIG"  # row migration step (AQUA quarantine)


# Category flags are assigned once as plain member attributes rather than
# properties: the controller and device models read them on every readiness
# probe, where the former tuple-membership properties dominated the profile.
# ``is_row_command``: ACT/PRE/PREA; ``is_column_command``: RD/WR;
# ``is_maintenance``: commands that preserve data integrity, not serve data.
for _member in CommandType:
    _member.is_row_command = _member.name in ("ACT", "PRE", "PREA")
    _member.is_column_command = _member.name in ("RD", "WR")
    _member.is_maintenance = _member.name in ("REF", "VRR", "RFM", "MIG")
del _member


@dataclass
class Command:
    """A single DRAM command with its target coordinates.

    ``row`` and ``column`` are optional for commands that do not address a
    specific row (e.g. REF, RFM).  ``source_thread`` carries the hardware
    thread responsible for the command when it is known; the mitigation
    mechanisms and BreakHammer use it for activation accounting.
    """

    kind: CommandType
    channel: int = 0
    rank: int = 0
    bank_group: int = 0
    bank: int = 0
    row: Optional[int] = None
    column: Optional[int] = None
    source_thread: Optional[int] = None
    metadata: dict = field(default_factory=dict)

    @property
    def bank_id(self) -> int:
        """Flat bank index within the rank (bank_group-major)."""

        return self.bank_group, self.bank  # type: ignore[return-value]

    def same_bank(self, other: "Command") -> bool:
        return (
            self.channel == other.channel
            and self.rank == other.rank
            and self.bank_group == other.bank_group
            and self.bank == other.bank
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        target = ""
        if self.row is not None:
            target = f" row={self.row}"
        if self.column is not None:
            target += f" col={self.column}"
        return (
            f"Command({self.kind.value} ch={self.channel} rk={self.rank} "
            f"bg={self.bank_group} ba={self.bank}{target})"
        )


def activate(channel: int, rank: int, bank_group: int, bank: int, row: int,
             thread: Optional[int] = None) -> Command:
    """Convenience constructor for an ACT command."""

    return Command(
        CommandType.ACT,
        channel=channel,
        rank=rank,
        bank_group=bank_group,
        bank=bank,
        row=row,
        source_thread=thread,
    )


def precharge(channel: int, rank: int, bank_group: int, bank: int) -> Command:
    """Convenience constructor for a PRE command."""

    return Command(
        CommandType.PRE,
        channel=channel,
        rank=rank,
        bank_group=bank_group,
        bank=bank,
    )


def victim_refresh(channel: int, rank: int, bank_group: int, bank: int,
                   row: int) -> Command:
    """Convenience constructor for a preventive (victim-row) refresh."""

    return Command(
        CommandType.VRR,
        channel=channel,
        rank=rank,
        bank_group=bank_group,
        bank=bank,
        row=row,
    )

"""Per-bank DRAM state machine.

A :class:`Bank` tracks the open row, enforces intra-bank timing constraints
(tRCD, tRP, tRAS, tRC, tWR, tRTP), counts row activations, and records the
statistics the rest of the system needs (row-buffer hits/misses/conflicts and
per-command counts).

Inter-bank and rank-level constraints (tRRD, tFAW, refresh blocking) are
enforced by :class:`repro.dram.device.Rank`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.dram.commands import Command, CommandType
from repro.dram.config import TimingCycles


class BankState(enum.Enum):
    """The row-buffer state of a bank."""

    CLOSED = "closed"
    OPEN = "open"
    BLOCKED = "blocked"  # busy with refresh / RFM / migration


@dataclass
class BankStats:
    """Counters maintained by each bank."""

    activations: int = 0
    precharges: int = 0
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    preventive_refreshes: int = 0
    refreshes: int = 0
    rfm_commands: int = 0
    migrations: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class Bank:
    """One DRAM bank with an open-row state machine and timing bookkeeping."""

    def __init__(self, timing: TimingCycles, rows: int,
                 bank_group: int = 0, bank: int = 0) -> None:
        self.timing = timing
        self.rows = rows
        self.bank_group = bank_group
        self.bank = bank

        self.state = BankState.CLOSED
        self.open_row: Optional[int] = None

        # Earliest cycle at which each command class may next be issued.
        self._next_act = 0
        self._next_pre = 0
        self._next_rdwr = 0
        self._blocked_until = 0

        # Cycle of the last ACT, used for tRAS accounting.
        self._last_act_cycle = -(10 ** 9)

        self.stats = BankStats()
        # Activation count per row since the last time the caller reset it;
        # used by mitigation mechanisms that want per-bank introspection.
        self.row_activation_counts: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Ready checks
    # ------------------------------------------------------------------ #
    def ready(self, kind: CommandType, cycle: int) -> bool:
        """Return ``True`` if ``kind`` respects this bank's timing at ``cycle``."""

        if cycle < self._blocked_until:
            return False
        if kind is CommandType.ACT:
            return self.state is BankState.CLOSED and cycle >= self._next_act
        if kind in (CommandType.PRE, CommandType.PREA):
            return cycle >= self._next_pre
        if kind in (CommandType.RD, CommandType.WR):
            return self.state is BankState.OPEN and cycle >= self._next_rdwr
        if kind in (CommandType.REF, CommandType.RFM, CommandType.VRR,
                    CommandType.MIG):
            # Maintenance commands require the bank to be precharged.
            return self.state is BankState.CLOSED and cycle >= self._next_act
        raise ValueError(f"unknown command type {kind}")

    def earliest_ready_cycle(self, kind: CommandType, cycle: int) -> int:
        """Best-effort estimate of when ``kind`` could be issued."""

        base = max(cycle, self._blocked_until)
        if kind is CommandType.ACT:
            return max(base, self._next_act)
        if kind in (CommandType.PRE, CommandType.PREA):
            return max(base, self._next_pre)
        if kind in (CommandType.RD, CommandType.WR):
            return max(base, self._next_rdwr)
        return max(base, self._next_act)

    # ------------------------------------------------------------------ #
    # Issue
    # ------------------------------------------------------------------ #
    def issue(self, command: Command, cycle: int) -> int:
        """Apply ``command`` to the bank at ``cycle``.

        Returns the cycle at which the command's effect completes (for RD/WR
        this is when the data burst finishes; for maintenance commands it is
        when the bank becomes usable again).  Raises ``RuntimeError`` if the
        command violates bank timing — the controller is expected to check
        :meth:`ready` first.
        """

        if not self.ready(command.kind, cycle):
            raise RuntimeError(
                f"bank timing violation: {command.kind} at cycle {cycle} "
                f"(state={self.state}, blocked_until={self._blocked_until})"
            )
        return self._HANDLERS[command.kind](self, command, cycle)

    # -- row commands --------------------------------------------------- #
    def _issue_act(self, command: Command, cycle: int) -> int:
        if command.row is None:
            raise ValueError("ACT requires a target row")
        t = self.timing
        self.state = BankState.OPEN
        self.open_row = command.row
        self._last_act_cycle = cycle
        self._next_rdwr = cycle + t.trcd
        self._next_pre = cycle + t.tras
        self._next_act = cycle + t.trc
        self.stats.activations += 1
        self.stats.row_misses += 1
        self.row_activation_counts[command.row] = (
            self.row_activation_counts.get(command.row, 0) + 1
        )
        return cycle + t.trcd

    def _issue_pre(self, command: Command, cycle: int) -> int:
        t = self.timing
        self.state = BankState.CLOSED
        self.open_row = None
        self.stats.precharges += 1
        self._next_act = max(self._next_act, cycle + t.trp)
        return cycle + t.trp

    # -- column commands ------------------------------------------------ #
    def _issue_read(self, command: Command, cycle: int) -> int:
        t = self.timing
        self.stats.reads += 1
        self.stats.row_hits += 1
        self._next_rdwr = cycle + t.tccd_l
        # A read constrains the earliest precharge via tRTP.
        self._next_pre = max(self._next_pre, cycle + t.trtp)
        return cycle + t.trcd + t.tbl

    def _issue_write(self, command: Command, cycle: int) -> int:
        t = self.timing
        self.stats.writes += 1
        self.stats.row_hits += 1
        self._next_rdwr = cycle + t.tccd_l
        self._next_pre = max(self._next_pre, cycle + t.twr)
        return cycle + t.trcd + t.tbl

    # -- maintenance ---------------------------------------------------- #
    def _block(self, cycle: int, duration: int) -> int:
        self._blocked_until = max(self._blocked_until, cycle + duration)
        self._next_act = max(self._next_act, self._blocked_until)
        self._next_pre = max(self._next_pre, self._blocked_until)
        self._next_rdwr = max(self._next_rdwr, self._blocked_until)
        return self._blocked_until

    def _issue_refresh(self, command: Command, cycle: int) -> int:
        self.stats.refreshes += 1
        return self._block(cycle, self.timing.trfc)

    def _issue_victim_refresh(self, command: Command, cycle: int) -> int:
        self.stats.preventive_refreshes += 1
        return self._block(cycle, self.timing.tvrr)

    def _issue_rfm(self, command: Command, cycle: int) -> int:
        self.stats.rfm_commands += 1
        return self._block(cycle, self.timing.trfm)

    def _issue_migration(self, command: Command, cycle: int) -> int:
        self.stats.migrations += 1
        # A migration copies a row: model it as an ACT + column traffic + PRE
        # on both source and destination, i.e. roughly two row cycles.
        return self._block(cycle, 2 * self.timing.trc + self.timing.tvrr)

    # Per-kind dispatch, resolved once at class-definition time (a literal
    # dict built per issue() call showed up in the profile).
    _HANDLERS = {
        CommandType.ACT: _issue_act,
        CommandType.PRE: _issue_pre,
        CommandType.PREA: _issue_pre,
        CommandType.RD: _issue_read,
        CommandType.WR: _issue_write,
        CommandType.REF: _issue_refresh,
        CommandType.VRR: _issue_victim_refresh,
        CommandType.RFM: _issue_rfm,
        CommandType.MIG: _issue_migration,
    }

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    def is_open(self, row: Optional[int] = None) -> bool:
        if self.state is not BankState.OPEN:
            return False
        return True if row is None else self.open_row == row

    def record_conflict(self) -> None:
        """Called by the controller when an access needs PRE+ACT (conflict)."""

        self.stats.row_conflicts += 1

    def reset_row_activation_counts(self) -> None:
        self.row_activation_counts.clear()

    def busy_until(self) -> int:
        return self._blocked_until

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Bank(bg={self.bank_group}, ba={self.bank}, state={self.state.value}, "
            f"open_row={self.open_row})"
        )

"""Rank and channel composition of DRAM banks.

:class:`Rank` owns the banks of one rank and enforces rank-level constraints:
activate-to-activate spacing (tRRD_S / tRRD_L), the rolling four-activate
window (tFAW), and all-bank blocking during REF.  :class:`Channel` owns the
ranks behind one memory channel and models data-bus occupancy so that two
column commands cannot overlap their bursts.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.dram.bank import Bank
from repro.dram.commands import Command, CommandType
from repro.dram.config import DeviceConfig, TimingCycles


class Rank:
    """One DRAM rank: a grid of banks plus rank-wide timing state."""

    def __init__(self, config: DeviceConfig, rank_index: int = 0) -> None:
        self.config = config
        self.rank_index = rank_index
        self.timing: TimingCycles = config.timing_cycles()
        self.banks: List[List[Bank]] = [
            [
                Bank(self.timing, config.rows_per_bank, bank_group=bg, bank=ba)
                for ba in range(config.banks_per_group)
            ]
            for bg in range(config.bank_groups)
        ]
        # Recent activation timestamps for the tFAW window.
        self._act_history: Deque[int] = deque(maxlen=4)
        self._last_act_cycle: int = -(10 ** 9)
        self._last_act_bank_group: Optional[int] = None
        self._blocked_until: int = 0  # REF blocks the whole rank

        self.total_activations = 0
        self.total_refreshes = 0
        self.total_rfm = 0
        self.total_preventive_refreshes = 0

    # ------------------------------------------------------------------ #
    def bank(self, bank_group: int, bank: int) -> Bank:
        return self.banks[bank_group][bank]

    def iter_banks(self) -> Iterable[Bank]:
        for group in self.banks:
            yield from group

    # ------------------------------------------------------------------ #
    def _act_allowed_cycle(self, bank_group: int, cycle: int) -> int:
        """Earliest cycle an ACT to ``bank_group`` may be issued rank-wide."""

        earliest = max(cycle, self._blocked_until)
        if self._last_act_cycle >= 0:
            spacing = (
                self.timing.trrd_l
                if bank_group == self._last_act_bank_group
                else self.timing.trrd_s
            )
            earliest = max(earliest, self._last_act_cycle + spacing)
        if len(self._act_history) == self._act_history.maxlen:
            earliest = max(earliest, self._act_history[0] + self.timing.tfaw)
        return earliest

    def ready(self, command: Command, cycle: int) -> bool:
        """Check rank-level and bank-level constraints for ``command``."""

        return self.kind_ready(command.kind, command.bank_group, command.bank,
                               cycle)

    def kind_ready(self, kind: CommandType, bank_group: int, bank: int,
                   cycle: int) -> bool:
        """The single implementation of the rank+bank readiness rules.

        Taking coordinates instead of a :class:`Command` lets the
        controller's hot path probe readiness without building a command
        object; :meth:`ready` is a thin wrapper.
        """

        if cycle < self._blocked_until and kind is not CommandType.REF:
            return False
        if kind is CommandType.ACT:
            if self._act_allowed_cycle(bank_group, cycle) > cycle:
                return False
        if kind is CommandType.REF:
            # All banks must be precharged and idle.
            return all(
                b.ready(CommandType.REF, cycle) for b in self.iter_banks()
            )
        if kind is CommandType.PREA:
            return all(
                b.ready(CommandType.PRE, cycle) or not b.is_open()
                for b in self.iter_banks()
            )
        return self.banks[bank_group][bank].ready(kind, cycle)

    def kind_earliest_ready_cycle(self, kind: CommandType, bank_group: int,
                                  bank: int, cycle: int) -> int:
        """Earliest cycle ``kind`` can satisfy rank+bank *timing* limits.

        Purely a timing estimate: state conditions (a bank that must first be
        precharged, say) are the caller's responsibility.  Used by the
        fast-forward engine to bound how far the simulation may jump while
        the channel is timing-blocked.
        """

        if kind is CommandType.REF:
            return max(
                b.earliest_ready_cycle(CommandType.REF, cycle)
                for b in self.iter_banks()
            )
        earliest = max(
            self.banks[bank_group][bank].earliest_ready_cycle(kind, cycle),
            self._blocked_until,
        )
        if kind is CommandType.ACT:
            earliest = max(
                earliest, self._act_allowed_cycle(bank_group, cycle)
            )
        return earliest

    def issue(self, command: Command, cycle: int) -> int:
        """Issue ``command`` and return its completion cycle."""

        if command.kind is CommandType.REF:
            return self._issue_refresh(command, cycle)
        if command.kind is CommandType.PREA:
            return self._issue_precharge_all(command, cycle)

        bank = self.bank(command.bank_group, command.bank)
        done = bank.issue(command, cycle)

        if command.kind is CommandType.ACT:
            self.total_activations += 1
            self._act_history.append(cycle)
            self._last_act_cycle = cycle
            self._last_act_bank_group = command.bank_group
        elif command.kind is CommandType.VRR:
            self.total_preventive_refreshes += 1
        elif command.kind is CommandType.RFM:
            self.total_rfm += 1
        return done

    def _issue_refresh(self, command: Command, cycle: int) -> int:
        done = cycle
        for bank in self.iter_banks():
            done = max(done, bank.issue(
                Command(CommandType.REF, channel=command.channel,
                        rank=self.rank_index, bank_group=bank.bank_group,
                        bank=bank.bank),
                cycle,
            ))
        self._blocked_until = max(self._blocked_until, done)
        self.total_refreshes += 1
        return done

    def _issue_precharge_all(self, command: Command, cycle: int) -> int:
        done = cycle
        for bank in self.iter_banks():
            if bank.is_open():
                done = max(done, bank.issue(
                    Command(CommandType.PRE, channel=command.channel,
                            rank=self.rank_index, bank_group=bank.bank_group,
                            bank=bank.bank),
                    cycle,
                ))
        return done

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        agg: Dict[str, int] = {}
        for bank in self.iter_banks():
            for key, value in bank.stats.as_dict().items():
                agg[key] = agg.get(key, 0) + value
        agg["rank_refreshes"] = self.total_refreshes
        return agg


class Channel:
    """One memory channel: a set of ranks sharing command and data buses."""

    def __init__(self, config: DeviceConfig, channel_index: int = 0) -> None:
        self.config = config
        self.channel_index = channel_index
        self.timing = config.timing_cycles()
        self.ranks: List[Rank] = [
            Rank(config, rank_index=r) for r in range(config.ranks)
        ]
        self._data_bus_free_at = 0
        self.commands_issued: Dict[CommandType, int] = {
            kind: 0 for kind in CommandType
        }
        # Monotonic issue counter: any issued command may change open rows,
        # timing floors, or scheduler cap state, so consumers that cache
        # scan results (the batch engine's predictions, the controller's
        # failed-scan memo) key on this serial to prove nothing changed.
        self.issue_serial = 0
        # Optional issue journal (set by the batch engine): records
        # ``(kind, rank, bank_group, bank)`` per issued command so array
        # mirrors can re-read exactly the state each command touched.
        self.journal: Optional[List[Tuple]] = None

    # ------------------------------------------------------------------ #
    def rank(self, index: int) -> Rank:
        return self.ranks[index]

    def bank(self, rank: int, bank_group: int, bank: int) -> Bank:
        return self.ranks[rank].bank(bank_group, bank)

    def iter_banks(self) -> Iterable[Bank]:
        for rank in self.ranks:
            yield from rank.iter_banks()

    # ------------------------------------------------------------------ #
    def ready(self, command: Command, cycle: int) -> bool:
        return self.kind_ready(command.kind, command.rank, command.bank_group,
                               command.bank, cycle)

    # ------------------------------------------------------------------ #
    # Command-free hot-path variants.  The controller probes readiness for
    # many candidate requests per cycle; these avoid building a Command
    # object for probes that fail, and delegate to the rank so the timing
    # rules have exactly one implementation per level.
    # ------------------------------------------------------------------ #
    def kind_ready(self, kind: CommandType, rank_index: int, bank_group: int,
                   bank: int, cycle: int) -> bool:
        """Equivalent of :meth:`ready` from a command's coordinates."""

        if kind.is_column_command and cycle < self._data_bus_free_at:
            return False
        return self.ranks[rank_index].kind_ready(kind, bank_group, bank,
                                                 cycle)

    def kind_earliest_ready_cycle(self, kind: CommandType, rank_index: int,
                                  bank_group: int, bank: int,
                                  cycle: int) -> int:
        """Earliest cycle ``kind`` can satisfy channel-wide timing limits.

        Composes the rank/bank estimate with data-bus occupancy; purely a
        timing estimate — state conditions (open rows) are the caller's
        responsibility.
        """

        earliest = self.ranks[rank_index].kind_earliest_ready_cycle(
            kind, bank_group, bank, cycle
        )
        if kind.is_column_command:
            earliest = max(earliest, self._data_bus_free_at)
        return earliest

    def issue(self, command: Command, cycle: int) -> int:
        if not self.ready(command, cycle):
            raise RuntimeError(
                f"channel not ready for {command.kind} at cycle {cycle}"
            )
        done = self.ranks[command.rank].issue(command, cycle)
        if command.kind.is_column_command:
            self._data_bus_free_at = cycle + self.timing.tbl
        self.commands_issued[command.kind] += 1
        self.issue_serial += 1
        if self.journal is not None:
            self.journal.append(
                (command.kind, command.rank, command.bank_group, command.bank)
            )
        return done

    # ------------------------------------------------------------------ #
    def total_activations(self) -> int:
        return sum(rank.total_activations for rank in self.ranks)

    def stats(self) -> Dict[str, int]:
        agg: Dict[str, int] = {}
        for rank in self.ranks:
            for key, value in rank.stats().items():
                agg[key] = agg.get(key, 0) + value
        agg["commands"] = {k.value: v for k, v in self.commands_issued.items()}
        return agg

"""Per-command DRAM energy model.

The paper reports DRAM energy normalised to a no-mitigation baseline
(Fig. 12).  The dominant effect is the extra ACT/PRE/VRR/RFM/migration
traffic that mitigation mechanisms generate, so an energy model that charges
a fixed energy per command plus a background/static term captures the trend.

Energy values are loosely derived from DDR5 IDD figures; they are expressed
in nanojoules per command and milliwatts of background power so that reports
come out in millijoules for typical simulation lengths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.dram.commands import CommandType
from repro.dram.config import DeviceConfig


@dataclass(frozen=True)
class EnergyParameters:
    """Energy cost per DRAM command, in nanojoules, plus background power."""

    act_pre_nj: float = 2.0  # one ACT/PRE pair
    read_nj: float = 1.2  # one RD burst
    write_nj: float = 1.3  # one WR burst
    refresh_nj: float = 30.0  # one all-bank REF (per rank)
    vrr_nj: float = 4.0  # one victim-row (preventive) refresh
    rfm_nj: float = 20.0  # one RFM window
    migration_nj: float = 9.0  # one AQUA row migration
    background_mw: float = 80.0  # static + standby power per rank


@dataclass
class EnergyReport:
    """Energy broken down by source, in millijoules."""

    activation_mj: float = 0.0
    read_mj: float = 0.0
    write_mj: float = 0.0
    refresh_mj: float = 0.0
    preventive_mj: float = 0.0
    rfm_mj: float = 0.0
    migration_mj: float = 0.0
    background_mj: float = 0.0

    @property
    def total_mj(self) -> float:
        return (
            self.activation_mj
            + self.read_mj
            + self.write_mj
            + self.refresh_mj
            + self.preventive_mj
            + self.rfm_mj
            + self.migration_mj
            + self.background_mj
        )

    @property
    def maintenance_mj(self) -> float:
        """Energy attributable to RowHammer-preventive work."""

        return self.preventive_mj + self.rfm_mj + self.migration_mj

    def as_dict(self) -> Dict[str, float]:
        data = dict(self.__dict__)
        data["total_mj"] = self.total_mj
        data["maintenance_mj"] = self.maintenance_mj
        return data


class EnergyModel:
    """Accumulates DRAM energy from command counts and elapsed time."""

    def __init__(self, config: DeviceConfig,
                 parameters: EnergyParameters | None = None) -> None:
        self.config = config
        self.parameters = parameters or EnergyParameters()
        self.command_counts: Dict[CommandType, int] = {
            kind: 0 for kind in CommandType
        }

    def record(self, kind: CommandType, count: int = 1) -> None:
        """Record ``count`` commands of type ``kind``."""

        self.command_counts[kind] = self.command_counts.get(kind, 0) + count

    def record_counts(self, counts: Dict[CommandType, int]) -> None:
        for kind, count in counts.items():
            self.record(kind, count)

    def report(self, elapsed_cycles: int) -> EnergyReport:
        """Compute the energy report for a run of ``elapsed_cycles`` cycles."""

        p = self.parameters
        nj_to_mj = 1e-6
        counts = self.command_counts
        elapsed_ns = elapsed_cycles * self.config.timings.tck
        background_mj = (
            p.background_mw * 1e-3  # W
            * elapsed_ns * 1e-9  # s
            * self.config.ranks
            * 1e3  # J -> mJ
        )
        return EnergyReport(
            activation_mj=counts[CommandType.ACT] * p.act_pre_nj * nj_to_mj,
            read_mj=counts[CommandType.RD] * p.read_nj * nj_to_mj,
            write_mj=counts[CommandType.WR] * p.write_nj * nj_to_mj,
            refresh_mj=counts[CommandType.REF] * p.refresh_nj * nj_to_mj,
            preventive_mj=counts[CommandType.VRR] * p.vrr_nj * nj_to_mj,
            rfm_mj=counts[CommandType.RFM] * p.rfm_nj * nj_to_mj,
            migration_mj=counts[CommandType.MIG] * p.migration_nj * nj_to_mj,
            background_mj=background_mj,
        )

    def report_since(self, baseline_counts: Dict[CommandType, int],
                     elapsed_cycles: int) -> EnergyReport:
        """Energy report for the interval since ``baseline_counts``.

        ``baseline_counts`` is a snapshot of :attr:`command_counts` taken at
        the start of the interval (e.g. the warmup boundary);
        ``elapsed_cycles`` is the interval's length, used for the background
        term.
        """

        window = EnergyModel(self.config, self.parameters)
        for kind, count in self.command_counts.items():
            window.command_counts[kind] = count - baseline_counts.get(kind, 0)
        return window.report(elapsed_cycles)

    def reset(self) -> None:
        for kind in self.command_counts:
            self.command_counts[kind] = 0

"""DRAM device substrate.

This package models a DDR5-style DRAM memory system at command granularity:

* :mod:`repro.dram.config` — device geometry and timing parameters,
* :mod:`repro.dram.commands` — the DRAM command vocabulary,
* :mod:`repro.dram.timing` — timing-constraint bookkeeping,
* :mod:`repro.dram.bank` — per-bank row state machines,
* :mod:`repro.dram.device` — ranks/channels composed of banks,
* :mod:`repro.dram.refresh` — periodic refresh and refresh-management state,
* :mod:`repro.dram.address` — physical-address to DRAM-coordinate mapping,
* :mod:`repro.dram.energy` — a per-command DRAM energy model.

The model is intentionally simpler than a full JEDEC implementation, but it
preserves the properties the BreakHammer study depends on: row activations are
explicit and countable, preventive refreshes and RFM commands block banks for
realistic durations, and every command consumes energy.
"""

from repro.dram.address import AddressMapper, DramAddress, MappingScheme
from repro.dram.bank import Bank, BankState
from repro.dram.commands import Command, CommandType
from repro.dram.config import DeviceConfig, TimingParameters
from repro.dram.device import Channel, Rank
from repro.dram.energy import EnergyModel, EnergyReport
from repro.dram.refresh import RefreshManager
from repro.dram.timing import TimingChecker

__all__ = [
    "AddressMapper",
    "Bank",
    "BankState",
    "Channel",
    "Command",
    "CommandType",
    "DeviceConfig",
    "DramAddress",
    "EnergyModel",
    "EnergyReport",
    "MappingScheme",
    "Rank",
    "RefreshManager",
    "TimingChecker",
    "TimingParameters",
]

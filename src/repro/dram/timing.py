"""Stand-alone timing-constraint checking utilities.

The bank and rank models enforce timing internally; :class:`TimingChecker`
provides an independent, declarative view of the same constraints that the
test suite uses to cross-check the device model, and that the controller can
query to estimate when a command might become issuable without mutating any
device state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dram.commands import CommandType
from repro.dram.config import DeviceConfig, TimingCycles


@dataclass(frozen=True)
class TimingRule:
    """A minimum-separation rule between two commands.

    ``scope`` is one of ``"bank"``, ``"bank_group"``, ``"rank"``: the rule
    applies when the previous and next commands share that scope.
    """

    previous: CommandType
    following: CommandType
    minimum_cycles: int
    scope: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.previous.value} -> {self.following.value} >= "
            f"{self.minimum_cycles} cycles ({self.scope})"
        )


def build_rules(timing: TimingCycles) -> List[TimingRule]:
    """Construct the declarative rule list for a timing configuration."""

    return [
        TimingRule(CommandType.ACT, CommandType.RD, timing.trcd, "bank"),
        TimingRule(CommandType.ACT, CommandType.WR, timing.trcd, "bank"),
        TimingRule(CommandType.ACT, CommandType.PRE, timing.tras, "bank"),
        TimingRule(CommandType.ACT, CommandType.ACT, timing.trc, "bank"),
        TimingRule(CommandType.PRE, CommandType.ACT, timing.trp, "bank"),
        TimingRule(CommandType.RD, CommandType.PRE, timing.trtp, "bank"),
        TimingRule(CommandType.WR, CommandType.PRE, timing.twr, "bank"),
        TimingRule(CommandType.RD, CommandType.RD, timing.tccd_l, "bank"),
        TimingRule(CommandType.WR, CommandType.WR, timing.tccd_l, "bank"),
        TimingRule(CommandType.WR, CommandType.RD, timing.twtr, "bank"),
        TimingRule(CommandType.ACT, CommandType.ACT, timing.trrd_l, "bank_group"),
        TimingRule(CommandType.ACT, CommandType.ACT, timing.trrd_s, "rank"),
    ]


class TimingChecker:
    """Validates a command trace against the declarative timing rules.

    The checker records every issued command with its coordinates and cycle,
    and reports any rule violation.  It is O(history) per check and therefore
    intended for tests and debugging, not for the hot simulation path.
    """

    def __init__(self, config: DeviceConfig) -> None:
        self.config = config
        self.timing = config.timing_cycles()
        self.rules = build_rules(self.timing)
        # (cycle, kind, rank, bank_group, bank)
        self.history: List[Tuple[int, CommandType, int, int, int]] = []
        self.violations: List[str] = []

    def record(self, kind: CommandType, cycle: int, rank: int = 0,
               bank_group: int = 0, bank: int = 0) -> None:
        """Record a command and check it against all applicable rules."""

        for prev_cycle, prev_kind, prev_rank, prev_bg, prev_bank in reversed(
            self.history
        ):
            if cycle - prev_cycle > self.timing.trc * 4:
                break  # older history cannot violate any modelled rule
            for rule in self.rules:
                if rule.previous is not prev_kind or rule.following is not kind:
                    continue
                if not self._in_scope(rule.scope, (prev_rank, prev_bg, prev_bank),
                                      (rank, bank_group, bank)):
                    continue
                if cycle - prev_cycle < rule.minimum_cycles:
                    self.violations.append(
                        f"{rule}: got {cycle - prev_cycle} cycles "
                        f"(prev at {prev_cycle}, next at {cycle})"
                    )
        self.history.append((cycle, kind, rank, bank_group, bank))

    @staticmethod
    def _in_scope(scope: str, prev: Tuple[int, int, int],
                  cur: Tuple[int, int, int]) -> bool:
        if scope == "rank":
            return prev[0] == cur[0]
        if scope == "bank_group":
            return prev[0] == cur[0] and prev[1] == cur[1]
        if scope == "bank":
            return prev == cur
        raise ValueError(f"unknown scope {scope}")

    @property
    def ok(self) -> bool:
        return not self.violations

    def four_activate_windows(self) -> Dict[int, int]:
        """Return, per rank, the worst-case number of ACTs in any tFAW window."""

        worst: Dict[int, int] = {}
        acts_by_rank: Dict[int, List[int]] = {}
        for cycle, kind, rank, _, _ in self.history:
            if kind is CommandType.ACT:
                acts_by_rank.setdefault(rank, []).append(cycle)
        for rank, cycles in acts_by_rank.items():
            cycles.sort()
            best = 0
            start = 0
            for end in range(len(cycles)):
                while cycles[end] - cycles[start] >= self.timing.tfaw:
                    start += 1
                best = max(best, end - start + 1)
            worst[rank] = best
        return worst

"""Periodic refresh scheduling.

The memory controller must issue one all-bank REF per rank every tREFI so the
whole device is refreshed once per refresh window (tREFW).  RowHammer
mitigations add *extra* maintenance traffic on top of this baseline;
:class:`RefreshManager` provides the baseline.

The manager purposefully lives outside the controller so tests can drive it
in isolation, and so alternative refresh policies (e.g. per-bank refresh) can
be swapped in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.dram.commands import Command, CommandType
from repro.dram.config import DeviceConfig


@dataclass
class RefreshState:
    """Book-keeping for one rank's periodic refresh."""

    rank: int
    next_refresh_cycle: int
    pending: bool = False
    issued_count: int = 0
    postponed: int = 0


class RefreshManager:
    """Generates REF commands for each rank every tREFI cycles.

    The controller calls :meth:`tick` every cycle; when a refresh becomes due
    the manager marks it pending, and the controller issues it as soon as the
    rank can accept it (all banks precharged).  The manager tracks how many
    refreshes were postponed past their nominal deadline, which the test
    suite uses to verify that refresh starvation cannot happen.
    """

    def __init__(self, config: DeviceConfig, channel: int = 0) -> None:
        self.config = config
        self.channel = channel
        self.timing = config.timing_cycles()
        self.states: List[RefreshState] = [
            RefreshState(rank=r, next_refresh_cycle=self.timing.trefi)
            for r in range(config.ranks)
        ]
        # Maximum number of tREFI intervals a refresh may be deferred
        # (JEDEC allows postponing up to 4 refresh commands).
        self.max_postpone = 4

    def tick(self, cycle: int) -> None:
        """Advance refresh deadlines; mark refreshes pending when due."""

        for state in self.states:
            if not state.pending and cycle >= state.next_refresh_cycle:
                state.pending = True

    def pending_refresh(self, cycle: int) -> Optional[Command]:
        """Return the most urgent pending REF command, if any."""

        best: Optional[RefreshState] = None
        for state in self.states:
            if state.pending:
                if best is None or state.next_refresh_cycle < best.next_refresh_cycle:
                    best = state
        if best is None:
            return None
        return Command(CommandType.REF, channel=self.channel, rank=best.rank)

    def urgency(self, rank: int, cycle: int) -> float:
        """How overdue rank's refresh is, in units of tREFI (0 = not pending)."""

        state = self.states[rank]
        if not state.pending:
            return 0.0
        return max(0.0, (cycle - state.next_refresh_cycle) / self.timing.trefi)

    def must_refresh_now(self, rank: int, cycle: int) -> bool:
        """True when the refresh can no longer be postponed."""

        return self.urgency(rank, cycle) >= self.max_postpone

    def refresh_issued(self, rank: int, cycle: int) -> None:
        """Notify the manager that a REF was issued for ``rank``."""

        state = self.states[rank]
        if cycle > state.next_refresh_cycle:
            state.postponed += 1
        state.pending = False
        state.issued_count += 1
        state.next_refresh_cycle += self.timing.trefi

    # ------------------------------------------------------------------ #
    def total_refreshes(self) -> int:
        return sum(state.issued_count for state in self.states)

    def expected_refreshes(self, cycles: int) -> int:
        """Number of REFs per rank expected for a run of ``cycles`` cycles."""

        return cycles // self.timing.trefi

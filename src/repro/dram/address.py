"""Physical-address to DRAM-coordinate mapping.

The memory controller maps cacheline-aligned physical addresses onto
``(channel, rank, bank_group, bank, row, column)`` tuples.  The paper's
configuration uses the MOP (Minimalist Open-Page) mapping [Kaseridis+,
MICRO'11], which places a small number of consecutive cachelines in the same
row before striping across banks; we also provide the classic
row-interleaved ("RoBaRaCoCh") and bank-interleaved ("open page") schemes for
sensitivity studies and tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property

from repro.dram.config import DeviceConfig


class MappingScheme(enum.Enum):
    """Supported address-interleaving schemes."""

    MOP = "mop"
    ROW_INTERLEAVED = "row_interleaved"
    BANK_INTERLEAVED = "bank_interleaved"


@dataclass(frozen=True)
class DramAddress:
    """A fully decoded DRAM coordinate."""

    channel: int
    rank: int
    bank_group: int
    bank: int
    row: int
    column: int

    # cached_property writes straight into __dict__, which a frozen
    # dataclass permits; both keys sit on scheduler/mitigation hot paths
    # where recomputing the tuple per access dominated the profile.
    @cached_property
    def bank_key(self) -> tuple:
        """Hashable identity of the bank this address maps to."""

        return (self.channel, self.rank, self.bank_group, self.bank)

    @cached_property
    def row_key(self) -> tuple:
        """Hashable identity of the row this address maps to."""

        return (self.channel, self.rank, self.bank_group, self.bank, self.row)


def _split(value: int, size: int) -> tuple:
    """Split ``value`` into ``(value // size, value % size)``."""

    return value // size, value % size


class AddressMapper:
    """Maps cacheline addresses to DRAM coordinates and back."""

    def __init__(self, config: DeviceConfig,
                 scheme: MappingScheme = MappingScheme.MOP,
                 mop_lines: int = 4) -> None:
        self.config = config
        self.scheme = scheme
        # Number of consecutive cachelines kept in the same row before
        # switching banks (MOP parameter).
        self.mop_lines = max(1, mop_lines)
        # Decoded-coordinate memo, keyed by cacheline (every byte address
        # in a line shares one immutable DramAddress): traces loop over a
        # bounded footprint, so the controller decodes the same lines over
        # and over.  Bounded so a streaming workload with an enormous
        # footprint degrades to plain decoding instead of unbounded memory.
        self._decode_cache: dict = {}

    #: Decoded lines retained before the memo resets (~tens of MB worst
    #: case); far above any current trace footprint.
    DECODE_CACHE_LIMIT = 1 << 20

    # ------------------------------------------------------------------ #
    def map(self, address: int) -> DramAddress:
        """Decode a byte address into a DRAM coordinate."""

        line = address // self.config.cacheline_bytes
        cached = self._decode_cache.get(line)
        if cached is not None:
            return cached
        if self.scheme is MappingScheme.MOP:
            coordinate = self._map_mop(line)
        elif self.scheme is MappingScheme.ROW_INTERLEAVED:
            coordinate = self._map_row_interleaved(line)
        else:
            coordinate = self._map_bank_interleaved(line)
        if len(self._decode_cache) >= self.DECODE_CACHE_LIMIT:
            self._decode_cache.clear()
        self._decode_cache[line] = coordinate
        return coordinate

    def reverse(self, coordinate: DramAddress) -> int:
        """Re-encode a coordinate into a representative byte address.

        ``map(reverse(x)) == x`` for every valid coordinate, which the test
        suite uses to verify that the mapping is a bijection.  Out-of-range
        rows/columns are wrapped into the device geometry.
        """

        cfg = self.config
        coordinate = DramAddress(
            channel=coordinate.channel % cfg.channels,
            rank=coordinate.rank % cfg.ranks,
            bank_group=coordinate.bank_group % cfg.bank_groups,
            bank=coordinate.bank % cfg.banks_per_group,
            row=coordinate.row % cfg.rows_per_bank,
            column=coordinate.column % cfg.cachelines_per_row,
        )
        if self.scheme is MappingScheme.MOP:
            lines_per_row = cfg.cachelines_per_row
            blocks_per_row = lines_per_row // self.mop_lines
            block_in_row, line_in_block = _split(coordinate.column, 1)[0], 0
            # column stores the cacheline offset within the row directly.
            block_in_row = coordinate.column // self.mop_lines
            line_in_block = coordinate.column % self.mop_lines
            bank_linear = (
                (coordinate.rank * cfg.bank_groups + coordinate.bank_group)
                * cfg.banks_per_group
                + coordinate.bank
            )
            banks = cfg.ranks * cfg.banks_per_rank
            line = (
                (
                    (coordinate.row * blocks_per_row + block_in_row) * banks
                    + bank_linear
                )
                * self.mop_lines
                + line_in_block
            ) * cfg.channels + coordinate.channel
            return line * cfg.cacheline_bytes
        if self.scheme is MappingScheme.ROW_INTERLEAVED:
            lines_per_row = cfg.cachelines_per_row
            bank_linear = (
                (coordinate.rank * cfg.bank_groups + coordinate.bank_group)
                * cfg.banks_per_group
                + coordinate.bank
            )
            banks = cfg.ranks * cfg.banks_per_rank
            line = (
                (coordinate.row * banks + bank_linear) * lines_per_row
                + coordinate.column
            ) * cfg.channels + coordinate.channel
            return line * cfg.cacheline_bytes
        # bank interleaved
        lines_per_row = cfg.cachelines_per_row
        banks = cfg.ranks * cfg.banks_per_rank
        bank_linear = (
            (coordinate.rank * cfg.bank_groups + coordinate.bank_group)
            * cfg.banks_per_group
            + coordinate.bank
        )
        line = (
            (coordinate.row * lines_per_row + coordinate.column) * banks
            + bank_linear
        ) * cfg.channels + coordinate.channel
        return line * cfg.cacheline_bytes

    # ------------------------------------------------------------------ #
    def _decompose_bank(self, bank_linear: int) -> tuple:
        cfg = self.config
        rank, rest = _split(bank_linear, cfg.banks_per_rank)
        bank_group, bank = _split(rest, cfg.banks_per_group)
        return rank % cfg.ranks, bank_group, bank

    def _map_mop(self, line: int) -> DramAddress:
        """MOP: channel | mop-block | bank | row-block | row."""

        cfg = self.config
        rest, channel = _split(line, cfg.channels)
        rest, line_in_block = _split(rest, self.mop_lines)
        banks = cfg.ranks * cfg.banks_per_rank
        rest, bank_linear = _split(rest, banks)
        blocks_per_row = max(1, cfg.cachelines_per_row // self.mop_lines)
        row, block_in_row = _split(rest, blocks_per_row)
        rank, bank_group, bank = self._decompose_bank(bank_linear)
        column = block_in_row * self.mop_lines + line_in_block
        return DramAddress(
            channel=channel,
            rank=rank,
            bank_group=bank_group,
            bank=bank,
            row=row % cfg.rows_per_bank,
            column=column % cfg.cachelines_per_row,
        )

    def _map_row_interleaved(self, line: int) -> DramAddress:
        """Consecutive cachelines fill a row before moving to the next bank."""

        cfg = self.config
        rest, channel = _split(line, cfg.channels)
        rest, column = _split(rest, cfg.cachelines_per_row)
        banks = cfg.ranks * cfg.banks_per_rank
        row, bank_linear = _split(rest, banks)
        rank, bank_group, bank = self._decompose_bank(bank_linear)
        return DramAddress(
            channel=channel,
            rank=rank,
            bank_group=bank_group,
            bank=bank,
            row=row % cfg.rows_per_bank,
            column=column,
        )

    def _map_bank_interleaved(self, line: int) -> DramAddress:
        """Consecutive cachelines stripe across banks (closed-page friendly)."""

        cfg = self.config
        rest, channel = _split(line, cfg.channels)
        banks = cfg.ranks * cfg.banks_per_rank
        rest, bank_linear = _split(rest, banks)
        row, column = _split(rest, cfg.cachelines_per_row)
        rank, bank_group, bank = self._decompose_bank(bank_linear)
        return DramAddress(
            channel=channel,
            rank=rank,
            bank_group=bank_group,
            bank=bank,
            row=row % cfg.rows_per_bank,
            column=column,
        )

    # ------------------------------------------------------------------ #
    # Vectorised row decoding (numpy-backed trace characterisation)
    # ------------------------------------------------------------------ #
    def row_id(self, coordinate: DramAddress) -> int:
        """A packed integer bijective with :attr:`DramAddress.row_key`.

        Two addresses share a ``row_id`` exactly when they share a
        ``row_key``, so counting activations per row id is equivalent to
        counting per row-key tuple — the property the numpy-backed
        :meth:`repro.cpu.trace.Trace.characterize` relies on.
        """

        cfg = self.config
        bank_linear = (
            (coordinate.rank * cfg.bank_groups + coordinate.bank_group)
            * cfg.banks_per_group
            + coordinate.bank
        )
        return (
            (coordinate.channel * cfg.ranks * cfg.banks_per_rank
             + bank_linear) * cfg.rows_per_bank
            + coordinate.row
        )

    def map_row_ids(self, addresses):
        """Decode a numpy array of byte addresses into packed row ids.

        Vectorised equivalent of ``row_id(map(a))`` per element, for all
        three mapping schemes.  Requires numpy (callers gate on
        availability); the result dtype is ``uint64``.
        """

        import numpy as np

        cfg = self.config
        line = np.asarray(addresses, dtype=np.uint64) // cfg.cacheline_bytes
        banks = cfg.ranks * cfg.banks_per_rank
        rest, channel = np.divmod(line, np.uint64(cfg.channels))
        if self.scheme is MappingScheme.MOP:
            rest //= np.uint64(self.mop_lines)
            rest, bank_linear = np.divmod(rest, np.uint64(banks))
            blocks_per_row = max(1, cfg.cachelines_per_row // self.mop_lines)
            row = (rest // np.uint64(blocks_per_row)) \
                % np.uint64(cfg.rows_per_bank)
        elif self.scheme is MappingScheme.ROW_INTERLEAVED:
            rest //= np.uint64(cfg.cachelines_per_row)
            row, bank_linear = np.divmod(rest, np.uint64(banks))
            row %= np.uint64(cfg.rows_per_bank)
        else:  # bank interleaved
            rest, bank_linear = np.divmod(rest, np.uint64(banks))
            row = (rest // np.uint64(cfg.cachelines_per_row)) \
                % np.uint64(cfg.rows_per_bank)
        # _decompose_bank wraps rank into the geometry; bank_linear < banks
        # already, so the linear index matches the scalar decomposition.
        return (
            (channel * np.uint64(banks) + bank_linear)
            * np.uint64(cfg.rows_per_bank)
            + row
        )

    # ------------------------------------------------------------------ #
    def address_for_row(self, channel: int, rank: int, bank_group: int,
                        bank: int, row: int, column: int = 0) -> int:
        """Construct a byte address that maps to the given row.

        Workload generators use this to craft access streams that hammer a
        specific DRAM row regardless of the active mapping scheme.
        """

        return self.reverse(
            DramAddress(channel, rank, bank_group, bank, row, column)
        )

"""Experiment harness and reporting utilities.

This package is the engine room; the stable public surface is
:mod:`repro.api` (declarative :class:`~repro.api.ExperimentSpec` +
futures-based :class:`~repro.api.Session`).  ``ExperimentRunner`` /
``HarnessConfig`` remain as deprecation shims over the same engine.
"""

from repro.analysis.executor import (
    ProcessPoolSweepExecutor,
    RunHandle,
    RunTask,
    SerialSweepExecutor,
    SweepExecutor,
    SweepPlan,
    iter_completed,
    resolve_jobs,
)
from repro.analysis.experiments import (
    FIGURES,
    TABLES,
    ExperimentRunner,
    HarnessConfig,
)
from repro.analysis.runcache import RunCache
from repro.analysis.figures import (
    ComparisonEntry,
    FigureData,
    FigureSeries,
    TableData,
)
from repro.analysis.report import (
    figure_summary,
    render_comparisons,
    render_figure,
    render_table,
)

__all__ = [
    "ComparisonEntry",
    "ExperimentRunner",
    "FIGURES",
    "FigureData",
    "FigureSeries",
    "HarnessConfig",
    "ProcessPoolSweepExecutor",
    "RunCache",
    "RunHandle",
    "RunTask",
    "SerialSweepExecutor",
    "SweepExecutor",
    "SweepPlan",
    "TABLES",
    "TableData",
    "figure_summary",
    "iter_completed",
    "render_comparisons",
    "render_figure",
    "render_table",
    "resolve_jobs",
]

"""Experiment harness and reporting utilities."""

from repro.analysis.executor import (
    ProcessPoolSweepExecutor,
    RunTask,
    SerialSweepExecutor,
    SweepExecutor,
    resolve_jobs,
)
from repro.analysis.experiments import ExperimentRunner, HarnessConfig
from repro.analysis.runcache import RunCache
from repro.analysis.figures import (
    ComparisonEntry,
    FigureData,
    FigureSeries,
    TableData,
)
from repro.analysis.report import (
    figure_summary,
    render_comparisons,
    render_figure,
    render_table,
)

__all__ = [
    "ComparisonEntry",
    "ExperimentRunner",
    "FigureData",
    "FigureSeries",
    "HarnessConfig",
    "ProcessPoolSweepExecutor",
    "RunCache",
    "RunTask",
    "SerialSweepExecutor",
    "SweepExecutor",
    "TableData",
    "figure_summary",
    "render_comparisons",
    "render_figure",
    "render_table",
    "resolve_jobs",
]

"""Persistent on-disk cache of simulation results.

Repeated figure sweeps and benchmark invocations execute the same (mix,
mechanism, N_RH, BreakHammer) grid points over and over.  Within one
process :class:`repro.analysis.experiments.ExperimentRunner` memoises them;
:class:`RunCache` extends that memoisation across *processes and
invocations* by persisting each :class:`repro.sim.stats.RunStatistics` to
disk.

Lifecycle: a :class:`repro.api.Session` owns one cache per spec — the
directory is resolved once, up front, through
:func:`repro.api.session.resolve_execution` (explicit ``cache_dir`` beats
``REPRO_CACHE_DIR``; ``""`` force-disables), and the namespace fingerprint
falls out of the session's :class:`repro.api.ExperimentSpec`, so one spec
always maps to one namespace no matter how (or how parallel) it is
executed.  The legacy ``ExperimentRunner`` path builds the same cache from
``HarnessConfig.cache_dir`` via :meth:`RunCache.from_env`.

Layout and invalidation
-----------------------
Entries live under ``<root>/<fingerprint>/<key-digest>.pkl`` where

* ``<root>`` is the directory named by the ``REPRO_CACHE_DIR`` environment
  variable (or an explicit ``cache_dir``); when neither is set the cache is
  disabled and every lookup misses;
* ``<fingerprint>`` digests the complete harness + system + simulation
  configuration (see :func:`repro.sim.config.config_fingerprint`), so any
  configuration change — scale profile, engine, timings, thresholds —
  automatically lands in a fresh, empty namespace; stale namespaces are
  simply dead directories that can be deleted wholesale;
* ``<key-digest>`` digests the full run key (mix, seed, mechanism, N_RH,
  BreakHammer flag, trace lengths), so distinct grid points can never
  alias.

Writes are atomic (write to a temp file, then ``os.replace``) so parallel
sweep workers and concurrent invocations can share one cache directory
without corrupting entries.  Each entry is framed — a magic tag, the
payload length, and a CRC32 ahead of the pickled statistics — so a
truncated or corrupted file (a torn write on a crashing host, a partially
synced network filesystem, bit rot) is *detected*, treated as a miss, and
unlinked; the caller recomputes and the atomic ``put`` rewrites the entry.
Detection never relies on ``pickle`` happening to raise on mangled input.
"""

from __future__ import annotations

import hashlib
import os
import struct
import tempfile
import zlib
from pathlib import Path
from typing import Optional, Tuple

from repro.sim.stats import RunStatistics

#: Environment variable naming the cache root directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump to invalidate every existing cache entry on format changes.
#: Version 2 introduced the length+CRC entry frame.
CACHE_FORMAT_VERSION = 2

#: Entry frame: magic, CRC32 of the payload, payload length.
_ENTRY_MAGIC = b"RCHE"
_ENTRY_HEADER = struct.Struct("<4sIQ")


def frame_payload(payload: bytes) -> bytes:
    """Wrap a serialised entry in the integrity frame."""

    return _ENTRY_HEADER.pack(_ENTRY_MAGIC, zlib.crc32(payload),
                              len(payload)) + payload


def unframe_payload(data: bytes) -> Optional[bytes]:
    """The framed payload, or ``None`` if truncated/corrupt/foreign."""

    if len(data) < _ENTRY_HEADER.size:
        return None
    magic, crc, length = _ENTRY_HEADER.unpack_from(data)
    payload = data[_ENTRY_HEADER.size:]
    if magic != _ENTRY_MAGIC or len(payload) != length:
        return None
    if zlib.crc32(payload) != crc:
        return None
    return payload


def key_digest(key: Tuple) -> str:
    """A stable filename-safe digest of one run key."""

    payload = repr(key).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:32]


class RunCache:
    """A directory of pickled :class:`RunStatistics`, one file per run key."""

    def __init__(self, root: Path | str, fingerprint: str) -> None:
        self.root = Path(root)
        self.fingerprint = f"v{CACHE_FORMAT_VERSION}-{fingerprint}"
        self.directory = self.root / self.fingerprint
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.write_errors = 0
        self.corrupt_entries = 0

    # ------------------------------------------------------------------ #
    @classmethod
    def from_env(cls, fingerprint: str,
                 cache_dir: Optional[str] = None) -> Optional["RunCache"]:
        """Build a cache from ``cache_dir`` or ``$REPRO_CACHE_DIR``.

        ``cache_dir=None`` defers to the environment variable; an **empty
        string force-disables** the cache even when ``REPRO_CACHE_DIR`` is
        exported (cold-cache measurements and determinism tests rely on
        this).  Returns ``None`` when the cache is disabled.
        """

        root = os.environ.get(CACHE_DIR_ENV) if cache_dir is None else cache_dir
        if not root:
            return None
        return cls(root, fingerprint)

    # ------------------------------------------------------------------ #
    def _path(self, key: Tuple) -> Path:
        return self.directory / f"{key_digest(key)}.pkl"

    def get(self, key: Tuple) -> Optional[RunStatistics]:
        """The cached statistics for ``key``, or ``None`` on a miss.

        A truncated, corrupted, or foreign-format entry is a miss, never an
        error: the frame check (magic + length + CRC32) detects the damage,
        the dead file is unlinked (best effort), and the caller recomputes
        and rewrites it atomically through :meth:`put`.
        """

        path = self._path(key)
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        payload = unframe_payload(data)
        if payload is not None:
            try:
                stats = RunStatistics.from_payload(payload)
            except Exception:
                # The frame was intact but the payload does not decode — a
                # stale pickle format, not damage; still just a miss.
                stats = None
            if stats is not None:
                self.hits += 1
                return stats
        self.misses += 1
        self.corrupt_entries += 1
        try:
            path.unlink()
        except OSError:
            pass
        return None

    def put(self, key: Tuple, stats: RunStatistics) -> None:
        """Persist ``stats`` under ``key`` (atomic, last writer wins).

        The cache is a pure optimisation: an unwritable directory (read
        only, full, permissions changed mid-run) must not abort the sweep,
        so write failures are swallowed and counted in ``write_errors``.
        """

        temp_name = None
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            payload = frame_payload(stats.to_payload())
            fd, temp_name = tempfile.mkstemp(dir=self.directory,
                                             suffix=".tmp")
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(temp_name, self._path(key))
        except OSError:
            if temp_name is not None:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
            self.write_errors += 1
            return
        self.writes += 1

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for p in self.directory.glob("*.pkl"))

    def clear(self) -> int:
        """Delete this configuration's entries; return how many there were."""

        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def stats(self) -> dict:
        """Observable cache counters plus the on-disk entry count.

        ``hits``/``misses``/``corrupt_entries`` are incremented on the
        existing :meth:`get` path and ``writes``/``write_errors`` on
        :meth:`put`; ``entries`` counts the files currently persisted in
        this fingerprint's namespace.  Surfaced by ``Session.stats()`` and
        the experiment service's ``GET /statsz``.
        """

        return {
            "directory": str(self.directory),
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "write_errors": self.write_errors,
            "corrupt_entries": self.corrupt_entries,
        }

"""Persistent on-disk cache of simulation results.

Repeated figure sweeps and benchmark invocations execute the same (mix,
mechanism, N_RH, BreakHammer) grid points over and over.  Within one
process :class:`repro.analysis.experiments.ExperimentRunner` memoises them;
:class:`RunCache` extends that memoisation across *processes and
invocations* by persisting each :class:`repro.sim.stats.RunStatistics` to
disk.

Layout and invalidation
-----------------------
Entries live under ``<root>/<fingerprint>/<key-digest>.pkl`` where

* ``<root>`` is the directory named by the ``REPRO_CACHE_DIR`` environment
  variable (or an explicit ``cache_dir``); when neither is set the cache is
  disabled and every lookup misses;
* ``<fingerprint>`` digests the complete harness + system + simulation
  configuration (see :func:`repro.sim.config.config_fingerprint`), so any
  configuration change — scale profile, engine, timings, thresholds —
  automatically lands in a fresh, empty namespace; stale namespaces are
  simply dead directories that can be deleted wholesale;
* ``<key-digest>`` digests the full run key (mix, seed, mechanism, N_RH,
  BreakHammer flag, trace lengths), so distinct grid points can never
  alias.

Writes are atomic (write to a temp file, then ``os.replace``) so parallel
sweep workers and concurrent invocations can share one cache directory
without corrupting entries; a torn or unreadable entry is treated as a
miss and rewritten.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Optional, Tuple

from repro.sim.stats import RunStatistics

#: Environment variable naming the cache root directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump to invalidate every existing cache entry on format changes.
CACHE_FORMAT_VERSION = 1


def key_digest(key: Tuple) -> str:
    """A stable filename-safe digest of one run key."""

    payload = repr(key).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:32]


class RunCache:
    """A directory of pickled :class:`RunStatistics`, one file per run key."""

    def __init__(self, root: Path | str, fingerprint: str) -> None:
        self.root = Path(root)
        self.fingerprint = f"v{CACHE_FORMAT_VERSION}-{fingerprint}"
        self.directory = self.root / self.fingerprint
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.write_errors = 0

    # ------------------------------------------------------------------ #
    @classmethod
    def from_env(cls, fingerprint: str,
                 cache_dir: Optional[str] = None) -> Optional["RunCache"]:
        """Build a cache from ``cache_dir`` or ``$REPRO_CACHE_DIR``.

        ``cache_dir=None`` defers to the environment variable; an **empty
        string force-disables** the cache even when ``REPRO_CACHE_DIR`` is
        exported (cold-cache measurements and determinism tests rely on
        this).  Returns ``None`` when the cache is disabled.
        """

        root = os.environ.get(CACHE_DIR_ENV) if cache_dir is None else cache_dir
        if not root:
            return None
        return cls(root, fingerprint)

    # ------------------------------------------------------------------ #
    def _path(self, key: Tuple) -> Path:
        return self.directory / f"{key_digest(key)}.pkl"

    def get(self, key: Tuple) -> Optional[RunStatistics]:
        """The cached statistics for ``key``, or ``None`` on a miss."""

        path = self._path(key)
        try:
            payload = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            stats = RunStatistics.from_payload(payload)
        except Exception:
            # A torn write or a stale format: treat as a miss; the caller
            # recomputes and put() overwrites the bad entry.
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def put(self, key: Tuple, stats: RunStatistics) -> None:
        """Persist ``stats`` under ``key`` (atomic, last writer wins).

        The cache is a pure optimisation: an unwritable directory (read
        only, full, permissions changed mid-run) must not abort the sweep,
        so write failures are swallowed and counted in ``write_errors``.
        """

        temp_name = None
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            payload = stats.to_payload()
            fd, temp_name = tempfile.mkstemp(dir=self.directory,
                                             suffix=".tmp")
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(temp_name, self._path(key))
        except OSError:
            if temp_name is not None:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
            self.write_errors += 1
            return
        self.writes += 1

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for p in self.directory.glob("*.pkl"))

    def clear(self) -> int:
        """Delete this configuration's entries; return how many there were."""

        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def stats(self) -> dict:
        return {
            "directory": str(self.directory),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "write_errors": self.write_errors,
        }

"""Experiment harness: one entry point per paper figure/table.

:class:`ExperimentRunner` owns a simulation-scale profile (cycles per run,
workload sizes, the N_RH sweep), memoises simulation runs and standalone-IPC
baselines, and exposes ``figure2()`` … ``figure19()``, ``table1()`` …
``table3()`` and ``hardware_complexity()`` methods that return
:class:`repro.analysis.figures.FigureData` / ``TableData`` objects shaped
like the paper's artefacts.

.. deprecated::
    ``ExperimentRunner`` / ``HarnessConfig`` are the **legacy facade**.
    New code should describe sweeps with :class:`repro.api.ExperimentSpec`
    and execute them through :class:`repro.api.Session`, which adds
    futures-based streaming aggregation and owns executor + cache
    lifecycle (see ROADMAP.md "Running sweeps" for the timeline).  Both
    classes remain fully functional shims: the runner is the engine the
    session drives, every ``figureN`` grid is now declared once as a
    :class:`~repro.analysis.executor.SweepPlan` shared by both paths, and
    results are bit-identical whichever entry point computed them.

Scale
-----
Runs are deliberately short (tens of thousands of controller cycles) so that
the whole harness finishes in minutes of pure Python; the paper's qualitative
structure — which mechanism wins, how trends move with N_RH, where
BreakHammer helps and where it cannot — is preserved.  See DESIGN.md §2 and
EXPERIMENTS.md for the paper-vs-measured record.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.aggregate import aggregate_figures, aggregate_headlines
from repro.analysis.executor import (
    AloneResult,
    BatchSliceFuture,
    RunHandle,
    RunTask,
    SerialSweepExecutor,
    SweepExecutor,
    SweepPlan,
    TASK_ALONE,
    TASK_BATCH,
    TASK_RUN,
    coalesce_batch_tasks,
    make_executor,
)
from repro.analysis.figures import FigureData, TableData
from repro.analysis.runcache import RunCache
from repro.core.hardware_model import HardwareCostModel
from repro.core.security import SecurityAnalysis
from repro.cpu.trace import Trace
from repro.mitigations.registry import (
    MOTIVATION_MECHANISMS,
    PAIRED_MECHANISMS,
)
from repro.sim.config import (
    SimulationConfig,
    SystemConfig,
    config_fingerprint,
)
from repro.sim.metrics import geometric_mean, max_slowdown, weighted_speedup
from repro.sim.simulator import SimulationResult, Simulator
from repro.sim.stats import RunStatistics
from repro.workloads.attacker import AttackerConfig
from repro.workloads.characteristics import (
    PAPER_TABLE3,
    average_row,
    characterize_suite,
)
from repro.workloads.mixes import (
    ATTACK_MIXES,
    BENIGN_MIXES,
    WorkloadMix,
    make_mix,
)


@dataclass(frozen=True)
class HarnessConfig:
    """Scale knobs of the experiment harness.

    ``engine`` selects the simulation driver for every run the harness
    executes (see :class:`repro.sim.config.SimulationConfig`).  The figure
    sweeps default to the event-driven ``"fast"`` engine — it produces
    statistics identical to the ``"cycle"`` engine while skipping the
    cycles in which nothing can happen, which multiplies sweep throughput.

    ``jobs`` selects the sweep execution backend: values above 1 shard the
    run grid across that many worker processes; 0 (the default) defers to
    the ``REPRO_JOBS`` environment variable, falling back to serial.
    Parallel sweeps produce results bit-identical to serial ones.

    ``cache_dir`` points the persistent on-disk run cache at a directory:
    ``None`` (default) defers to ``REPRO_CACHE_DIR``, an empty string
    force-disables the cache even when that variable is exported, and
    when neither names a directory the disk cache is off.

    ``backend`` selects the sweep execution fabric: ``"local"`` (serial or
    process pool, per ``jobs``), ``"cluster"`` (socket broker + workers,
    see :mod:`repro.cluster`), or ``None`` to defer to ``REPRO_BACKEND``.
    ``broker`` is the cluster listen address (``host:port`` /
    ``unix:/path``), ``cluster_workers`` auto-spawns that many co-located
    worker processes, and ``spool_dir`` names a columnar trace spool
    workers mmap instead of regenerating (see
    :mod:`repro.workloads.spool`).  None of these execution knobs affects
    simulation *results*, so all are excluded from the cache fingerprint.

    ``workload_dir`` roots the ingested-workload catalog for ``ingest:``
    mixes (``None`` defers to ``REPRO_WORKLOAD_DIR``).  The *directory*
    is an execution knob and is normalised out like the others — but the
    catalogued trace **digests** the mixes resolve to are result-affecting
    and fold into :func:`harness_fingerprint`, so re-ingested content
    lands in a fresh cache namespace wherever the catalog lives.
    """

    sim_cycles: int = 25_000
    entries_per_core: int = 8_000
    attacker_entries: int = 12_000
    nrh_default: int = 1024
    nrh_low: int = 64
    nrh_sweep: Tuple[int, ...] = (4096, 2048, 1024, 512, 256, 128, 64)
    attack_mixes: Tuple[str, ...] = tuple(ATTACK_MIXES)
    benign_mixes: Tuple[str, ...] = tuple(BENIGN_MIXES)
    mechanisms: Tuple[str, ...] = tuple(PAIRED_MECHANISMS)
    seeds: Tuple[int, ...] = (0,)
    threat_threshold: float = 4.0
    outlier_threshold: float = 0.65
    engine: str = "fast"
    jobs: int = 0
    cache_dir: Optional[str] = None
    backend: Optional[str] = None
    broker: Optional[str] = None
    cluster_workers: int = 0
    spool_dir: Optional[str] = None
    workload_dir: Optional[str] = None

    def simulation_config(self) -> SimulationConfig:
        """The per-run simulation bounds this harness profile implies."""

        return SimulationConfig(max_cycles=self.sim_cycles, engine=self.engine)

    def result_fingerprint(self) -> str:
        """Digest of every field that can affect simulation results.

        Execution knobs (``jobs``, ``cache_dir``, ``backend``/``broker``/
        ``cluster_workers``, ``spool_dir``) are normalised out: a sweep
        must hit the same disk-cache namespace no matter how — or where —
        it is executed.
        """

        return config_fingerprint(
            dataclasses.replace(self, jobs=0, cache_dir=None, backend=None,
                                broker=None, cluster_workers=0,
                                spool_dir=None, workload_dir=None)
        )

    @classmethod
    def fast(cls) -> "HarnessConfig":
        """A profile small enough for CI and the pytest benchmarks."""

        return cls(
            sim_cycles=12_000,
            entries_per_core=4_000,
            attacker_entries=6_000,
            nrh_sweep=(4096, 1024, 256, 64),
            attack_mixes=("HHMA", "MMLA"),
            benign_mixes=("HHMM", "MMLL"),
            mechanisms=tuple(PAIRED_MECHANISMS),
            seeds=(0,),
        )

    @classmethod
    def smoke(cls) -> "HarnessConfig":
        """The smallest useful profile (unit/integration tests)."""

        return cls(
            sim_cycles=6_000,
            entries_per_core=2_000,
            attacker_entries=3_000,
            nrh_sweep=(1024, 64),
            attack_mixes=("MMLA",),
            benign_mixes=("MMLL",),
            mechanisms=("para", "graphene", "rfm"),
            seeds=(0,),
        )

    # ------------------------------------------------------------------ #
    # Bridge to the declarative repro.api surface.
    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, spec, jobs: int = 0,
                  cache_dir: Optional[str] = None,
                  backend: Optional[str] = None,
                  broker: Optional[str] = None,
                  cluster_workers: int = 0,
                  spool_dir: Optional[str] = None,
                  workload_dir: Optional[str] = None) -> "HarnessConfig":
        """The harness profile an :class:`repro.api.ExperimentSpec` implies.

        The spec must carry a resolved engine (sessions resolve it through
        ``repro.api.session.resolve_execution`` before building runners).
        """

        if spec.engine is None:
            raise ValueError(
                "spec.engine is unresolved; resolve it (Session does this) "
                "before building a HarnessConfig"
            )
        return cls(
            sim_cycles=spec.sim_cycles,
            entries_per_core=spec.entries_per_core,
            attacker_entries=spec.attacker_entries,
            nrh_default=spec.nrh_default,
            nrh_low=spec.nrh_low,
            nrh_sweep=tuple(spec.nrh_sweep),
            attack_mixes=tuple(spec.attack_mixes),
            benign_mixes=tuple(spec.benign_mixes),
            mechanisms=tuple(spec.mechanisms),
            seeds=tuple(spec.seeds),
            threat_threshold=spec.threat_threshold,
            outlier_threshold=spec.outlier_threshold,
            engine=spec.engine,
            jobs=jobs,
            cache_dir=cache_dir,
            backend=backend,
            broker=broker,
            cluster_workers=cluster_workers,
            spool_dir=spool_dir,
            workload_dir=workload_dir,
        )

    def to_spec(self):
        """The :class:`repro.api.ExperimentSpec` equivalent of this profile.

        Execution knobs (``jobs``, ``cache_dir``) are dropped: they belong
        to :class:`repro.api.Session`, not to the result description.
        """

        from repro.api.spec import ExperimentSpec

        return ExperimentSpec(
            sim_cycles=self.sim_cycles,
            entries_per_core=self.entries_per_core,
            attacker_entries=self.attacker_entries,
            nrh_default=self.nrh_default,
            nrh_low=self.nrh_low,
            nrh_sweep=self.nrh_sweep,
            attack_mixes=self.attack_mixes,
            benign_mixes=self.benign_mixes,
            mechanisms=self.mechanisms,
            seeds=self.seeds,
            threat_threshold=self.threat_threshold,
            outlier_threshold=self.outlier_threshold,
            engine=self.engine,
        )


#: The grid coordinate of one run: (mix, seed, mechanism, nrh, breakhammer).
GridPoint = Tuple[str, int, str, int, bool]

#: The full memoisation key: the grid coordinate extended with the trace
#: generation parameters and simulation bounds, so two distinct
#: configurations can never alias one cache entry (in memory or on disk).
RunKey = Tuple[str, int, str, int, bool, int, int, int, str]

#: A (mix_name, mechanism, nrh, breakhammer) request, as the figure methods
#: hand them to :meth:`ExperimentRunner.prefetch` one seed at a time — the
#: plan's seed axis multiplies the same request list across its seeds.
RunSpec = Tuple[str, str, int, bool]

#: Every figure/headline artefact with a declarative sweep plan, mapped to
#: the runner method that aggregates it.  ``repro.api.Session`` and the
#: ``python -m repro.api run`` CLI drive figures through this registry.
FIGURES: Dict[str, str] = {
    "fig2": "figure2",
    "fig5": "figure5",
    "fig6": "figure6",
    "fig7": "figure7",
    "fig8": "figure8",
    "fig9": "figure9",
    "fig10": "figure10",
    "fig11": "figure11",
    "fig12": "figure12",
    "fig13": "figure13",
    "fig14": "figure14",
    "fig15": "figure15",
    "fig16": "figure16",
    "fig17": "figure17",
    "fig18": "figure18",
    "fig19": "figure19",
}

#: Table artefacts (no sweep plans; aggregation only).
TABLES: Dict[str, str] = {
    "table1": "table1",
    "table2": "table2",
    "table3": "table3",
    "table3_paper": "paper_table3",
    "hw": "hardware_complexity",
}

#: The one deprecation message of the legacy facade (pytest.ini filters it
#: in tier-1; user code migrates to repro.api per the ROADMAP timeline).
_DEPRECATION_MESSAGE = (
    "ExperimentRunner/HarnessConfig are deprecated as a public entry point; "
    "describe sweeps with repro.api.ExperimentSpec and execute them through "
    "repro.api.Session (see ROADMAP.md 'Running sweeps')"
)


def catalog_digests(config: HarnessConfig) -> Tuple[Tuple[str, str], ...]:
    """``(name, trace_digest)`` pairs of the ``ingest:`` mixes of ``config``.

    Empty when no mix addresses the workload catalog.  Raises when mixes
    do but no catalog is configured (``workload_dir`` /
    ``REPRO_WORKLOAD_DIR``) — a runner must never fingerprint without the
    content it will simulate.
    """

    from repro.workloads.ingest.catalog import (
        WorkloadCatalog,
        is_catalog_mix,
        parse_catalog_mix,
    )

    names = [parse_catalog_mix(mix)[0]
             for mix in (*config.attack_mixes, *config.benign_mixes)
             if is_catalog_mix(mix)]
    if not names:
        return ()
    catalog = WorkloadCatalog.resolve(config.workload_dir)
    if catalog is None:
        raise ValueError(
            "config references ingested workloads but no catalog is "
            "configured (workload_dir / REPRO_WORKLOAD_DIR)"
        )
    return catalog.digests(names)


def harness_fingerprint(config: HarnessConfig) -> str:
    """The cache-namespace fingerprint a harness configuration implies.

    Digests the result-affecting harness fields, the derived base
    :class:`SystemConfig`, and the per-run :class:`SimulationConfig` —
    exactly what :class:`ExperimentRunner` computes for its run cache, and
    what the :mod:`repro.cluster` broker stamps on every unit of work so a
    worker built from a different spec can never contribute a result.

    When the config's mixes reference ingested workloads, the catalog
    trace digests fold in too (:func:`catalog_digests`): a re-ingested
    trace moves the namespace, so stale cache entries are unreachable,
    and a cluster worker whose catalog holds different content computes a
    different fingerprint and is refused by the broker.
    """

    base_system = SystemConfig.fast_profile(
        sim_cycles=config.sim_cycles,
        threat_threshold=config.threat_threshold,
        outlier_threshold=config.outlier_threshold,
    )
    digests = catalog_digests(config)
    if digests:
        return config_fingerprint(
            config.result_fingerprint(), base_system,
            config.simulation_config(), ("workload-catalog", digests),
        )
    return config_fingerprint(
        config.result_fingerprint(), base_system,
        config.simulation_config(),
    )


class ExperimentRunner:
    """Runs and memoises the simulations behind every figure.

    Three cache layers back :meth:`run`:

    1. in-memory memoisation (``_run_cache``), as before;
    2. an optional persistent on-disk :class:`RunCache`, keyed by the full
       :data:`RunKey` under a configuration-fingerprint namespace, shared
       across processes and invocations;
    3. a pluggable :class:`SweepExecutor` that the figure methods use (via
       :meth:`prefetch`) to compute the missing portion of their run grid —
       serially, or sharded across worker processes when
       ``HarnessConfig.jobs`` / ``REPRO_JOBS`` asks for more than one.
    """

    def __init__(self, config: Optional[HarnessConfig] = None, *,
                 _api_owned: bool = False) -> None:
        if not _api_owned:
            # The deprecation clock of the legacy facade (ROADMAP timeline):
            # internal owners — Session, the sweep/cluster workers — pass
            # _api_owned, so only *direct* construction warns.
            warnings.warn(_DEPRECATION_MESSAGE, DeprecationWarning,
                          stacklevel=2)
        self.config = config or HarnessConfig()
        self._mix_cache: Dict[Tuple[str, int, int, int], WorkloadMix] = {}
        self._run_cache: Dict[RunKey, RunStatistics] = {}
        self._alone_ipc_cache: Dict[Tuple[str, int], float] = {}
        self._base_system = SystemConfig.fast_profile(
            sim_cycles=self.config.sim_cycles,
            threat_threshold=self.config.threat_threshold,
            outlier_threshold=self.config.outlier_threshold,
        )
        self.fingerprint = harness_fingerprint(self.config)
        # The catalog content this runner was fingerprinted against: the
        # mix loader warns if an ingested workload is re-ingested behind
        # a live session (see WorkloadCatalog / catalog_mix).
        self._ingest_digests: Dict[str, str] = dict(
            catalog_digests(self.config)
        )
        self._disk_cache: Optional[RunCache] = RunCache.from_env(
            self.fingerprint, cache_dir=self.config.cache_dir
        )
        self._executor: SweepExecutor = make_executor(self)
        self.runs_executed = 0
        # In-flight futures of the streaming path, for cross-plan dedup:
        # one handle per RunKey / per (trace_name, length) alone key.
        self._inflight_runs: Dict[RunKey, RunHandle] = {}
        self._inflight_alone: Dict[Tuple[str, int], RunHandle] = {}

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def jobs(self) -> int:
        """The effective sweep worker count (1 = serial)."""

        return self._executor.jobs

    @property
    def disk_cache(self) -> Optional[RunCache]:
        return self._disk_cache

    def close(self) -> None:
        """Shut down the sweep executor's worker pool, if any."""

        self._executor.close()

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Building blocks
    # ------------------------------------------------------------------ #
    def system_config(self, mechanism: str, nrh: int,
                      breakhammer: bool) -> SystemConfig:
        return self._base_system.with_(
            mitigation=mechanism,
            nrh=nrh,
            breakhammer_enabled=breakhammer,
        )

    def mix(self, name: str, seed: int = 0) -> WorkloadMix:
        # The trace sizes are part of the key: a runner reconfigured for a
        # different scale must never alias another profile's traces.
        key = (name, seed, self.config.entries_per_core,
               self.config.attacker_entries)
        if key not in self._mix_cache:
            # A reachable columnar spool (materialised once by the session
            # that owns this spec) is mmap'd instead of regenerated, so
            # co-located sweep workers share one physical copy of every
            # trace through the page cache; the manifest pins scale, seed
            # *and* this runner's fingerprint, and any mismatch or damage
            # falls back to deterministic regeneration — the traces are
            # byte-identical either way.
            mix = self._spool_mix(name, seed)
            if mix is None:
                mix = self._catalog_mix(name)
            if mix is None:
                mix = make_mix(
                    name,
                    device=self._base_system.device,
                    mapping=self._base_system.mapping,
                    entries_per_core=self.config.entries_per_core,
                    attacker_entries=self.config.attacker_entries,
                    seed=seed,
                    attacker_config=AttackerConfig(
                        entries=self.config.attacker_entries, seed=seed
                    ),
                )
            self._mix_cache[key] = mix
        return self._mix_cache[key]

    def _catalog_mix(self, name: str) -> Optional[WorkloadMix]:
        """Load an ``ingest:`` mix from the workload catalog.

        Returns ``None`` for ordinary letter mixes.  The digest captured
        at fingerprint time rides along, so content re-ingested behind a
        live runner falls back to the current catalog bytes *with a
        warning* instead of silently mixing trace versions in one cache
        namespace.
        """

        from repro.workloads.ingest.catalog import (
            catalog_mix,
            is_catalog_mix,
            parse_catalog_mix,
        )

        if not is_catalog_mix(name):
            return None
        workload_name = parse_catalog_mix(name)[0]
        return catalog_mix(
            name,
            directory=self.config.workload_dir,
            expected_digest=self._ingest_digests.get(workload_name),
        )

    def _spool_mix(self, name: str, seed: int) -> Optional[WorkloadMix]:
        if not self.config.spool_dir:
            return None
        from repro.workloads.spool import TraceSpool

        return TraceSpool(self.config.spool_dir).load_mix(
            name, seed,
            entries_per_core=self.config.entries_per_core,
            attacker_entries=self.config.attacker_entries,
            fingerprint=self.fingerprint,
        )

    def run_key(self, mix_name: str, mechanism: str, nrh: int,
                breakhammer: bool, seed: int = 0) -> RunKey:
        """The full memoisation key of one run.

        Beyond the grid coordinate it pins the trace generation parameters
        (entry counts; the seed is already a coordinate) and the simulation
        bounds (cycle budget, engine), so distinct configurations cannot
        alias — in particular in the on-disk cache, which outlives any one
        runner.
        """

        return (mix_name, seed, mechanism, nrh, breakhammer,
                self.config.entries_per_core, self.config.attacker_entries,
                self.config.sim_cycles, self.config.engine)

    def _cached_stats(self, key: RunKey) -> Optional[RunStatistics]:
        """Memory-then-disk cache lookup; disk hits populate memory."""

        stats = self._run_cache.get(key)
        if stats is not None:
            return stats
        if self._disk_cache is not None:
            stats = self._disk_cache.get(key)
            if stats is not None:
                self._run_cache[key] = stats
                return stats
        return None

    def _store_stats(self, key: RunKey, stats: RunStatistics) -> None:
        self._run_cache[key] = stats
        if self._disk_cache is not None:
            self._disk_cache.put(key, stats)

    def run(self, mix_name: str, mechanism: str, nrh: int,
            breakhammer: bool, seed: int = 0) -> RunStatistics:
        """Run (or fetch from cache) one simulation."""

        key = self.run_key(mix_name, mechanism, nrh, breakhammer, seed)
        stats = self._cached_stats(key)
        if stats is not None:
            return stats
        mix = self.mix(mix_name, seed)
        simulator = Simulator(
            self.system_config(mechanism, nrh, breakhammer),
            mix.traces,
            self.config.simulation_config(),
            attacker_threads=mix.attacker_threads,
        )
        result = simulator.run()
        self.runs_executed += 1
        self._store_stats(key, result.stats)
        return result.stats

    def run_batch_group(self, tasks: Sequence[RunTask]) -> List[RunStatistics]:
        """Run a group of compatible grid points as one lockstep batch.

        ``tasks`` are the ``"run"`` members of a ``"batch"`` task (see
        :func:`repro.analysis.executor.coalesce_batch_tasks`): same mix and
        seed, so every lane replays the same traces.  Already-cached
        members are returned from cache; the rest become lanes of one
        :class:`repro.sim.batch.BatchSimulator`, whose per-lane statistics
        are bit-identical to solo runs of the same points.  Results come
        back in ``tasks`` order and are memoised exactly as :meth:`run`
        would have.
        """

        from repro.sim.batch import BatchSimulator

        keys = [
            self.run_key(t.mix_name, t.mechanism, t.nrh, t.breakhammer,
                         t.seed)
            for t in tasks
        ]
        results: List[Optional[RunStatistics]] = [
            self._cached_stats(key) for key in keys
        ]
        lanes = [i for i, stats in enumerate(results) if stats is None]
        if lanes:
            simulators = []
            for i in lanes:
                task = tasks[i]
                mix = self.mix(task.mix_name, task.seed)
                simulators.append(Simulator(
                    self.system_config(task.mechanism, task.nrh,
                                       task.breakhammer),
                    mix.traces,
                    self.config.simulation_config(),
                    attacker_threads=mix.attacker_threads,
                ))
            lane_results = BatchSimulator(simulators).run()
            for i, result in zip(lanes, lane_results):
                results[i] = result.stats
                self.runs_executed += 1
                self._store_stats(keys[i], result.stats)
        return results

    def _alone_disk_key(self, trace: Trace) -> RunKey:
        """Disk-cache key of one standalone-IPC baseline run.

        The baseline is persisted like any grid point — ``"alone"`` takes
        the mechanism slot (not a registry name, so it cannot collide with
        real runs) — letting repeat invocations with a disk cache skip the
        per-trace baseline simulations too.
        """

        return (trace.name, len(trace), "alone", 0, False,
                self.config.entries_per_core, self.config.attacker_entries,
                self.config.sim_cycles, self.config.engine)

    def _cached_alone_ipc(self, trace: Trace) -> Optional[float]:
        """Memory-then-disk lookup of one standalone-IPC baseline."""

        key = (trace.name, len(trace))
        ipc = self._alone_ipc_cache.get(key)
        if ipc is not None:
            return ipc
        if self._disk_cache is not None:
            stats = self._disk_cache.get(self._alone_disk_key(trace))
            if stats is not None:
                ipc = max(1e-6, stats.ipc_of(0))
                self._alone_ipc_cache[key] = ipc
                return ipc
        return None

    def alone_baseline(self, trace: Trace) -> RunStatistics:
        """The full statistics of one trace's standalone baseline run.

        Simulates (or loads from the disk cache) the single-core,
        no-mitigation run :meth:`alone_ipc` derives its IPC from.  Cluster
        workers return these statistics whole so the broker can persist
        them through the shared run cache.
        """

        key = self._alone_disk_key(trace)
        if self._disk_cache is not None:
            stats = self._disk_cache.get(key)
            if stats is not None:
                return stats
        config = self._base_system.with_(
            num_cores=1, mitigation="none", breakhammer_enabled=False
        )
        simulator = Simulator(config, [trace],
                              self.config.simulation_config())
        stats = simulator.run().stats
        if self._disk_cache is not None:
            self._disk_cache.put(key, stats)
        return stats

    def alone_ipc(self, trace: Trace) -> float:
        """Standalone IPC of one trace on a single-core, no-mitigation system."""

        cached = self._cached_alone_ipc(trace)
        if cached is not None:
            return cached
        ipc = max(1e-6, self.alone_baseline(trace).ipc_of(0))
        self._alone_ipc_cache[(trace.name, len(trace))] = ipc
        return ipc

    # ------------------------------------------------------------------ #
    # Parallel sweep execution
    # ------------------------------------------------------------------ #
    def prefetch(self, runs: Sequence[RunSpec] = (),
                 alone_mixes: Sequence[str] = (), seed: int = 0) -> int:
        """Compute the missing portion of a run grid through the executor.

        ``runs`` lists (mix, mechanism, nrh, breakhammer) grid points and
        ``alone_mixes`` names mixes whose per-trace standalone-IPC
        baselines are needed.  Points already memoised (in memory or on
        disk) are skipped; the rest are executed — in worker processes when
        a parallel executor is configured — and merged into this runner's
        caches, so the figure code that follows hits warm caches only.
        Returns the number of grid points (and baselines) actually
        executed.  Under ``engine="batch"`` compatible pending points are
        coalesced into lockstep batch tasks first (the per-point results
        and caching are unchanged; see :func:`coalesce_batch_tasks`).
        """

        tasks: List[RunTask] = []
        seen_keys = set()
        for mix_name, mechanism, nrh, breakhammer in runs:
            key = self.run_key(mix_name, mechanism, nrh, breakhammer, seed)
            if key in seen_keys or self._cached_stats(key) is not None:
                continue
            seen_keys.add(key)
            tasks.append(RunTask(
                kind=TASK_RUN, mix_name=mix_name, seed=seed,
                mechanism=mechanism, nrh=nrh, breakhammer=breakhammer,
            ))
        seen_alone = set()
        for mix_name in dict.fromkeys(alone_mixes):
            mix = self.mix(mix_name, seed)
            for index, trace in enumerate(mix.traces):
                alone_key = (trace.name, len(trace))
                # Dedup within the batch too: mixes share traces (every
                # attack mix carries the identical attacker trace).
                if alone_key in seen_alone \
                        or self._cached_alone_ipc(trace) is not None:
                    continue
                seen_alone.add(alone_key)
                tasks.append(RunTask(kind=TASK_ALONE, mix_name=mix_name,
                                     seed=seed, trace_index=index))
        if not tasks:
            return 0
        points = len(tasks)
        if self.config.engine == "batch":
            tasks = coalesce_batch_tasks(tasks)
        if isinstance(self._executor, SerialSweepExecutor):
            # The serial path just runs through the ordinary entry points
            # (which memoise and count as they go).
            self._executor.execute(tasks)
            return points
        results = self._executor.execute(tasks)
        for task, outcome in zip(tasks, results):
            if task.kind == TASK_ALONE:
                alone: AloneResult = outcome
                self._alone_ipc_cache[
                    (alone.trace_name, alone.trace_length)
                ] = alone.ipc
                continue
            members = task.group if task.kind == TASK_BATCH else (task,)
            stats_list = outcome if task.kind == TASK_BATCH else (outcome,)
            for member, stats in zip(members, stats_list):
                # Memory only: the worker's own runner shares this cache
                # configuration and already persisted the entry to disk.
                key = self.run_key(member.mix_name, member.mechanism,
                                   member.nrh, member.breakhammer,
                                   member.seed)
                self._run_cache[key] = stats
                self.runs_executed += 1
        return points

    # ------------------------------------------------------------------ #
    # Streaming (futures) sweep execution
    # ------------------------------------------------------------------ #
    def submit_prefetch(self, runs: Sequence[RunSpec] = (),
                        alone_mixes: Sequence[str] = (),
                        seed: int = 0) -> List[RunHandle]:
        """The futures twin of :meth:`prefetch`.

        Returns one :class:`RunHandle` per *distinct* requested point —
        grid runs first (request order), then the per-trace standalone-IPC
        baselines of ``alone_mixes``, sharded across the same pool.
        Already-cached points yield handles born completed; points already
        in flight (submitted by an earlier plan of this runner) are
        reused, so overlapping figure grids never execute a point twice.
        Consuming a handle's ``result()`` merges the outcome into this
        runner's caches; aggregation can therefore start as soon as the
        first handle completes instead of after a batch barrier.
        """

        handles: List[Optional[RunHandle]] = []
        # Pending points are submitted after the scan so that, under
        # ``engine="batch"``, compatible points coalesce into one batched
        # task; each point still gets its own handle (a slice of the
        # batch's list-valued future) at its request-order position.
        pending: List[Tuple[RunTask, RunKey, int]] = []
        seen = set()
        for mix_name, mechanism, nrh, breakhammer in runs:
            key = self.run_key(mix_name, mechanism, nrh, breakhammer, seed)
            if key in seen:
                continue
            seen.add(key)
            handle = self._inflight_runs.get(key)
            if handle is None:
                cached = self._cached_stats(key)
                if cached is not None:
                    handle = RunHandle.completed(key, cached)
                    self._inflight_runs[key] = handle
                else:
                    task = RunTask(
                        kind=TASK_RUN, mix_name=mix_name, seed=seed,
                        mechanism=mechanism, nrh=nrh, breakhammer=breakhammer,
                    )
                    pending.append((task, key, len(handles)))
                    handles.append(None)
                    continue
            handles.append(handle)
        if pending:
            submitted = [task for task, _, _ in pending]
            if self.config.engine == "batch":
                submitted = coalesce_batch_tasks(submitted)
            # Coalescing groups by mix, so members of one batch may be
            # non-contiguous in request order; map each point task back to
            # its key and handle slot (tasks are distinct: keys are).
            slots = {task: (key, position) for task, key, position in pending}
            for task in submitted:
                members = task.group if task.kind == TASK_BATCH else (task,)
                future = self._executor.submit(task)
                for index, member in enumerate(members):
                    key, position = slots[member]
                    member_future = (
                        BatchSliceFuture(future, index)
                        if task.kind == TASK_BATCH else future
                    )
                    handle = RunHandle(
                        member, key, member_future,
                        merge=self._merge_run_outcome(key),
                    )
                    self._inflight_runs[key] = handle
                    handles[position] = handle
        seen_alone = set()
        for mix_name in dict.fromkeys(alone_mixes):
            mix = self.mix(mix_name, seed)
            for index, trace in enumerate(mix.traces):
                alone_key = (trace.name, len(trace))
                if alone_key in seen_alone:
                    continue
                seen_alone.add(alone_key)
                handle = self._inflight_alone.get(alone_key)
                if handle is None:
                    ipc = self._cached_alone_ipc(trace)
                    if ipc is not None:
                        handle = RunHandle.completed(
                            alone_key,
                            AloneResult(trace.name, len(trace), ipc),
                        )
                    else:
                        task = RunTask(kind=TASK_ALONE, mix_name=mix_name,
                                       seed=seed, trace_index=index)
                        handle = RunHandle(
                            task, alone_key, self._executor.submit(task),
                            merge=self._merge_alone_outcome,
                        )
                    self._inflight_alone[alone_key] = handle
                handles.append(handle)
        return handles

    def _merge_run_outcome(self, key: RunKey):
        serial = isinstance(self._executor, SerialSweepExecutor)

        def merge(stats: RunStatistics) -> None:
            # Serial handles ran through `run`, which memoised, persisted,
            # and counted already; pool outcomes merge memory-only (the
            # worker's own runner shares the disk-cache configuration and
            # already persisted the entry).
            if not serial:
                self._run_cache[key] = stats
                self.runs_executed += 1

        return merge

    def _merge_alone_outcome(self, alone: AloneResult) -> None:
        self._alone_ipc_cache[(alone.trace_name, alone.trace_length)] = \
            alone.ipc

    def submit_plan(self, plan: SweepPlan) -> List[RunHandle]:
        """Submit a figure's declarative sweep plan; see :meth:`figure_plan`.

        The grid (alone baselines included) is submitted once per seed of
        the plan's seed axis; handles of all seeds share one pool.
        """

        handles: List[RunHandle] = []
        for seed in plan.seeds:
            handles.extend(self.submit_prefetch(
                plan.runs, alone_mixes=plan.alone_mixes, seed=seed
            ))
        return handles

    # ------------------------------------------------------------------ #
    # Declarative figure sweep plans
    # ------------------------------------------------------------------ #
    def figure_plan(self, figure_id: str, **kwargs) -> SweepPlan:
        """The declarative sweep plan behind one figure.

        Each ``figureN`` method executes exactly the plan this returns (the
        grid is defined once), so a session that streams the plan's
        handles and then aggregates sees bit-identical results to the
        legacy batch path.  Figures without a sweep (fig5's analytical
        bound, fig19's bespoke threshold sweep) return an empty plan.
        """

        if figure_id == "headline":
            return self.headline_plan(**kwargs)
        if figure_id not in FIGURES:
            raise ValueError(
                f"unknown figure {figure_id!r}; one of {sorted(FIGURES)}"
            )
        builder = getattr(self, f"_plan_{figure_id}", None)
        if builder is None:
            return SweepPlan(figure_id=figure_id, meta=dict(kwargs))
        return builder(**kwargs)

    def _execute_plan(self, plan: SweepPlan) -> int:
        """Batch-execute a plan through :meth:`prefetch` (legacy path)."""

        if plan.empty:
            return 0
        executed = 0
        for seed in plan.seeds:
            executed += self.prefetch(plan.runs,
                                      alone_mixes=plan.alone_mixes, seed=seed)
        return executed

    def _grid_plan(self, figure_id: str,
                   mixes: Sequence[str],
                   mechanisms: Sequence[str],
                   nrh_values: Sequence[int],
                   breakhammer_values: Sequence[bool],
                   baseline: bool = False,
                   alone: bool = True,
                   extra_runs: Sequence[RunSpec] = (),
                   meta: Optional[Dict[str, object]] = None) -> SweepPlan:
        """The cartesian grid plan common to the figure methods.

        ``baseline`` adds the per-mix no-mitigation reference run at the
        default N_RH; ``alone`` adds the standalone-IPC baselines of every
        trace in the mixes; ``extra_runs`` are off-grid points batched into
        the same dispatch (a second prefetch call would serialise them
        behind the grid's barrier).
        """

        runs: List[RunSpec] = list(extra_runs)
        if baseline:
            runs.extend(
                (mix, "none", self.config.nrh_default, False) for mix in mixes
            )
        runs.extend(
            (mix, mechanism, nrh, breakhammer)
            for mechanism in mechanisms
            for nrh in nrh_values
            for breakhammer in breakhammer_values
            for mix in mixes
        )
        return SweepPlan(
            figure_id=figure_id,
            runs=tuple(runs),
            alone_mixes=tuple(mixes) if alone else (),
            seeds=tuple(self.config.seeds),
            meta=meta or {},
        )

    # ------------------------------------------------------------------ #
    # Per-seed figure frames and the seed-axis aggregation
    # ------------------------------------------------------------------ #
    #: figure_id -> the method that builds one per-seed frame of it.  Every
    #: plan-backed figure appears here; fig5 (analytical) and fig19 (bespoke
    #: threshold sweep) have no seed axis and no frame builder.
    _FRAME_BUILDERS: Dict[str, str] = {
        "fig2": "_frame_fig2",
        "fig6": "_frame_per_mix",
        "fig7": "_frame_per_mix",
        "fig8": "_frame_nrh_scaling",
        "fig9": "_frame_nrh_scaling",
        "fig10": "_frame_fig10",
        "fig11": "_frame_latency",
        "fig12": "_frame_fig12",
        "fig13": "_frame_per_mix",
        "fig14": "_frame_per_mix",
        "fig15": "_frame_benign_scaling",
        "fig16": "_frame_benign_scaling",
        "fig17": "_frame_latency",
        "fig18": "_frame_fig18",
    }

    def figure_frame(self, plan: SweepPlan, seed: int) -> FigureData:
        """Aggregate one *seed's* frame of a figure from warm caches.

        The plan's runs (for this seed) must already be computed — the
        batch path executes the plan first, the streaming/adaptive paths
        consume the plan's handles first.  Frames of all seeds share one
        structure, so :func:`repro.analysis.aggregate.aggregate_figures`
        can fold them into the published mean ± CI figure.
        """

        builder = self._FRAME_BUILDERS.get(plan.figure_id)
        if builder is None:
            raise ValueError(
                f"figure {plan.figure_id!r} has no per-seed frame builder"
            )
        return getattr(self, builder)(plan, seed)

    def _figure_from_plan(self, plan: SweepPlan) -> FigureData:
        """Batch-execute a plan and fold its per-seed frames (legacy path)."""

        self._execute_plan(plan)
        return aggregate_figures(
            [self.figure_frame(plan, seed) for seed in plan.seeds]
        )

    @staticmethod
    def _want(only: Optional[Sequence[str]], label: str) -> bool:
        """Does a frame build ``label``?  ``only`` is the escalation filter.

        Full-figure plans carry no ``meta["series"]`` filter (``only is
        None``): every series is built.  Adaptive escalation plans narrow
        the frame to the series that still have wide-CI cells.
        """

        return only is None or label in only

    @staticmethod
    def _label_mechanism(label: str) -> Tuple[str, bool]:
        """Invert a series label back to its (mechanism, breakhammer) pair."""

        if label == "no_defense":
            return ("none", False)
        if label.endswith("+BH"):
            return (label[: -len("+BH")], True)
        return (label, False)

    def escalation_plan(self, plan: SweepPlan,
                        cells: Sequence[Tuple[str, object]]) -> SweepPlan:
        """The narrowed plan one adaptive escalation round executes.

        ``cells`` lists (series label, x value) coordinates of ``plan``'s
        figure whose CI is still wider than the campaign target.  The
        returned plan covers exactly the runs those cells' frame values
        depend on — other series are dropped via ``meta["series"]`` and,
        where the x axis maps one-to-one onto grid runs, the x dimension is
        narrowed too.  Cells that aggregate *across* a dimension (geomean
        over mixes, a latency curve over one run set) keep that dimension
        whole, so escalated frame cells equal what a full frame at the same
        seed would hold.
        """

        if plan.figure_id not in self._FRAME_BUILDERS:
            raise ValueError(
                f"figure {plan.figure_id!r} has no seed axis to escalate"
            )
        labels = list(dict.fromkeys(label for label, _ in cells))
        wide_x = {x for _, x in cells}
        meta = dict(plan.meta)
        meta["series"] = labels
        runs: List[RunSpec] = []
        if plan.figure_id in self._PER_MIX_FIGURES:
            # x axis = mixes + ["geomean"]; a wide geomean needs every mix.
            mixes = list(plan.meta["mixes"])
            if "geomean" not in wide_x:
                mixes = [mix for mix in mixes if mix in wide_x]
            meta["mixes"] = mixes
            nrh = plan.meta["nrh"]
            for label in labels:
                mechanism, _ = self._label_mechanism(label)
                for mix in mixes:
                    runs.append((mix, mechanism, nrh, False))
                    runs.append((mix, mechanism, nrh, True))
            alone_mixes: Tuple[str, ...] = tuple(mixes)
        elif plan.figure_id in ("fig11", "fig17"):
            # x axis = percentile points of one curve: any wide point needs
            # the whole curve's run set, so only the series narrow.
            nrh = plan.meta["nrh"]
            mixes = plan.meta["mixes"]
            for label in labels:
                mechanism, breakhammer = self._label_mechanism(label)
                runs.extend((mix, mechanism, nrh, breakhammer)
                            for mix in mixes)
            alone_mixes = ()
        else:
            # N_RH-sweep family: the x axis maps one-to-one onto grid runs.
            sweep = [nrh for nrh in plan.meta["sweep"] if nrh in wide_x]
            meta["sweep"] = sweep
            mixes = plan.meta["mixes"]
            if plan.figure_id in ("fig2", "fig8", "fig9", "fig12", "fig18"):
                runs.extend((mix, "none", self.config.nrh_default, False)
                            for mix in mixes)
            for label in labels:
                mechanism, breakhammer = self._label_mechanism(label)
                if plan.figure_id in ("fig15", "fig16"):
                    # Normalised to the mechanism alone: both runs needed.
                    bh_values: Tuple[bool, ...] = (False, True)
                elif plan.figure_id == "fig10":
                    # Normalised to the mechanism's count at the reference
                    # N_RH, which the narrowed sweep may no longer contain.
                    reference_nrh = plan.meta.get(
                        "reference_nrh", plan.meta["sweep"][0]
                    )
                    runs.extend((mix, mechanism, reference_nrh, False)
                                for mix in mixes)
                    bh_values = (breakhammer,)
                else:
                    bh_values = (breakhammer,)
                runs.extend(
                    (mix, mechanism, nrh, flag)
                    for nrh in sweep
                    for flag in bh_values
                    for mix in mixes
                )
            alone_mixes = plan.alone_mixes
        return SweepPlan(
            figure_id=plan.figure_id,
            runs=tuple(runs),
            alone_mixes=alone_mixes,
            seeds=plan.seeds,
            meta=meta,
        )

    # ------------------------------------------------------------------ #
    # Metrics over runs
    # ------------------------------------------------------------------ #
    def _alone_ipcs(self, mix: WorkloadMix) -> Dict[int, float]:
        return {
            idx: self.alone_ipc(trace) for idx, trace in enumerate(mix.traces)
        }

    def benign_weighted_speedup(self, stats: RunStatistics,
                                mix: WorkloadMix) -> float:
        alone = self._alone_ipcs(mix)
        return weighted_speedup(stats.ipc_by_thread, alone,
                                include=mix.benign_threads)

    def benign_max_slowdown(self, stats: RunStatistics,
                            mix: WorkloadMix) -> float:
        alone = self._alone_ipcs(mix)
        return max_slowdown(stats.ipc_by_thread, alone,
                            include=mix.benign_threads)

    def _ratio_series(self, values: Dict[str, float],
                      baselines: Dict[str, float]) -> List[float]:
        return [
            values[name] / max(1e-9, baselines[name]) for name in values
        ]

    # ------------------------------------------------------------------ #
    # Figure 2 — motivation: mitigation overhead vs N_RH (benign mixes)
    # ------------------------------------------------------------------ #
    def _plan_fig2(self, mechanisms: Optional[Sequence[str]] = None,
                   mixes: Optional[Sequence[str]] = None) -> SweepPlan:
        mechanisms = list(mechanisms or MOTIVATION_MECHANISMS)
        mixes = list(mixes or self.config.benign_mixes)
        sweep = list(self.config.nrh_sweep)
        return self._grid_plan(
            "fig2", mixes, mechanisms, sweep, (False,), baseline=True,
            meta=dict(mechanisms=mechanisms, mixes=mixes, sweep=sweep),
        )

    def figure2(self, mechanisms: Optional[Sequence[str]] = None,
                mixes: Optional[Sequence[str]] = None) -> FigureData:
        return self._figure_from_plan(self._plan_fig2(mechanisms, mixes))

    def _frame_fig2(self, plan: SweepPlan, seed: int) -> FigureData:
        mechanisms = plan.meta["mechanisms"]
        mixes = plan.meta["mixes"]
        sweep = plan.meta["sweep"]
        only = plan.meta.get("series")
        figure = FigureData(
            figure_id="fig2",
            title="System performance of RowHammer mitigations vs N_RH "
                  "(benign workloads, normalised to no mitigation)",
            x_label="nrh",
            y_label="normalized_weighted_speedup",
            x_values=sweep,
        )
        baseline_ws: Dict[str, float] = {}
        for mix_name in mixes:
            mix = self.mix(mix_name, seed)
            stats = self.run(mix_name, "none", self.config.nrh_default, False,
                             seed)
            baseline_ws[mix_name] = self.benign_weighted_speedup(stats, mix)
        for mechanism in mechanisms:
            if not self._want(only, mechanism):
                continue
            values = []
            for nrh in sweep:
                ratios = []
                for mix_name in mixes:
                    mix = self.mix(mix_name, seed)
                    stats = self.run(mix_name, mechanism, nrh, False, seed)
                    ws = self.benign_weighted_speedup(stats, mix)
                    ratios.append(ws / max(1e-9, baseline_ws[mix_name]))
                values.append(geometric_mean(ratios))
            figure.add_series(mechanism, values)
        return figure

    # ------------------------------------------------------------------ #
    # Figure 5 — analytical security bound
    # ------------------------------------------------------------------ #
    def figure5(self, attacker_percentages: Sequence[int] = tuple(range(0, 101, 10)),
                cap: float = 10.0) -> FigureData:
        analysis = SecurityAnalysis()
        figure = FigureData(
            figure_id="fig5",
            title="Maximum undetected attacker score vs attacker-thread share",
            x_label="attacker_thread_percentage",
            y_label="max_attacker_score_over_benign_avg",
            x_values=list(attacker_percentages),
        )
        for th, values in analysis.figure5(attacker_percentages, cap).items():
            figure.add_series(f"TH_outlier={th:.2f}", values)
        return figure

    # ------------------------------------------------------------------ #
    # Figures 6/7 — per-mix performance and unfairness under attack
    # ------------------------------------------------------------------ #
    def _per_mix_plan(self, figure_id: str, default_nrh: int,
                      default_mixes: Sequence[str],
                      nrh: Optional[int] = None,
                      mixes: Optional[Sequence[str]] = None,
                      mechanisms: Optional[Sequence[str]] = None) -> SweepPlan:
        nrh = nrh or default_nrh
        mixes = list(mixes or default_mixes)
        mechanisms = list(mechanisms or self.config.mechanisms)
        return self._grid_plan(
            figure_id, mixes, mechanisms, (nrh,), (False, True),
            meta=dict(nrh=nrh, mixes=mixes, mechanisms=mechanisms),
        )

    #: figure_id -> (metric, title) of the per-mix BreakHammer-ratio family.
    _PER_MIX_FIGURES: Dict[str, Tuple[str, str]] = {
        "fig6": ("weighted_speedup",
                 "Benign weighted speedup with BreakHammer, normalised to "
                 "the mechanism alone"),
        "fig7": ("max_slowdown",
                 "Benign unfairness (max slowdown) with BreakHammer, "
                 "normalised to the mechanism alone"),
        "fig13": ("weighted_speedup",
                  "Benign-only weighted speedup with BreakHammer, "
                  "normalised to the mechanism alone"),
        "fig14": ("max_slowdown",
                  "Benign-only unfairness with BreakHammer, normalised "
                  "to the mechanism alone"),
    }

    def _frame_per_mix(self, plan: SweepPlan, seed: int) -> FigureData:
        metric, title = self._PER_MIX_FIGURES[plan.figure_id]
        nrh = plan.meta["nrh"]
        mixes = plan.meta["mixes"]
        mechanisms = plan.meta["mechanisms"]
        only = plan.meta.get("series")
        is_perf = metric == "weighted_speedup"
        figure = FigureData(
            figure_id=plan.figure_id,
            title=title,
            x_label="mix",
            y_label="normalized_" + metric,
            x_values=list(mixes) + ["geomean"],
        )
        for mechanism in mechanisms:
            if not self._want(only, f"{mechanism}+BH"):
                continue
            ratios = []
            for mix_name in mixes:
                mix = self.mix(mix_name, seed)
                base = self.run(mix_name, mechanism, nrh, False, seed)
                with_bh = self.run(mix_name, mechanism, nrh, True, seed)
                if is_perf:
                    value = self.benign_weighted_speedup(with_bh, mix)
                    baseline = self.benign_weighted_speedup(base, mix)
                else:
                    value = self.benign_max_slowdown(with_bh, mix)
                    baseline = self.benign_max_slowdown(base, mix)
                ratios.append(value / max(1e-9, baseline))
            ratios.append(geometric_mean([max(1e-9, r) for r in ratios]))
            figure.add_series(f"{mechanism}+BH", ratios)
        return figure

    def _plan_fig6(self, **kwargs) -> SweepPlan:
        return self._per_mix_plan("fig6", self.config.nrh_default,
                                  self.config.attack_mixes, **kwargs)

    def _plan_fig7(self, **kwargs) -> SweepPlan:
        return self._per_mix_plan("fig7", self.config.nrh_default,
                                  self.config.attack_mixes, **kwargs)

    def figure6(self, nrh: Optional[int] = None,
                mixes: Optional[Sequence[str]] = None,
                mechanisms: Optional[Sequence[str]] = None) -> FigureData:
        return self._figure_from_plan(
            self._plan_fig6(nrh=nrh, mixes=mixes, mechanisms=mechanisms)
        )

    def figure7(self, nrh: Optional[int] = None,
                mixes: Optional[Sequence[str]] = None,
                mechanisms: Optional[Sequence[str]] = None) -> FigureData:
        return self._figure_from_plan(
            self._plan_fig7(nrh=nrh, mixes=mixes, mechanisms=mechanisms)
        )

    # ------------------------------------------------------------------ #
    # Figures 8/9 — scaling with N_RH under attack
    # ------------------------------------------------------------------ #
    def _nrh_scaling_plan(self, figure_id: str,
                          include_baseline_series: bool,
                          mechanisms: Optional[Sequence[str]] = None,
                          mixes: Optional[Sequence[str]] = None) -> SweepPlan:
        mechanisms = list(mechanisms or self.config.mechanisms)
        mixes = list(mixes or self.config.attack_mixes)
        sweep = list(self.config.nrh_sweep)
        return self._grid_plan(
            figure_id, mixes, mechanisms, sweep,
            (False, True) if include_baseline_series else (True,),
            baseline=True,
            meta=dict(mechanisms=mechanisms, mixes=mixes, sweep=sweep,
                      include_baseline_series=include_baseline_series),
        )

    #: figure_id -> metric of the attacker-present N_RH-scaling family.
    _NRH_SCALING_METRICS: Dict[str, str] = {
        "fig8": "weighted_speedup",
        "fig9": "max_slowdown",
    }

    def _frame_nrh_scaling(self, plan: SweepPlan, seed: int) -> FigureData:
        metric = self._NRH_SCALING_METRICS[plan.figure_id]
        mechanisms = plan.meta["mechanisms"]
        mixes = plan.meta["mixes"]
        sweep = plan.meta["sweep"]
        include_baseline_series = plan.meta["include_baseline_series"]
        only = plan.meta.get("series")
        is_perf = metric == "weighted_speedup"
        figure = FigureData(
            figure_id=plan.figure_id,
            title=f"{metric} vs N_RH "
                  "(attacker present, "
                  "normalised to no mitigation)",
            x_label="nrh",
            y_label="normalized_" + metric,
            x_values=sweep,
        )
        # No-mitigation baseline per mix (independent of N_RH).
        baseline: Dict[str, float] = {}
        for mix_name in mixes:
            mix = self.mix(mix_name, seed)
            stats = self.run(mix_name, "none", self.config.nrh_default, False,
                             seed)
            baseline[mix_name] = (
                self.benign_weighted_speedup(stats, mix)
                if is_perf else self.benign_max_slowdown(stats, mix)
            )

        def series_for(mechanism: str, breakhammer: bool) -> List[float]:
            values = []
            for nrh in sweep:
                ratios = []
                for mix_name in mixes:
                    mix = self.mix(mix_name, seed)
                    stats = self.run(mix_name, mechanism, nrh, breakhammer,
                                     seed)
                    value = (
                        self.benign_weighted_speedup(stats, mix)
                        if is_perf else self.benign_max_slowdown(stats, mix)
                    )
                    ratios.append(value / max(1e-9, baseline[mix_name]))
                values.append(geometric_mean([max(1e-9, r) for r in ratios]))
            return values

        for mechanism in mechanisms:
            if include_baseline_series and self._want(only, mechanism):
                figure.add_series(mechanism, series_for(mechanism, False))
            if self._want(only, f"{mechanism}+BH"):
                figure.add_series(f"{mechanism}+BH",
                                  series_for(mechanism, True))
        return figure

    def _plan_fig8(self, **kwargs) -> SweepPlan:
        return self._nrh_scaling_plan("fig8", True, **kwargs)

    def _plan_fig9(self, **kwargs) -> SweepPlan:
        return self._nrh_scaling_plan("fig9", False, **kwargs)

    def figure8(self, mechanisms: Optional[Sequence[str]] = None,
                mixes: Optional[Sequence[str]] = None) -> FigureData:
        return self._figure_from_plan(
            self._plan_fig8(mechanisms=mechanisms, mixes=mixes)
        )

    def figure9(self, mechanisms: Optional[Sequence[str]] = None,
                mixes: Optional[Sequence[str]] = None) -> FigureData:
        return self._figure_from_plan(
            self._plan_fig9(mechanisms=mechanisms, mixes=mixes)
        )

    # ------------------------------------------------------------------ #
    # Figure 10 — preventive-action counts
    # ------------------------------------------------------------------ #
    def _plan_fig10(self, mechanisms: Optional[Sequence[str]] = None,
                    mixes: Optional[Sequence[str]] = None) -> SweepPlan:
        mechanisms = [
            m for m in (mechanisms or self.config.mechanisms) if m != "rega"
        ]
        mixes = list(mixes or self.config.attack_mixes)
        sweep = list(self.config.nrh_sweep)
        return self._grid_plan(
            "fig10", mixes, mechanisms, sweep, (False, True), alone=False,
            meta=dict(mechanisms=mechanisms, mixes=mixes, sweep=sweep,
                      reference_nrh=sweep[0]),
        )

    def figure10(self, mechanisms: Optional[Sequence[str]] = None,
                 mixes: Optional[Sequence[str]] = None) -> FigureData:
        return self._figure_from_plan(self._plan_fig10(mechanisms, mixes))

    def _frame_fig10(self, plan: SweepPlan, seed: int) -> FigureData:
        mechanisms = plan.meta["mechanisms"]
        mixes = plan.meta["mixes"]
        sweep = plan.meta["sweep"]
        reference_nrh = plan.meta.get("reference_nrh", sweep[0])
        only = plan.meta.get("series")
        figure = FigureData(
            figure_id="fig10",
            title="RowHammer-preventive actions vs N_RH (attacker present, "
                  "normalised to the mechanism alone at the largest N_RH)",
            x_label="nrh",
            y_label="normalized_preventive_actions",
            x_values=sweep,
        )

        def mean_actions(mechanism: str, nrh: int, bh: bool) -> float:
            counts = []
            for mix_name in mixes:
                stats = self.run(mix_name, mechanism, nrh, bh, seed)
                counts.append(stats.preventive_actions)
            return sum(counts) / len(counts)

        for mechanism in mechanisms:
            want_base = self._want(only, mechanism)
            want_bh = self._want(only, f"{mechanism}+BH")
            if not (want_base or want_bh):
                continue
            reference = max(1.0, mean_actions(mechanism, reference_nrh, False))
            if want_base:
                figure.add_series(mechanism, [
                    mean_actions(mechanism, nrh, False) / reference
                    for nrh in sweep
                ])
            if want_bh:
                figure.add_series(f"{mechanism}+BH", [
                    mean_actions(mechanism, nrh, True) / reference
                    for nrh in sweep
                ])
        return figure

    # ------------------------------------------------------------------ #
    # Figures 11/17 — memory latency percentiles
    # ------------------------------------------------------------------ #
    def _latency_plan(self, with_attacker: bool,
                      nrh: Optional[int] = None,
                      mechanisms: Optional[Sequence[str]] = None,
                      mixes: Optional[Sequence[str]] = None,
                      points: Sequence[int] = (50, 75, 90, 95, 99, 100),
                      ) -> SweepPlan:
        nrh = nrh or self.config.nrh_low
        mechanisms = list(mechanisms or self.config.mechanisms)
        mixes = list(
            mixes or (
                self.config.attack_mixes if with_attacker
                else self.config.benign_mixes
            )
        )
        return self._grid_plan(
            "fig11" if with_attacker else "fig17",
            mixes, mechanisms, (nrh,), (False, True), alone=False,
            extra_runs=[(mix, "none", nrh, False) for mix in mixes],
            meta=dict(nrh=nrh, mechanisms=mechanisms, mixes=mixes,
                      points=list(points)),
        )

    def _plan_fig11(self, **kwargs) -> SweepPlan:
        return self._latency_plan(True, **kwargs)

    def _plan_fig17(self, **kwargs) -> SweepPlan:
        return self._latency_plan(False, **kwargs)

    def latency_percentile_figure(self, with_attacker: bool,
                                  nrh: Optional[int] = None,
                                  mechanisms: Optional[Sequence[str]] = None,
                                  mixes: Optional[Sequence[str]] = None,
                                  points: Sequence[int] = (50, 75, 90, 95, 99, 100),
                                  ) -> FigureData:
        return self._figure_from_plan(
            self._latency_plan(with_attacker, nrh, mechanisms, mixes, points)
        )

    def _frame_latency(self, plan: SweepPlan, seed: int) -> FigureData:
        with_attacker = plan.figure_id == "fig11"
        nrh = plan.meta["nrh"]
        mechanisms = plan.meta["mechanisms"]
        mixes = plan.meta["mixes"]
        points = plan.meta["points"]
        only = plan.meta.get("series")
        figure = FigureData(
            figure_id=plan.figure_id,
            title="Benign memory latency percentiles at low N_RH "
                  f"({'attacker present' if with_attacker else 'all benign'})",
            x_label="percentile",
            y_label="latency_cycles",
            x_values=list(points),
        )

        def curve(mechanism: str, bh: bool) -> List[float]:
            per_point: List[List[float]] = [[] for _ in points]
            for mix_name in mixes:
                mix = self.mix(mix_name, seed)
                stats = self.run(mix_name, mechanism, nrh, bh, seed)
                pcts = stats.latency_curve(mix.benign_threads, points=tuple(points))
                for idx, p in enumerate(points):
                    per_point[idx].append(pcts[p])
            return [sum(vals) / len(vals) if vals else 0.0 for vals in per_point]

        if self._want(only, "no_defense"):
            figure.add_series("no_defense", curve("none", False))
        for mechanism in mechanisms:
            if self._want(only, mechanism):
                figure.add_series(mechanism, curve(mechanism, False))
            if self._want(only, f"{mechanism}+BH"):
                figure.add_series(f"{mechanism}+BH", curve(mechanism, True))
        return figure

    def figure11(self, **kwargs) -> FigureData:
        return self.latency_percentile_figure(True, **kwargs)

    def figure17(self, **kwargs) -> FigureData:
        return self.latency_percentile_figure(False, **kwargs)

    # ------------------------------------------------------------------ #
    # Figure 12 — DRAM energy
    # ------------------------------------------------------------------ #
    def _plan_fig12(self, mechanisms: Optional[Sequence[str]] = None,
                    mixes: Optional[Sequence[str]] = None) -> SweepPlan:
        mechanisms = list(mechanisms or self.config.mechanisms)
        mixes = list(mixes or self.config.attack_mixes)
        sweep = list(self.config.nrh_sweep)
        return self._grid_plan(
            "fig12", mixes, mechanisms, sweep, (False, True),
            baseline=True, alone=False,
            meta=dict(mechanisms=mechanisms, mixes=mixes, sweep=sweep),
        )

    def figure12(self, mechanisms: Optional[Sequence[str]] = None,
                 mixes: Optional[Sequence[str]] = None) -> FigureData:
        return self._figure_from_plan(self._plan_fig12(mechanisms, mixes))

    def _frame_fig12(self, plan: SweepPlan, seed: int) -> FigureData:
        mechanisms = plan.meta["mechanisms"]
        mixes = plan.meta["mixes"]
        sweep = plan.meta["sweep"]
        only = plan.meta.get("series")
        figure = FigureData(
            figure_id="fig12",
            title="DRAM energy vs N_RH (attacker present, normalised to "
                  "no mitigation)",
            x_label="nrh",
            y_label="normalized_dram_energy",
            x_values=sweep,
        )
        baseline: Dict[str, float] = {}
        for mix_name in mixes:
            stats = self.run(mix_name, "none", self.config.nrh_default, False,
                             seed)
            baseline[mix_name] = max(1e-9, stats.energy_mj)

        def series(mechanism: str, bh: bool) -> List[float]:
            values = []
            for nrh in sweep:
                ratios = []
                for mix_name in mixes:
                    stats = self.run(mix_name, mechanism, nrh, bh, seed)
                    ratios.append(stats.energy_mj / baseline[mix_name])
                values.append(sum(ratios) / len(ratios))
            return values

        for mechanism in mechanisms:
            if self._want(only, mechanism):
                figure.add_series(mechanism, series(mechanism, False))
            if self._want(only, f"{mechanism}+BH"):
                figure.add_series(f"{mechanism}+BH", series(mechanism, True))
        return figure

    # ------------------------------------------------------------------ #
    # Figures 13-16 — all-benign studies
    # ------------------------------------------------------------------ #
    def _plan_fig13(self, **kwargs) -> SweepPlan:
        return self._per_mix_plan("fig13", self.config.nrh_low,
                                  self.config.benign_mixes, **kwargs)

    def _plan_fig14(self, **kwargs) -> SweepPlan:
        return self._per_mix_plan("fig14", self.config.nrh_default,
                                  self.config.benign_mixes, **kwargs)

    def figure13(self, nrh: Optional[int] = None,
                 mixes: Optional[Sequence[str]] = None,
                 mechanisms: Optional[Sequence[str]] = None) -> FigureData:
        return self._figure_from_plan(
            self._plan_fig13(nrh=nrh, mixes=mixes, mechanisms=mechanisms)
        )

    def figure14(self, nrh: Optional[int] = None,
                 mixes: Optional[Sequence[str]] = None,
                 mechanisms: Optional[Sequence[str]] = None) -> FigureData:
        return self._figure_from_plan(
            self._plan_fig14(nrh=nrh, mixes=mixes, mechanisms=mechanisms)
        )

    def _benign_scaling_plan(self, figure_id: str,
                             mechanisms: Optional[Sequence[str]] = None,
                             mixes: Optional[Sequence[str]] = None
                             ) -> SweepPlan:
        mechanisms = list(mechanisms or self.config.mechanisms)
        mixes = list(mixes or self.config.benign_mixes)
        sweep = list(self.config.nrh_sweep)
        return self._grid_plan(
            figure_id, mixes, mechanisms, sweep, (False, True),
            meta=dict(mechanisms=mechanisms, mixes=mixes, sweep=sweep),
        )

    def _plan_fig15(self, **kwargs) -> SweepPlan:
        return self._benign_scaling_plan("fig15", **kwargs)

    def _plan_fig16(self, **kwargs) -> SweepPlan:
        return self._benign_scaling_plan("fig16", **kwargs)

    #: figure_id -> metric of the all-benign N_RH-scaling family.
    _BENIGN_SCALING_METRICS: Dict[str, str] = {
        "fig15": "weighted_speedup",
        "fig16": "max_slowdown",
    }

    def _frame_benign_scaling(self, plan: SweepPlan, seed: int) -> FigureData:
        metric = self._BENIGN_SCALING_METRICS[plan.figure_id]
        mechanisms = plan.meta["mechanisms"]
        mixes = plan.meta["mixes"]
        sweep = plan.meta["sweep"]
        only = plan.meta.get("series")
        is_perf = metric == "weighted_speedup"
        figure = FigureData(
            figure_id=plan.figure_id,
            title=f"All-benign {metric} of mechanism+BH normalised to the "
                  "mechanism alone, vs N_RH",
            x_label="nrh",
            y_label="normalized_" + metric,
            x_values=sweep,
        )
        for mechanism in mechanisms:
            if not self._want(only, f"{mechanism}+BH"):
                continue
            values = []
            for nrh in sweep:
                ratios = []
                for mix_name in mixes:
                    mix = self.mix(mix_name, seed)
                    base = self.run(mix_name, mechanism, nrh, False, seed)
                    with_bh = self.run(mix_name, mechanism, nrh, True, seed)
                    if is_perf:
                        value = self.benign_weighted_speedup(with_bh, mix)
                        baseline = self.benign_weighted_speedup(base, mix)
                    else:
                        value = self.benign_max_slowdown(with_bh, mix)
                        baseline = self.benign_max_slowdown(base, mix)
                    ratios.append(value / max(1e-9, baseline))
                values.append(geometric_mean([max(1e-9, r) for r in ratios]))
            figure.add_series(f"{mechanism}+BH", values)
        return figure

    def figure15(self, mechanisms: Optional[Sequence[str]] = None,
                 mixes: Optional[Sequence[str]] = None) -> FigureData:
        return self._figure_from_plan(
            self._plan_fig15(mechanisms=mechanisms, mixes=mixes)
        )

    def figure16(self, mechanisms: Optional[Sequence[str]] = None,
                 mixes: Optional[Sequence[str]] = None) -> FigureData:
        return self._figure_from_plan(
            self._plan_fig16(mechanisms=mechanisms, mixes=mixes)
        )

    # ------------------------------------------------------------------ #
    # Figure 18 — comparison with BlockHammer
    # ------------------------------------------------------------------ #
    def _plan_fig18(self, mechanisms: Optional[Sequence[str]] = None,
                    mixes: Optional[Sequence[str]] = None) -> SweepPlan:
        mechanisms = list(mechanisms or self.config.mechanisms)
        mixes = list(mixes or self.config.attack_mixes)
        sweep = list(self.config.nrh_sweep)
        return self._grid_plan(
            "fig18", mixes, mechanisms, sweep, (True,), baseline=True,
            extra_runs=[(mix, "blockhammer", nrh, False)
                        for nrh in sweep for mix in mixes],
            meta=dict(mechanisms=mechanisms, mixes=mixes, sweep=sweep),
        )

    def figure18(self, mechanisms: Optional[Sequence[str]] = None,
                 mixes: Optional[Sequence[str]] = None) -> FigureData:
        return self._figure_from_plan(self._plan_fig18(mechanisms, mixes))

    def _frame_fig18(self, plan: SweepPlan, seed: int) -> FigureData:
        mechanisms = plan.meta["mechanisms"]
        mixes = plan.meta["mixes"]
        sweep = plan.meta["sweep"]
        only = plan.meta.get("series")
        figure = FigureData(
            figure_id="fig18",
            title="BreakHammer-paired mechanisms vs BlockHammer "
                  "(attacker present, normalised to no mitigation)",
            x_label="nrh",
            y_label="normalized_weighted_speedup",
            x_values=sweep,
        )
        baseline: Dict[str, float] = {}
        for mix_name in mixes:
            mix = self.mix(mix_name, seed)
            stats = self.run(mix_name, "none", self.config.nrh_default, False,
                             seed)
            baseline[mix_name] = self.benign_weighted_speedup(stats, mix)

        def series(mechanism: str, bh: bool) -> List[float]:
            values = []
            for nrh in sweep:
                ratios = []
                for mix_name in mixes:
                    mix = self.mix(mix_name, seed)
                    stats = self.run(mix_name, mechanism, nrh, bh, seed)
                    ws = self.benign_weighted_speedup(stats, mix)
                    ratios.append(ws / max(1e-9, baseline[mix_name]))
                values.append(geometric_mean([max(1e-9, r) for r in ratios]))
            return values

        for mechanism in mechanisms:
            if self._want(only, f"{mechanism}+BH"):
                figure.add_series(f"{mechanism}+BH", series(mechanism, True))
        if self._want(only, "blockhammer"):
            figure.add_series("blockhammer", series("blockhammer", False))
        return figure

    # ------------------------------------------------------------------ #
    # Figure 19 — sensitivity to TH_threat
    # ------------------------------------------------------------------ #
    def figure19(self, threat_thresholds: Sequence[float] = (2.0, 8.0, 32.0),
                 nrh_values: Optional[Sequence[int]] = None,
                 mechanism: str = "graphene") -> FigureData:
        """Sensitivity of the BreakHammer benefit to ``TH_threat``.

        The paper sweeps 32 / 512 / 4096 over 64 ms windows; the scaled
        equivalents here keep the same ratios over the shortened windows.
        Values are weighted speedup normalised to the *largest* threshold
        (the least aggressive configuration), as in the paper.
        """

        nrh_values = list(nrh_values or (self.config.nrh_sweep[0],
                                         self.config.nrh_default,
                                         self.config.nrh_low))
        thresholds = list(threat_thresholds)
        figure = FigureData(
            figure_id="fig19",
            title="Sensitivity to TH_threat (weighted speedup normalised to "
                  "the largest threshold)",
            x_label="th_threat",
            y_label="normalized_weighted_speedup",
            x_values=thresholds,
        )

        def ws_for(mix_name: str, nrh: int, threshold: float) -> float:
            mix = self.mix(mix_name)
            config = self._base_system.with_(
                mitigation=mechanism, nrh=nrh, breakhammer_enabled=True,
                breakhammer=self._base_system.breakhammer.__class__(
                    window_ms=self._base_system.breakhammer.window_ms,
                    threat_threshold=threshold,
                    outlier_threshold=self._base_system.breakhammer.outlier_threshold,
                    p_oldsuspect=self._base_system.breakhammer.p_oldsuspect,
                    p_newsuspect=self._base_system.breakhammer.p_newsuspect,
                ),
            )
            simulator = Simulator(
                config, mix.traces,
                self.config.simulation_config(),
                attacker_threads=mix.attacker_threads,
            )
            result = simulator.run()
            self.runs_executed += 1
            return self.benign_weighted_speedup(result.stats, mix)

        attack_mix = self.config.attack_mixes[0]
        benign_mix = self.config.benign_mixes[0]
        for nrh in nrh_values:
            for scenario, mix_name in (("attack", attack_mix),
                                       ("benign", benign_mix)):
                raw = [ws_for(mix_name, nrh, th) for th in thresholds]
                reference = max(1e-9, raw[-1])
                figure.add_series(
                    f"{scenario}_nrh{nrh}", [v / reference for v in raw]
                )
        return figure

    # ------------------------------------------------------------------ #
    # Tables
    # ------------------------------------------------------------------ #
    def table1(self) -> TableData:
        """Simulated system configuration (paper Table 1)."""

        config = self.system_config("graphene", self.config.nrh_default, True)
        description = config.describe()
        table = TableData(
            table_id="table1",
            title="Simulated system configuration",
            columns=["component", "parameters"],
        )
        for component, parameters in description.items():
            table.add_row({"component": component, "parameters": parameters})
        return table

    def table2(self) -> TableData:
        """BreakHammer configuration (paper Table 2)."""

        paper = SystemConfig.paper_exact(breakhammer_enabled=True)
        scaled = self._base_system
        table = TableData(
            table_id="table2",
            title="BreakHammer configuration (paper values and scaled values)",
            columns=["parameter", "paper_value", "scaled_value"],
        )
        paper_dict = paper.breakhammer.as_dict()
        scaled_dict = scaled.breakhammer.as_dict()
        for key in paper_dict:
            table.add_row({
                "parameter": key,
                "paper_value": paper_dict[key],
                "scaled_value": scaled_dict[key],
            })
        return table

    def table3(self) -> TableData:
        """Workload characteristics (paper Table 3) for the synthetic suite."""

        mix_names = set(self.config.benign_mixes) | set(self.config.attack_mixes)
        traces: List[Trace] = []
        seen = set()
        for name in sorted(mix_names):
            for trace in self.mix(name).traces:
                if trace.name not in seen:
                    seen.add(trace.name)
                    traces.append(trace)
        rows = characterize_suite(traces, device=self._base_system.device,
                                  mapping=self._base_system.mapping)
        table = TableData(
            table_id="table3",
            title="Workload characteristics (synthetic suite)",
            columns=["Workload", "RBMPKI", "ACT-512+", "ACT-128+", "ACT-64+"],
            notes="Paper reference rows available as "
                  "repro.workloads.characteristics.PAPER_TABLE3",
        )
        for row in rows[:12]:
            table.add_row(row.as_row())
        table.add_row(average_row(rows))
        return table

    def paper_table3(self) -> TableData:
        table = TableData(
            table_id="table3_paper",
            title="Workload characteristics (paper-reported values)",
            columns=["Workload", "RBMPKI", "ACT-512+", "ACT-128+", "ACT-64+"],
        )
        for row in PAPER_TABLE3:
            table.add_row(row)
        return table

    def hardware_complexity(self, num_threads: int = 4,
                            channels: int = 1) -> TableData:
        """The §6 area/latency analysis.

        Uses the paper's uncompressed DDR5 timings: the latency-vs-tRRD claim
        is about real silicon, not about the scaled simulation profile.
        """

        from repro.dram.config import DeviceConfig

        model = HardwareCostModel(num_threads=num_threads, channels=channels,
                                  device_config=DeviceConfig.ddr5_4800())
        report = model.report()
        table = TableData(
            table_id="hw",
            title="BreakHammer hardware complexity",
            columns=["quantity", "value"],
        )
        for key, value in report.as_dict().items():
            table.add_row({"quantity": key, "value": value})
        return table

    # ------------------------------------------------------------------ #
    # Headline numbers (abstract / §8 claims)
    # ------------------------------------------------------------------ #
    def headline_plan(self, nrh: Optional[int] = None) -> SweepPlan:
        nrh = nrh or self.config.nrh_low
        return self._grid_plan(
            "headline", list(self.config.attack_mixes),
            list(self.config.mechanisms), (nrh,), (False, True),
            meta=dict(nrh=nrh),
        )

    def headline_numbers(self, nrh: Optional[int] = None) -> Dict[str, float]:
        """Average benign speedup / action reduction with an attacker present.

        Mirrors the abstract's "improves performance by 90.1% and reduces
        DRAM energy by 55.7% on average across workloads with a malicious
        application" claim structure (the magnitudes depend on scale).
        """

        plan = self.headline_plan(nrh)
        self._execute_plan(plan)
        return aggregate_headlines(
            [self._headline_frame(plan, seed) for seed in plan.seeds]
        )

    def _headline_frame(self, plan: SweepPlan, seed: int) -> Dict[str, float]:
        """One seed's headline numbers, from warm caches (see figure_frame)."""

        nrh = plan.meta["nrh"]
        speedups: List[float] = []
        energy_ratios: List[float] = []
        action_ratios: List[float] = []
        for mechanism in self.config.mechanisms:
            for mix_name in self.config.attack_mixes:
                mix = self.mix(mix_name, seed)
                base = self.run(mix_name, mechanism, nrh, False, seed)
                with_bh = self.run(mix_name, mechanism, nrh, True, seed)
                ws_base = self.benign_weighted_speedup(base, mix)
                ws_bh = self.benign_weighted_speedup(with_bh, mix)
                speedups.append(ws_bh / max(1e-9, ws_base))
                energy_ratios.append(
                    with_bh.energy_mj / max(1e-9, base.energy_mj)
                )
                if base.preventive_actions:
                    action_ratios.append(
                        with_bh.preventive_actions / base.preventive_actions
                    )
        return {
            "mean_benign_speedup": geometric_mean(speedups),
            "mean_energy_ratio": sum(energy_ratios) / len(energy_ratios),
            "mean_preventive_action_ratio": (
                sum(action_ratios) / len(action_ratios) if action_ratios else 1.0
            ),
        }

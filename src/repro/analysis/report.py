"""Plain-text rendering of reproduced figures and tables.

The benchmark harness prints the same rows/series the paper reports; this
module turns :class:`FigureData` / :class:`TableData` objects into aligned
ASCII tables so benches and examples can show them without any plotting
dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.figures import ComparisonEntry, FigureData, TableData


def _format_cell(value: object, width: int = 0) -> str:
    if isinstance(value, float):
        text = f"{value:.3f}"
    else:
        text = str(value)
    return text.rjust(width) if width else text


def render_table(table: TableData) -> str:
    """Render a :class:`TableData` as an aligned text table."""

    columns = table.columns
    rows = [[_format_cell(row.get(col, "")) for col in columns] for row in table.rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rows)) if rows else len(col)
        for i, col in enumerate(columns)
    ]
    lines = [table.title, "=" * len(table.title)]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    if table.notes:
        lines.append("")
        lines.append(f"note: {table.notes}")
    return "\n".join(lines)


def _series_cell(series, index: int, precision: int) -> str:
    """One figure cell: ``mean±ci95`` across the seed axis, else the value.

    Single-seed figures carry no stats (or n == 1 cells), so their cells —
    and therefore the whole rendered table — stay byte-identical to the
    pre-statistics output.
    """

    value = f"{series.values[index]:.{precision}f}"
    if series.stats and series.stats[index].n > 1:
        return f"{value}±{series.stats[index].ci95:.{precision}f}"
    return value


def render_figure(figure: FigureData, precision: int = 3) -> str:
    """Render a :class:`FigureData` as a series-per-row text table.

    Cells of multi-seed figures render as ``mean±ci95`` (95% CI half-width
    over the seed axis); single-seed figures render the plain value.
    """

    x_header = figure.x_label
    x_cells = [_format_cell(x) for x in figure.x_values]
    label_width = max(
        [len("series")] + [len(label) for label in figure.series]
    )
    col_widths = [
        max(len(x_cells[i]),
            *(len(_series_cell(s, i, precision))
              for s in figure.series.values()))
        if figure.series else len(x_cells[i])
        for i in range(len(x_cells))
    ]
    lines = [f"{figure.figure_id}: {figure.title}",
             "=" * (len(figure.figure_id) + 2 + len(figure.title))]
    header = "series".ljust(label_width) + " | " + " | ".join(
        x_cells[i].rjust(col_widths[i]) for i in range(len(x_cells))
    )
    lines.append(f"({x_header} →)")
    lines.append(header)
    lines.append("-" * len(header))
    for label, series in figure.series.items():
        cells = [
            _series_cell(series, i, precision).rjust(col_widths[i])
            for i in range(len(series.values))
        ]
        lines.append(label.ljust(label_width) + " | " + " | ".join(cells))
    if any(series.stats and any(cell.n > 1 for cell in series.stats)
           for series in figure.series.values()):
        seed_counts = sorted({
            cell.n
            for series in figure.series.values() if series.stats
            for cell in series.stats
        })
        lines.append(
            "(mean ± 95% CI half-width over "
            + "/".join(str(n) for n in seed_counts) + " seeds)"
        )
    if figure.notes:
        lines.append("")
        lines.append(f"note: {figure.notes}")
    return "\n".join(lines)


def render_comparisons(entries: Sequence[ComparisonEntry]) -> str:
    """Render a paper-vs-measured comparison list."""

    table = TableData(
        table_id="comparison",
        title="Paper vs measured",
        columns=["experiment", "quantity", "paper", "measured", "trend_match",
                 "comment"],
    )
    for entry in entries:
        table.add_row({
            "experiment": entry.experiment,
            "quantity": entry.quantity,
            "paper": entry.paper_value,
            "measured": entry.measured_value,
            "trend_match": "yes" if entry.matches_trend else "NO",
            "comment": entry.comment,
        })
    return render_table(table)


def figure_summary(figure: FigureData) -> Dict[str, float]:
    """Per-series means — a compact summary used in benchmark printouts."""

    return {label: series.mean for label, series in figure.series.items()}

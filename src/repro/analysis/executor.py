"""Pluggable sweep execution: serial and multi-process backends.

The experiment harness drives every paper figure from the same
embarrassingly parallel grid of (mix, mechanism, N_RH, BreakHammer)
simulation runs.  :class:`SweepExecutor` abstracts *how* that grid is
executed:

* :class:`SerialSweepExecutor` — in-process, one run at a time; the
  reference behaviour (and what workers themselves use);
* :class:`ProcessPoolSweepExecutor` — shards tasks across a
  ``concurrent.futures.ProcessPoolExecutor``.  Each worker process builds
  its own :class:`~repro.analysis.experiments.ExperimentRunner` from the
  pickled :class:`~repro.analysis.experiments.HarnessConfig` and
  **regenerates traces deterministically from (config, seed)** — traces are
  never shipped by value.  Only the picklable
  :class:`~repro.sim.stats.RunStatistics` results travel back.

Two dispatch styles share the backends:

* :meth:`SweepExecutor.execute` — the legacy batch barrier: every task
  completes before the call returns, in task order;
* :meth:`SweepExecutor.submit` — the futures path behind
  :class:`repro.api.Session`: each task returns a future immediately, so
  callers can overlap aggregation with execution and consume results in
  completion order.  On the serial backend the future is lazy (the task
  runs when its result is first demanded), preserving the reference
  serial execution order.

Simulations are deterministic functions of their configuration, so a
parallel sweep produces results bit-identical to a serial one, and the
futures path bit-identical to the batch path
(``tests/test_sweep_executor.py`` / ``tests/test_api_session.py`` pin
these contracts).

Worker count selection: ``HarnessConfig.jobs`` when positive, else the
``REPRO_JOBS`` environment variable, else 1 (serial); the one documented
resolution point for every execution knob is
:func:`repro.api.session.resolve_execution`.
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Environment variable selecting the sweep worker count.
JOBS_ENV = "REPRO_JOBS"

#: Environment variable selecting the sweep execution backend.
BACKEND_ENV = "REPRO_BACKEND"

#: Known sweep execution backends: ``"local"`` is serial-or-process-pool
#: (``jobs`` decides), ``"cluster"`` is the socket broker/worker fabric
#: (:mod:`repro.cluster`).
SWEEP_BACKENDS = ("local", "cluster")

#: Task kinds understood by the executors.
TASK_RUN = "run"
TASK_ALONE = "alone"
TASK_BATCH = "batch"

#: Largest lockstep batch the sweep layer forms.  Beyond this the kernel's
#: per-cycle array program stops paying for itself (more lanes finish at
#: different times, so late cycles run mostly-empty vectors) and a single
#: task monopolises one worker for too long to load-balance.
BATCH_GROUP_LANES = 16


@dataclass(frozen=True)
class RunTask:
    """One unit of sweep work, picklable and self-describing.

    ``kind`` is ``"run"`` (one grid-point simulation, the result is a
    :class:`RunStatistics`), ``"alone"`` (the standalone-IPC baseline of
    one trace of a mix, the result is an :class:`AloneResult`), or
    ``"batch"`` (a lockstep group of ``"run"`` points carried in
    ``group``; the result is the list of their :class:`RunStatistics`, in
    ``group`` order).
    """

    kind: str
    mix_name: str
    seed: int = 0
    mechanism: str = "none"
    nrh: int = 0
    breakhammer: bool = False
    trace_index: int = 0
    group: Tuple["RunTask", ...] = ()


@dataclass(frozen=True)
class AloneResult:
    """The standalone-IPC baseline of one trace (picklable)."""

    trace_name: str
    trace_length: int
    ipc: float


@dataclass(frozen=True)
class SweepPlan:
    """The declarative run grid behind one figure (or any sweep).

    ``runs`` lists (mix, mechanism, nrh, breakhammer) grid points,
    ``alone_mixes`` names the mixes whose per-trace standalone-IPC
    baselines the aggregation needs, and ``meta`` records the resolved
    figure parameters (mechanism list, sweep, …) so the aggregation code
    and the grid definition can never drift apart: both read the same
    plan.  ``seeds`` is the statistical axis: the grid (alone baselines
    included) is executed once per seed, and the figure aggregation folds
    the per-seed frames into mean ± CI cells
    (:mod:`repro.analysis.aggregate`).  Plans are what
    :class:`repro.api.Session` submits as futures and what the legacy
    batch ``prefetch`` executes behind each ``figureN`` method.
    """

    figure_id: str
    runs: Tuple[Tuple[str, str, int, bool], ...] = ()
    alone_mixes: Tuple[str, ...] = ()
    seeds: Tuple[int, ...] = (0,)
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return not self.runs and not self.alone_mixes


class RunHandle:
    """A future-backed subscription to one submitted sweep task.

    Handles are what figures (and any other consumer) subscribe to:
    ``result()`` blocks until the task's outcome is available, merges it
    into the owning runner's caches exactly once, and returns it.  A
    handle over an already-cached point is born completed.  The outcome is
    a :class:`repro.sim.stats.RunStatistics` for grid runs and an
    :class:`AloneResult` for standalone-IPC baselines.
    """

    __slots__ = ("task", "key", "_future", "_merge", "_merged", "_outcome")

    def __init__(self, task: Optional[RunTask], key, future,
                 merge=None) -> None:
        self.task = task
        self.key = key
        self._future = future
        self._merge = merge
        self._merged = False
        self._outcome = None

    @classmethod
    def completed(cls, key, outcome) -> "RunHandle":
        """A handle born resolved (the point was already cached)."""

        handle = cls(task=None, key=key, future=None)
        handle._outcome = outcome
        handle._merged = True
        return handle

    @property
    def cached(self) -> bool:
        """Whether this handle was served from a cache at submission."""

        return self.task is None

    def done(self) -> bool:
        return self._future is None or self._future.done()

    def result(self, timeout: Optional[float] = None):
        if self._future is not None:
            self._outcome = self._future.result(timeout)
            self._future = None
        if not self._merged:
            if self._merge is not None:
                self._merge(self._outcome)
            self._merged = True
        return self._outcome


def iter_completed(handles: Sequence[RunHandle]):
    """Yield handles roughly in completion order.

    Pool-backed handles are yielded as their futures complete (the
    streaming path: aggregation overlaps execution); cached and lazy
    serial handles are yielded first, in submission order — on the serial
    backend that *is* the reference execution order.  Handles sliced out
    of one batched task share a parent future and are yielded together
    (in slice order) when it completes.  Every handle is yielded exactly
    once.
    """

    from concurrent.futures import Future, as_completed

    pooled: Dict[object, List[RunHandle]] = {}
    immediate: List[RunHandle] = []
    for handle in handles:
        future = handle._future
        if isinstance(future, BatchSliceFuture):
            future = future.parent
        if isinstance(future, Future):
            pooled.setdefault(future, []).append(handle)
        else:
            immediate.append(handle)
    for handle in immediate:
        yield handle
    for future in as_completed(pooled):
        yield from pooled[future]


class _LazyFuture:
    """A future that evaluates its thunk on first ``result()`` demand.

    The serial executor hands these out from :meth:`submit` so that a
    "streamed" serial sweep still executes tasks one at a time, in the
    order their results are consumed — the reference behaviour — while
    presenting the same future interface as the process pool.

    ``result(timeout)`` semantics: the thunk runs synchronously on the
    calling thread, so a timeout cannot *preempt* it — it is honoured
    after the fact instead.  When evaluation overruns ``timeout``,
    :class:`concurrent.futures.TimeoutError` is raised exactly as a pool
    future would have done at that moment; the computed outcome stays
    cached (``done()`` turns true, matching a pool task that kept running
    past its caller's patience), so a retrying ``result()`` returns it
    immediately.  :class:`BatchSliceFuture` forwards ``timeout`` to its
    parent and inherits whichever behaviour the parent has.
    """

    __slots__ = ("_thunk", "_outcome", "_error", "_done")

    def __init__(self, thunk) -> None:
        self._thunk = thunk
        self._outcome = None
        self._error: Optional[BaseException] = None
        self._done = False

    def result(self, timeout: Optional[float] = None):
        overran = False
        if not self._done:
            started = time.perf_counter()
            try:
                self._outcome = self._thunk()
            except BaseException as exc:  # noqa: BLE001 - future semantics
                self._error = exc
            self._done = True
            self._thunk = None
            overran = (timeout is not None
                       and time.perf_counter() - started > timeout)
        if self._error is not None:
            raise self._error
        if overran:
            raise FuturesTimeoutError(
                f"serial task took longer than the requested "
                f"timeout of {timeout}s (the outcome is cached; "
                "a retry returns it immediately)"
            )
        return self._outcome

    def done(self) -> bool:
        return self._done


def evaluate_task(runner, task: RunTask):
    """Execute one task against ``runner`` (parent or worker side)."""

    if task.kind == TASK_RUN:
        return runner.run(task.mix_name, task.mechanism, task.nrh,
                          task.breakhammer, seed=task.seed)
    if task.kind == TASK_ALONE:
        mix = runner.mix(task.mix_name, task.seed)
        trace = mix.traces[task.trace_index]
        return AloneResult(trace_name=trace.name, trace_length=len(trace),
                           ipc=runner.alone_ipc(trace))
    if task.kind == TASK_BATCH:
        return runner.run_batch_group(task.group)
    raise ValueError(f"unknown sweep task kind {task.kind!r}")


def coalesce_batch_tasks(
    tasks: Sequence[RunTask],
    max_lanes: int = BATCH_GROUP_LANES,
) -> List[RunTask]:
    """Group compatible ``"run"`` tasks into lockstep ``"batch"`` tasks.

    Lanes of a lockstep batch are fully independent systems, so grouping
    is never a correctness constraint (``repro.testing.fuzz`` pins
    batched ≡ solo on deliberately heterogeneous lanes); points are
    grouped by mix only for locality — lanes of one batch regenerate (or
    mmap) the same traces — while seed, mechanism, N_RH, and the
    BreakHammer toggle all vary freely within a group.

    Singleton groups stay plain ``"run"`` tasks; ``"alone"`` tasks (and
    anything else) pass through untouched, and the returned list preserves
    first-appearance order so serial execution stays deterministic.
    """

    groups: Dict[str, List[RunTask]] = {}
    order: List[object] = []
    for task in tasks:
        if task.kind != TASK_RUN:
            order.append(task)
            continue
        key = task.mix_name
        bucket = groups.get(key)
        if bucket is None:
            bucket = groups[key] = []
            order.append(bucket)
        bucket.append(task)

    coalesced: List[RunTask] = []
    for item in order:
        if not isinstance(item, list):
            coalesced.append(item)
            continue
        for start in range(0, len(item), max_lanes):
            chunk = item[start:start + max_lanes]
            if len(chunk) == 1:
                coalesced.append(chunk[0])
            else:
                head = chunk[0]
                coalesced.append(RunTask(
                    kind=TASK_BATCH, mix_name=head.mix_name, seed=head.seed,
                    group=tuple(chunk),
                ))
    return coalesced


class BatchSliceFuture:
    """One grid point's view into a batched task's list-valued future.

    ``submit_prefetch`` hands every point its own :class:`RunHandle`; when
    points are coalesced into one ``"batch"`` task there is only one
    underlying future, so each point gets a slice wrapper that indexes the
    parent's result list.  ``parent`` may be a real pool future or a
    :class:`_LazyFuture` — both expose ``result()`` / ``done()``.
    """

    __slots__ = ("parent", "index")

    def __init__(self, parent, index: int) -> None:
        self.parent = parent
        self.index = index

    def result(self, timeout: Optional[float] = None):
        return self.parent.result(timeout)[self.index]

    def done(self) -> bool:
        return self.parent.done()


def resolve_backend(requested: Optional[str] = None) -> str:
    """The effective backend: explicit request, else $REPRO_BACKEND, else local."""

    backend = requested
    if backend is None:
        backend = os.environ.get(BACKEND_ENV, "").strip().lower() or "local"
    if backend not in SWEEP_BACKENDS:
        raise ValueError(
            f"unknown sweep backend {backend!r} (from "
            f"{'argument/config' if requested else BACKEND_ENV}); "
            f"expected one of {SWEEP_BACKENDS}"
        )
    return backend


def resolve_jobs(requested: int = 0) -> int:
    """The effective worker count: explicit request, else $REPRO_JOBS, else 1."""

    if requested and requested > 0:
        return requested
    env = os.environ.get(JOBS_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError as exc:
            raise ValueError(
                f"{JOBS_ENV}={env!r} is not an integer worker count"
            ) from exc
    return 1


class SweepExecutor:
    """Executes a batch of :class:`RunTask`, preserving task order."""

    jobs: int = 1

    def execute(self, tasks: Sequence[RunTask]) -> List[object]:
        raise NotImplementedError

    def submit(self, task: RunTask):
        """Dispatch one task, returning a future-like object.

        The returned object offers ``result()`` / ``done()``.  Process
        pools return real :class:`concurrent.futures.Future` instances
        (tasks run eagerly in workers); the serial backend returns a
        :class:`_LazyFuture` that executes on demand.
        """

        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled resources (idempotent)."""


class SerialSweepExecutor(SweepExecutor):
    """Runs every task in-process through the owning runner."""

    def __init__(self, runner) -> None:
        self._runner = runner

    def execute(self, tasks: Sequence[RunTask]) -> List[object]:
        return [evaluate_task(self._runner, task) for task in tasks]

    def submit(self, task: RunTask) -> _LazyFuture:
        return _LazyFuture(lambda: evaluate_task(self._runner, task))


# ---------------------------------------------------------------------- #
# Worker-process side.  The initializer builds one ExperimentRunner per
# process from the pickled harness config; mixes and standalone baselines
# are memoised per worker, so a worker that receives several grid points of
# the same mix regenerates its traces only once.
# ---------------------------------------------------------------------- #
_WORKER_RUNNER = None


def _worker_init(harness_config) -> None:
    global _WORKER_RUNNER
    from repro.analysis.experiments import ExperimentRunner

    _WORKER_RUNNER = ExperimentRunner(harness_config, _api_owned=True)


def _worker_execute(task: RunTask):
    if _WORKER_RUNNER is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("sweep worker used before initialisation")
    return evaluate_task(_WORKER_RUNNER, task)


class ProcessPoolSweepExecutor(SweepExecutor):
    """Shards tasks across worker processes; results return in task order."""

    def __init__(self, harness_config, jobs: int) -> None:
        if jobs < 2:
            raise ValueError("a process pool needs at least two workers")
        # Workers run strictly serially (jobs=1) on the local backend: no
        # nested pools, and no worker hosting a cluster broker because the
        # parent environment exports REPRO_BACKEND=cluster.
        self._worker_config = dataclasses.replace(harness_config, jobs=1,
                                                  backend="local")
        self.jobs = jobs
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_worker_init,
                initargs=(self._worker_config,),
            )
        return self._pool

    def execute(self, tasks: Sequence[RunTask]) -> List[object]:
        if not tasks:
            return []
        pool = self._ensure_pool()
        # chunksize=1: grid points cost seconds each, so fine-grained
        # dispatch load-balances better than chunking.
        return list(pool.map(_worker_execute, tasks, chunksize=1))

    def submit(self, task: RunTask):
        return self._ensure_pool().submit(_worker_execute, task)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


def make_executor(runner) -> SweepExecutor:
    """Build the executor selected by ``runner.config`` / the environment.

    ``backend`` (config field, else ``$REPRO_BACKEND``) picks the fabric:
    ``"cluster"`` hosts a :class:`repro.cluster.ClusterExecutor` broker;
    ``"local"`` picks serial vs process pool by ``jobs``/``$REPRO_JOBS``.
    """

    config = runner.config
    backend = resolve_backend(getattr(config, "backend", None))
    if backend == "cluster":
        from repro.cluster.executor import ClusterExecutor

        return ClusterExecutor(
            config,
            broker=getattr(config, "broker", None),
            workers=getattr(config, "cluster_workers", 0),
            cache=runner.disk_cache,
        )
    jobs = resolve_jobs(getattr(config, "jobs", 0))
    if jobs <= 1:
        return SerialSweepExecutor(runner)
    return ProcessPoolSweepExecutor(config, jobs)

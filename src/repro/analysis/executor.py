"""Pluggable sweep execution: serial and multi-process backends.

The experiment harness drives every paper figure from the same
embarrassingly parallel grid of (mix, mechanism, N_RH, BreakHammer)
simulation runs.  :class:`SweepExecutor` abstracts *how* that grid is
executed:

* :class:`SerialSweepExecutor` — in-process, one run at a time; the
  reference behaviour (and what workers themselves use);
* :class:`ProcessPoolSweepExecutor` — shards tasks across a
  ``concurrent.futures.ProcessPoolExecutor``.  Each worker process builds
  its own :class:`~repro.analysis.experiments.ExperimentRunner` from the
  pickled :class:`~repro.analysis.experiments.HarnessConfig` and
  **regenerates traces deterministically from (config, seed)** — traces are
  never shipped by value.  Only the picklable
  :class:`~repro.sim.stats.RunStatistics` results travel back.

Simulations are deterministic functions of their configuration, so a
parallel sweep produces results bit-identical to a serial one
(``tests/test_sweep_executor.py`` pins this contract).

Worker count selection: ``HarnessConfig.jobs`` when positive, else the
``REPRO_JOBS`` environment variable, else 1 (serial).
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

#: Environment variable selecting the sweep worker count.
JOBS_ENV = "REPRO_JOBS"

#: Task kinds understood by the executors.
TASK_RUN = "run"
TASK_ALONE = "alone"


@dataclass(frozen=True)
class RunTask:
    """One unit of sweep work, picklable and self-describing.

    ``kind`` is ``"run"`` (one grid-point simulation, the result is a
    :class:`RunStatistics`) or ``"alone"`` (the standalone-IPC baseline of
    one trace of a mix, the result is an :class:`AloneResult`).
    """

    kind: str
    mix_name: str
    seed: int = 0
    mechanism: str = "none"
    nrh: int = 0
    breakhammer: bool = False
    trace_index: int = 0


@dataclass(frozen=True)
class AloneResult:
    """The standalone-IPC baseline of one trace (picklable)."""

    trace_name: str
    trace_length: int
    ipc: float


def evaluate_task(runner, task: RunTask):
    """Execute one task against ``runner`` (parent or worker side)."""

    if task.kind == TASK_RUN:
        return runner.run(task.mix_name, task.mechanism, task.nrh,
                          task.breakhammer, seed=task.seed)
    if task.kind == TASK_ALONE:
        mix = runner.mix(task.mix_name, task.seed)
        trace = mix.traces[task.trace_index]
        return AloneResult(trace_name=trace.name, trace_length=len(trace),
                           ipc=runner.alone_ipc(trace))
    raise ValueError(f"unknown sweep task kind {task.kind!r}")


def resolve_jobs(requested: int = 0) -> int:
    """The effective worker count: explicit request, else $REPRO_JOBS, else 1."""

    if requested and requested > 0:
        return requested
    env = os.environ.get(JOBS_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError as exc:
            raise ValueError(
                f"{JOBS_ENV}={env!r} is not an integer worker count"
            ) from exc
    return 1


class SweepExecutor:
    """Executes a batch of :class:`RunTask`, preserving task order."""

    jobs: int = 1

    def execute(self, tasks: Sequence[RunTask]) -> List[object]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled resources (idempotent)."""


class SerialSweepExecutor(SweepExecutor):
    """Runs every task in-process through the owning runner."""

    def __init__(self, runner) -> None:
        self._runner = runner

    def execute(self, tasks: Sequence[RunTask]) -> List[object]:
        return [evaluate_task(self._runner, task) for task in tasks]


# ---------------------------------------------------------------------- #
# Worker-process side.  The initializer builds one ExperimentRunner per
# process from the pickled harness config; mixes and standalone baselines
# are memoised per worker, so a worker that receives several grid points of
# the same mix regenerates its traces only once.
# ---------------------------------------------------------------------- #
_WORKER_RUNNER = None


def _worker_init(harness_config) -> None:
    global _WORKER_RUNNER
    from repro.analysis.experiments import ExperimentRunner

    _WORKER_RUNNER = ExperimentRunner(harness_config)


def _worker_execute(task: RunTask):
    if _WORKER_RUNNER is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("sweep worker used before initialisation")
    return evaluate_task(_WORKER_RUNNER, task)


class ProcessPoolSweepExecutor(SweepExecutor):
    """Shards tasks across worker processes; results return in task order."""

    def __init__(self, harness_config, jobs: int) -> None:
        if jobs < 2:
            raise ValueError("a process pool needs at least two workers")
        # Workers run strictly serially (jobs=1): no nested pools.
        self._worker_config = dataclasses.replace(harness_config, jobs=1)
        self.jobs = jobs
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_worker_init,
                initargs=(self._worker_config,),
            )
        return self._pool

    def execute(self, tasks: Sequence[RunTask]) -> List[object]:
        if not tasks:
            return []
        pool = self._ensure_pool()
        # chunksize=1: grid points cost seconds each, so fine-grained
        # dispatch load-balances better than chunking.
        return list(pool.map(_worker_execute, tasks, chunksize=1))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


def make_executor(runner) -> SweepExecutor:
    """Build the executor selected by ``runner.config`` / ``$REPRO_JOBS``."""

    jobs = resolve_jobs(getattr(runner.config, "jobs", 0))
    if jobs <= 1:
        return SerialSweepExecutor(runner)
    return ProcessPoolSweepExecutor(runner.config, jobs)

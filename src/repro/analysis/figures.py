"""Small containers for reproduced figures and tables.

Every experiment in :mod:`repro.analysis.experiments` returns one of these,
so benchmarks, examples, and tests can consume results uniformly and the
report module can render them as text tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class FigureSeries:
    """One line/bar group of a figure: a label and y-values over x-values.

    ``stats`` is the optional seed-axis view: one
    :class:`~repro.analysis.aggregate.SeriesStats` per x point when the
    figure aggregated more than one seed (``values`` then holds the
    per-point means), ``None`` for single-seed (scalar) figures.
    """

    label: str
    values: List[float]
    stats: Optional[List[object]] = None

    def __post_init__(self) -> None:
        self.values = [float(v) for v in self.values]

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0


@dataclass
class FigureData:
    """A reproduced figure: x-axis, named series, and metadata."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    x_values: List[object]
    series: Dict[str, FigureSeries] = field(default_factory=dict)
    notes: str = ""

    def add_series(self, label: str, values: Sequence[float],
                   stats: Optional[Sequence[object]] = None) -> FigureSeries:
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {label!r} has {len(values)} values but the figure "
                f"has {len(self.x_values)} x points"
            )
        if stats is not None and len(stats) != len(self.x_values):
            raise ValueError(
                f"series {label!r} has {len(stats)} stats cells but the "
                f"figure has {len(self.x_values)} x points"
            )
        series = FigureSeries(label=label, values=list(values),
                              stats=list(stats) if stats is not None else None)
        self.series[label] = series
        return series

    def get(self, label: str) -> FigureSeries:
        return self.series[label]

    def labels(self) -> List[str]:
        return list(self.series)

    def as_rows(self) -> List[Dict[str, object]]:
        """Row-per-x representation (handy for CSV-ish dumps and tests)."""

        rows = []
        for idx, x in enumerate(self.x_values):
            row: Dict[str, object] = {self.x_label: x}
            for label, series in self.series.items():
                row[label] = series.values[idx]
            rows.append(row)
        return rows

    def as_dict(self) -> Dict[str, object]:
        """A plain-data snapshot of the whole figure.

        Used to persist figure aggregates and to compare two
        independently computed figures (e.g. a parallel sweep against the
        serial reference) value-for-value.
        """

        data = {
            "figure_id": self.figure_id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "x_values": list(self.x_values),
            "series": {
                label: list(series.values)
                for label, series in self.series.items()
            },
            "notes": self.notes,
        }
        # The seed-axis statistics appear only when a series carries them
        # (multi-seed aggregation): single-seed snapshots stay bit-identical
        # to the pre-statistics schema.
        series_stats = {
            label: [cell.as_dict() for cell in series.stats]
            for label, series in self.series.items()
            if series.stats
        }
        if series_stats:
            data["series_stats"] = series_stats
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FigureData":
        """Rebuild a figure from :meth:`as_dict` output (CLI JSON dumps)."""

        figure = cls(
            figure_id=data["figure_id"],
            title=data["title"],
            x_label=data["x_label"],
            y_label=data["y_label"],
            x_values=list(data["x_values"]),
            notes=data.get("notes", ""),
        )
        series_stats = data.get("series_stats", {})
        for label, values in data.get("series", {}).items():
            stats = None
            if label in series_stats:
                from repro.analysis.aggregate import SeriesStats

                stats = [SeriesStats.from_dict(cell)
                         for cell in series_stats[label]]
            figure.add_series(label, values, stats=stats)
        return figure


@dataclass
class TableData:
    """A reproduced table: ordered column names and row dictionaries."""

    table_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, row: Dict[str, object]) -> None:
        missing = [c for c in self.columns if c not in row]
        if missing:
            raise ValueError(f"row is missing columns: {missing}")
        self.rows.append(row)

    def column(self, name: str) -> List[object]:
        return [row[name] for row in self.rows]

    def as_dict(self) -> Dict[str, object]:
        """A plain-data snapshot of the whole table (see FigureData)."""

        return {
            "table_id": self.table_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TableData":
        """Rebuild a table from :meth:`as_dict` output."""

        table = cls(
            table_id=data["table_id"],
            title=data["title"],
            columns=list(data["columns"]),
            notes=data.get("notes", ""),
        )
        for row in data.get("rows", ()):
            table.add_row(dict(row))
        return table

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class ComparisonEntry:
    """One paper-vs-measured record for EXPERIMENTS.md."""

    experiment: str
    quantity: str
    paper_value: str
    measured_value: str
    matches_trend: bool
    comment: str = ""

"""Seed-axis aggregation: every figure value becomes a statistic.

One simulation run is a point estimate; a spec with several ``seeds``
produces one *sample* per seed for every figure cell (series label ×
x value).  This module owns the reduction from per-seed figure frames to
the statistics the figures, reports, and the CLI expose:

* :class:`SeriesStats` — the value object behind one figure cell: sample
  count, mean, sample standard deviation, and the 95% confidence-interval
  half-width.  A single-sample cell degrades exactly (mean == the sample,
  std == ci95 == 0.0), which is what keeps single-seed sweeps bit-identical
  to the pre-statistics pipeline.
* :func:`aggregate_figures` — fold the per-seed
  :class:`~repro.analysis.figures.FigureData` frames of one figure into
  one figure whose series values are means and whose cells carry
  :class:`SeriesStats` (only when there is more than one seed: a
  single-frame fold is the identity, so ``seeds=(0,)`` output is the
  legacy output, byte for byte).
* :func:`aggregate_headlines` — the same fold for the headline-number
  dictionaries (key-wise means, keys preserved).

The fold is order-deterministic: frames arrive in ``plan.seeds`` order and
means are computed by a plain left-to-right sum, so serial, process-pool,
and cluster executions of the same spec aggregate bit-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.figures import FigureData

#: Two-sided 95% normal quantile used for the CI half-width.  The z
#: approximation (rather than Student's t) keeps the reduction dependency-
#: free and monotone in n; adaptive campaigns only compare widths against
#: a target, so the constant choice is a calibration, not a correctness,
#: decision.
Z_95 = 1.96


@dataclass(frozen=True)
class SeriesStats:
    """Statistics of one figure cell across the seed axis.

    ``n`` samples, their ``mean``, the sample standard deviation ``std``
    (ddof=1; 0.0 when n == 1), and ``ci95`` — the half-width of the 95%
    confidence interval of the mean (``Z_95 * std / sqrt(n)``; 0.0 when
    n == 1).  The interval is ``mean ± ci95``.
    """

    n: int
    mean: float
    std: float
    ci95: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "SeriesStats":
        if not samples:
            raise ValueError("SeriesStats needs at least one sample")
        n = len(samples)
        mean = sum(samples) / n
        if n == 1:
            return cls(n=1, mean=mean, std=0.0, ci95=0.0)
        variance = sum((value - mean) ** 2 for value in samples) / (n - 1)
        std = math.sqrt(variance)
        return cls(n=n, mean=mean, std=std, ci95=Z_95 * std / math.sqrt(n))

    def as_dict(self) -> Dict[str, float]:
        return {"n": self.n, "mean": self.mean, "std": self.std,
                "ci95": self.ci95}

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "SeriesStats":
        return cls(n=int(data["n"]), mean=float(data["mean"]),
                   std=float(data["std"]), ci95=float(data["ci95"]))


def aggregate_figures(frames: Sequence[FigureData]) -> FigureData:
    """Fold per-seed figure frames into one mean ± CI figure.

    A single frame returns unchanged — the identity fold is what keeps
    ``seeds=(0,)`` sweeps bit-identical to the legacy scalar pipeline.
    Several frames must share structure (x values and series labels, which
    they do by construction: every frame reads the same sweep plan); the
    result's series values are per-cell means and every series carries a
    per-cell :class:`SeriesStats` list.
    """

    if not frames:
        raise ValueError("aggregate_figures needs at least one frame")
    first = frames[0]
    if len(frames) == 1:
        return first
    for frame in frames[1:]:
        if frame.x_values != first.x_values \
                or list(frame.series) != list(first.series):
            raise ValueError(
                f"per-seed frames of {first.figure_id} disagree on "
                "structure; frames must come from one sweep plan"
            )
    result = FigureData(
        figure_id=first.figure_id,
        title=first.title,
        x_label=first.x_label,
        y_label=first.y_label,
        x_values=list(first.x_values),
        notes=first.notes,
    )
    for label in first.series:
        stats = [
            SeriesStats.from_samples(
                [frame.series[label].values[index] for frame in frames]
            )
            for index in range(len(first.x_values))
        ]
        result.add_series(label, [cell.mean for cell in stats], stats=stats)
    return result


def aggregate_headlines(samples: Sequence[Dict[str, float]]
                        ) -> Dict[str, float]:
    """Key-wise mean of per-seed headline-number dictionaries.

    Keys (and their order) come from the first sample, so the multi-seed
    headline dictionary is shaped exactly like the single-seed one; a
    single sample returns unchanged.
    """

    if not samples:
        raise ValueError("aggregate_headlines needs at least one sample")
    first = samples[0]
    if len(samples) == 1:
        return first
    return {
        key: sum(sample[key] for sample in samples) / len(samples)
        for key in first
    }


def wide_cells(figure: FigureData, target_ci: float) -> List[tuple]:
    """The (label, x value) cells whose CI half-width exceeds ``target_ci``.

    Cells without statistics (single-seed figures) are never wide — their
    CI is degenerate, not unknown.  Adaptive campaigns
    (:meth:`repro.api.Session.figure` with ``target_ci=``) escalate seeds
    for exactly these cells.
    """

    cells = []
    for label, series in figure.series.items():
        if not series.stats:
            continue
        for index, x in enumerate(figure.x_values):
            if series.stats[index].ci95 > target_ci:
                cells.append((label, x))
    return cells

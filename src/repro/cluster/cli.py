"""``python -m repro.cluster`` — standalone broker and worker entry points.

The broker side executes a declarative experiment spec with the cluster
backend, listening for workers while it streams figures::

    python -m repro.cluster broker sweep.toml --listen 0.0.0.0:7777 \
        --cache-dir ~/.cache/repro --figures fig6,fig8
    python -m repro.cluster broker --profile smoke --listen unix:/tmp/b.sock \
        --workers 2                      # self-contained: spawns 2 locally

The worker side connects to a broker (any number of times, from any host
that can reach it) and serves grid points until released::

    python -m repro.cluster worker --connect HOST:7777 --jobs 4
    python -m repro.cluster worker --connect unix:/tmp/b.sock

``--jobs N`` starts N independent worker processes — each one its own
connection, its own runner, its own serial simulation loop (pure-Python
simulations only scale across processes).  ``--spec FILE`` pins the spec a
worker is willing to serve: a broker running anything else rejects it at
handshake instead of letting it compute garbage.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.cluster.worker import (
    CRASH_AFTER_ENV,
    _worker_environment,
    worker_loop,
)
from repro.cluster.protocol import parse_address


def _cmd_broker(args: argparse.Namespace) -> int:
    from repro.analysis.report import render_figure
    from repro.api.cli import _parse_figures, DEFAULT_FIGURES
    from repro.api.session import Session
    from repro.api.spec import ExperimentSpec, SpecFile, load_spec
    from repro.cluster import cluster_broker

    if args.spec is not None:
        spec_file = load_spec(args.spec)
    elif args.profile is not None:
        spec_file = SpecFile(spec=ExperimentSpec.profile(args.profile))
    else:
        raise SystemExit("broker: need a spec file or --profile")
    figures = _parse_figures(args.figures,
                             spec_file.figures or DEFAULT_FIGURES)
    cache_dir = (args.cache_dir if args.cache_dir is not None
                 else spec_file.cache_dir)
    out_dir = Path(args.out) if args.out else None
    with Session(spec_file.spec, cache_dir=cache_dir, engine=args.engine,
                 backend="cluster", broker=args.listen,
                 workers=args.workers) as session:
        broker = cluster_broker(session)
        print(f"broker listening on {broker.address} | "
              f"fingerprint {session.fingerprint} | "
              f"cache={'on' if session.cache else 'off'} | "
              f"connect workers with: python -m repro.cluster worker "
              f"--connect {broker.address}", flush=True)
        if args.wait_workers:
            broker.wait_for_workers(args.wait_workers)
        wanted = [f for f in figures if f != "headline"]
        results = session.figures(wanted)
        for figure_id in wanted:
            figure = results[figure_id]
            print()
            print(render_figure(figure))
            if out_dir is not None:
                out_dir.mkdir(parents=True, exist_ok=True)
                (out_dir / f"{figure_id}.json").write_text(
                    json.dumps(figure.as_dict(), indent=2) + "\n",
                    encoding="utf-8",
                )
        if "headline" in figures:
            numbers = session.headline_numbers()
            print()
            for key, value in numbers.items():
                print(f"{key}: {value:.4f}")
        stats = broker.stats()
        print(f"\n{session.runs_executed} simulation(s) executed by "
              f"{broker.workers_seen} worker connection(s); "
              f"{broker.requeued_points} point(s) requeued, "
              f"{broker.workers_rejected} worker(s) rejected; "
              f"scheduling={stats['scheduling']} "
              f"({stats['scheduled_by_cost']} point(s) cost-ordered, "
              f"{stats['chunked_claims']} chunked claim(s), "
              f"{stats['autoscale_events']} autoscale event(s), "
              f"{stats['cost_model']['learned_keys']} learned cost key(s))"
              + (f"; cache {session.cache.stats()}" if session.cache else ""))
    return 0


def _worker_fingerprint(spec_path: str) -> str:
    """The fingerprint of the spec a ``--spec`` worker pins itself to."""

    from repro.analysis.experiments import HarnessConfig, harness_fingerprint
    from repro.api.session import resolve_execution
    from repro.api.spec import load_spec

    spec_file = load_spec(spec_path)
    plan = resolve_execution(spec_file.spec)
    config = HarnessConfig.from_spec(spec_file.spec.resolved(plan.engine),
                                     jobs=1, cache_dir="")
    return harness_fingerprint(config)


def _cmd_worker(args: argparse.Namespace) -> int:
    address = parse_address(args.connect)
    fingerprint: Optional[str] = (
        _worker_fingerprint(args.spec) if args.spec else None
    )
    crash_after_env = os.environ.get(CRASH_AFTER_ENV, "").strip()
    crash_after = int(crash_after_env) if crash_after_env else None
    if args.jobs <= 1:
        return worker_loop(address, spec_fingerprint=fingerprint,
                           crash_after=crash_after)
    # N independent worker processes, each its own connection + runner.
    command = [sys.executable, "-m", "repro.cluster", "worker",
               "--connect", str(address), "--jobs", "1"]
    if args.spec:
        command += ["--spec", args.spec]
    children = [subprocess.Popen(command, env=_worker_environment())
                for _ in range(args.jobs)]
    return max((child.wait() for child in children), default=0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="Distributed sweep fabric: a broker that executes an "
                    "experiment spec, and socket workers that serve it.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    broker = sub.add_parser("broker",
                            help="host a spec's work queue and stream its "
                                 "figures")
    broker.add_argument("spec", nargs="?", default=None,
                        help="path to a .toml or .json ExperimentSpec file")
    broker.add_argument("--profile",
                        choices=("full", "fast", "smoke", "tiny"),
                        help="use a named profile instead of a spec file")
    broker.add_argument("--listen", default=None,
                        help="listen address: HOST:PORT (0 = ephemeral) or "
                             "unix:/path (default: 127.0.0.1 ephemeral)")
    broker.add_argument("--figures", default=None,
                        help="comma-separated figure ids (default: the spec "
                             "file's list, else fig2,fig6,fig7,fig8)")
    broker.add_argument("--workers", type=int, default=0,
                        help="also spawn N co-located worker processes")
    broker.add_argument("--wait-workers", type=int, default=0,
                        help="block until N workers connected before "
                             "sweeping")
    broker.add_argument("--cache-dir", default=None,
                        help="shared persistent run-cache directory "
                             "(results are written through as they arrive; "
                             "a resumed broker skips completed points)")
    broker.add_argument("--engine", choices=("cycle", "fast"), default=None,
                        help="simulation engine (beats spec and "
                             "REPRO_ENGINE)")
    broker.add_argument("--out", default=None,
                        help="directory for per-figure JSON dumps")

    worker = sub.add_parser("worker", help="serve grid points to a broker")
    worker.add_argument("--connect", required=True,
                        help="broker address: HOST:PORT or unix:/path")
    worker.add_argument("--jobs", type=int, default=1,
                        help="worker processes to run (each its own "
                             "connection; default 1)")
    worker.add_argument("--spec", default=None,
                        help="pin the spec this worker serves; a broker "
                             "running a different spec rejects it at "
                             "handshake")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "broker":
        return _cmd_broker(args)
    if args.command == "worker":
        return _cmd_worker(args)
    raise SystemExit(f"unknown command {args.command!r}")

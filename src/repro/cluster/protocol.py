"""Wire protocol of the broker/worker sweep fabric.

Every message travelling between a :class:`~repro.cluster.broker.ClusterBroker`
and a worker is one *frame*: a fixed header (magic tag, CRC32 of the body,
body length) followed by a pickled ``(kind, payload)`` tuple.  The framing
discipline is the same one the on-disk :class:`~repro.analysis.runcache.RunCache`
v2 entries use — a truncated, bit-flipped, or foreign byte stream is
*detected* (:class:`FrameError`), never mis-decoded: the receiving side drops
the connection and the broker requeues whatever that worker had in flight,
so a damaged frame costs one recomputation, not a wrong figure.

Work is addressed by **(spec fingerprint, run key)**: the broker stamps its
fingerprint into the config handshake and every ``work`` frame, and a worker
refuses to compute for a fingerprint it was not built for — a stale worker
is rejected loudly instead of silently contributing garbage.

The payload is a pickle, so the protocol is for a **trusted fabric only**
(the broker and its workers run as one user on one machine or one private
network), exactly like the pickles the process-pool executor already ships.

Message kinds::

    worker -> broker   hello    {version, fingerprint | None}
    broker -> worker   config   {config: HarnessConfig, fingerprint, }
    worker -> broker   ready    {fingerprint}
    broker -> worker   reject   {reason}
    broker -> worker   work     {tasks: [RunTask, ...], fingerprint}
    worker -> broker   result   {task, outcome, entries: [(run_key, stats)],
                                 elapsed: seconds}
    worker -> broker   error    {task, message}
    broker -> worker   shutdown {}

A ``work`` frame carries a *claim*: one expensive task, or several cheap
ones chunked together (the broker's cost model decides — see
:mod:`repro.cluster.costs`); the worker answers with one ``result`` or
``error`` frame per task, in claim order, each stamped with the observed
``elapsed`` seconds that feed the broker's online cost model.
"""

from __future__ import annotations

import errno
import os
import pickle
import socket
import struct
import zlib
from dataclasses import dataclass
from typing import Optional, Tuple

#: Bump on any incompatible change to the message schema.
#: v2: ``work`` carries a task list (chunked claims) and ``result`` is
#: stamped with the worker's observed ``elapsed`` seconds.
PROTOCOL_VERSION = 2

#: Frame header: magic, CRC32 of the body, body length.
_FRAME_MAGIC = b"RCLU"
_FRAME_HEADER = struct.Struct("<4sIQ")

#: Upper bound on one frame body; anything larger is a corrupt length field
#: (the biggest legitimate frame is a config or RunStatistics pickle, far
#: below this).
MAX_FRAME_BYTES = 1 << 30

# Message kinds.
HELLO = "hello"
CONFIG = "config"
READY = "ready"
REJECT = "reject"
WORK = "work"
RESULT = "result"
ERROR = "error"
SHUTDOWN = "shutdown"


class ProtocolError(Exception):
    """Base class of everything that can go wrong on the wire."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection at a clean frame boundary."""


class FrameError(ProtocolError):
    """A frame arrived truncated, corrupted, or foreign.

    The connection is unusable after this (the stream position is lost);
    the broker requeues the worker's in-flight point and recomputes it.
    """


def send_message(sock: socket.socket, kind: str, **payload) -> None:
    """Serialise and send one ``(kind, payload)`` frame."""

    body = pickle.dumps((kind, payload), protocol=pickle.HIGHEST_PROTOCOL)
    header = _FRAME_HEADER.pack(_FRAME_MAGIC, zlib.crc32(body), len(body))
    sock.sendall(header + body)


def _recv_exact(sock: socket.socket, count: int,
                boundary: bool = False) -> bytes:
    """Read exactly ``count`` bytes.

    ``boundary=True`` marks a read that starts a new frame: EOF there is a
    clean :class:`ConnectionClosed`; EOF anywhere else means the peer died
    mid-frame and raises :class:`FrameError`.
    """

    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except OSError as exc:
            raise FrameError(f"socket error mid-frame: {exc}") from exc
        if not chunk:
            if boundary and remaining == count:
                raise ConnectionClosed("peer closed the connection")
            raise FrameError(
                f"connection closed mid-frame ({count - remaining}/{count} "
                "bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Tuple[str, dict]:
    """Receive one frame; validate magic, length, and CRC before unpickling."""

    header = _recv_exact(sock, _FRAME_HEADER.size, boundary=True)
    magic, crc, length = _FRAME_HEADER.unpack(header)
    if magic != _FRAME_MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds the protocol bound")
    body = _recv_exact(sock, length)
    if zlib.crc32(body) != crc:
        raise FrameError("frame CRC mismatch (corrupt body)")
    try:
        message = pickle.loads(body)
    except Exception as exc:
        raise FrameError(f"frame body does not unpickle: {exc!r}") from exc
    if (not isinstance(message, tuple) or len(message) != 2
            or not isinstance(message[0], str)
            or not isinstance(message[1], dict)):
        raise FrameError(f"malformed message {type(message).__name__}")
    return message


# ---------------------------------------------------------------------- #
# Addresses: "host:port" TCP endpoints or "unix:/path" sockets.
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class Address:
    """A broker endpoint: TCP ``host:port`` or a Unix domain socket path."""

    kind: str  # "tcp" | "unix"
    host: str = ""
    port: int = 0
    path: str = ""

    def __str__(self) -> str:
        if self.kind == "unix":
            return f"unix:{self.path}"
        return f"{self.host}:{self.port}"


def parse_address(text) -> Address:
    """Parse ``host:port`` / ``unix:/path`` (an :class:`Address` passes through)."""

    if isinstance(text, Address):
        return text
    text = str(text).strip()
    if text.startswith("unix:"):
        path = text[len("unix:"):]
        if not path:
            raise ValueError("unix: address needs a socket path")
        return Address(kind="unix", path=path)
    host, sep, port = text.rpartition(":")
    if not sep:
        raise ValueError(
            f"broker address {text!r} is neither 'host:port' nor 'unix:/path'"
        )
    try:
        return Address(kind="tcp", host=host or "127.0.0.1", port=int(port))
    except ValueError as exc:
        raise ValueError(f"bad port in broker address {text!r}") from exc


def _unix_socket_is_live(path: str) -> bool:
    """Whether something is actually accepting on a Unix socket path."""

    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        probe.settimeout(1.0)
        probe.connect(path)
    except OSError:
        return False
    else:
        return True
    finally:
        probe.close()


def bind_listener(address: Address) -> Tuple[socket.socket, Address]:
    """Bind + listen on ``address``; returns (socket, the bound address).

    TCP port 0 binds an ephemeral port; the returned address carries the
    real one, which is what workers must be pointed at.
    """

    if address.kind == "unix":
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            listener.bind(address.path)
        except OSError as exc:
            if exc.errno != errno.EADDRINUSE:
                listener.close()
                raise
            if _unix_socket_is_live(address.path):
                listener.close()
                raise
            # A previous broker died without unlinking its socket file;
            # nobody is listening behind it, so reclaim the path (a
            # crash-restarted broker must be able to resume).
            os.unlink(address.path)
            listener.bind(address.path)
        listener.listen(16)
        return listener, address
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((address.host or "127.0.0.1", address.port))
    listener.listen(16)
    host, port = listener.getsockname()[:2]
    return listener, Address(kind="tcp", host=host, port=port)


def connect(address: Address, timeout: Optional[float] = None
            ) -> socket.socket:
    """Open a client connection to a broker endpoint."""

    address = parse_address(address)
    if address.kind == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if timeout is not None:
            sock.settimeout(timeout)
        sock.connect(address.path)
    else:
        sock = socket.create_connection((address.host, address.port),
                                        timeout=timeout)
    sock.settimeout(None)
    return sock

"""Per-point cost model for cost-aware cluster scheduling.

The broker schedules blind without this: a 100ms fast-engine point and a
multi-second cycle-engine point are the same "one task" to a FIFO queue.
:class:`CostModel` predicts seconds per :class:`~repro.analysis.executor.RunTask`
so the broker can dispatch longest-job-first and hand cheap points out in
chunks (see :mod:`repro.cluster.broker`).

Predictions have two tiers:

* **static** — a cold-start estimate from features that exist before any
  point has run: engine weight (cycle ≫ batch ≳ fast), trace entries per
  mix (cores × entries, plus the attacker trace on attack mixes), an
  N_RH pressure factor (lower thresholds mean more mitigations), and the
  mechanism class; batch tasks cost roughly the sum of their lanes.
* **learned** — observed wall-clock seconds folded into an EWMA keyed by
  ``(kind, engine, mix, mechanism-class)``.  Workers stamp ``elapsed``
  into every ``result`` frame; the broker calls :meth:`observe`.

Only the *ordering* of predictions matters for scheduling — an estimate
off by 2x still sorts cycle points ahead of fast points — so the static
calibration constants are deliberately coarse.

The learned table persists as ``costs.json`` next to the run-cache
entries of the spec's fingerprint directory (``RunCache.directory``), so
a later campaign over the same cache starts warm.  The file is advisory:
a missing, stale, or corrupt table falls back to static predictions.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, Optional

from repro.analysis.executor import TASK_ALONE, TASK_BATCH, TASK_RUN

#: Relative engine weight of one simulated trace entry.  The cycle engine
#: steps every core every DRAM cycle; the fast engine replays each access
#: once; the batch engine amortises the interpreter loop across lanes.
_ENGINE_WEIGHT = {"cycle": 25.0, "batch": 1.1, "fast": 1.0}

#: Seconds per (fast-engine) trace entry — a coarse single-machine
#: calibration; ordering, not accuracy, is what scheduling needs.
_SECONDS_PER_ENTRY = 2.5e-5

#: Mechanism-class work factors: gating mechanisms (blockhammer) throttle
#: the request stream itself, tracked mechanisms pay per-mitigation work,
#: and unprotected runs skip the mitigation path entirely.
_CLASS_WEIGHT = {"none": 0.85, "gating": 1.1, "mitigated": 1.0}

#: Mechanisms that gate/throttle rather than refresh-mitigate.
_GATING_MECHANISMS = frozenset({"blockhammer"})

#: Serialised table schema version.
_TABLE_VERSION = 1


def mechanism_class(name: Optional[str]) -> str:
    """Coarse mechanism grouping used as the EWMA key's last component."""

    lowered = (name or "none").lower()
    if lowered in ("none", "alone"):
        return "none"
    if lowered in _GATING_MECHANISMS:
        return "gating"
    return "mitigated"


def describe_task(task) -> str:
    """A human-readable one-line name for diagnostics and errors."""

    if task.kind == TASK_ALONE:
        return (f"alone[{task.mix_name}#{task.trace_index} "
                f"seed={task.seed}]")
    if task.kind == TASK_BATCH:
        return f"batch[{len(task.group)}x {task.mix_name}]"
    return (f"run[{task.mix_name}/{task.mechanism}/nrh={task.nrh}"
            f"{'/bh' if task.breakhammer else ''}/seed={task.seed}]")


class CostModel:
    """Predicted seconds per task: static cold-start + online EWMA.

    ``config`` is the worker-side :class:`HarnessConfig` (trace lengths
    and the engine live there); ``path`` is the optional JSON persistence
    location.  Thread-safe: the broker observes from handler threads while
    the scheduler predicts from others.
    """

    def __init__(self, config, path: Optional[Path] = None,
                 alpha: float = 0.3) -> None:
        self.config = config
        self.path = Path(path) if path is not None else None
        self.alpha = alpha
        self.observations = 0
        self._table: Dict[str, float] = {}
        self._lock = threading.Lock()
        if self.path is not None:
            self.load()

    @classmethod
    def for_cache(cls, config, cache) -> "CostModel":
        """A model persisting next to ``cache``'s entries (or in-memory)."""

        path = (Path(cache.directory) / "costs.json"
                if cache is not None else None)
        return cls(config, path=path)

    def __len__(self) -> int:
        with self._lock:
            return len(self._table)

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def _key(self, task) -> str:
        if task.kind == TASK_ALONE:
            return f"alone|{self.config.engine}|{task.mix_name}|none"
        return (f"run|{self.config.engine}|{task.mix_name}|"
                f"{mechanism_class(task.mechanism)}")

    def predict(self, task) -> float:
        """Predicted seconds for ``task`` (learned if seen, else static)."""

        if task.kind == TASK_BATCH:
            # Batch lanes share the per-cycle array program: learned
            # per-lane seconds already include that amortisation, static
            # ones get a mild discount over the solo sum.
            total = 0.0
            learned = True
            for member in task.group:
                with self._lock:
                    seconds = self._table.get(self._key(member))
                if seconds is None:
                    learned = False
                    seconds = self._static_seconds(member)
                total += seconds
            return total if learned else 0.85 * total
        with self._lock:
            seconds = self._table.get(self._key(task))
        if seconds is not None:
            return seconds
        return self._static_seconds(task)

    def _static_seconds(self, task) -> float:
        cfg = self.config
        weight = _ENGINE_WEIGHT.get(cfg.engine, 1.0)
        if task.kind == TASK_ALONE:
            # One trace on one core; attacker traces are the longest.
            entries = max(cfg.entries_per_core, cfg.attacker_entries)
            return max(1e-4, entries * weight * _SECONDS_PER_ENTRY
                       * _CLASS_WEIGHT["none"])
        cores = max(1, len(task.mix_name))
        entries = cfg.entries_per_core * cores
        if any(ch in task.mix_name for ch in "AD"):
            entries += cfg.attacker_entries
        klass = _CLASS_WEIGHT[mechanism_class(task.mechanism)]
        # Lower thresholds trigger more mitigation work; a gentle sublinear
        # pressure term keeps nrh=64 above nrh=4096 without dwarfing the
        # engine/size features.
        nrh = max(1, int(task.nrh) or cfg.nrh_default)
        pressure = 1.0 + 0.25 * min(4.0, (cfg.nrh_default / nrh) ** 0.5)
        return max(1e-4,
                   entries * weight * _SECONDS_PER_ENTRY * klass * pressure)

    # ------------------------------------------------------------------ #
    # Online refinement
    # ------------------------------------------------------------------ #
    def observe(self, task, elapsed: Optional[float]) -> None:
        """Fold one observed wall-clock duration into the EWMA table."""

        if elapsed is None or not (elapsed > 0.0):
            return
        if task.kind == TASK_BATCH:
            if not task.group:
                return
            per_lane = elapsed / len(task.group)
            for member in task.group:
                self._observe_key(self._key(member), per_lane)
        else:
            self._observe_key(self._key(task), elapsed)
        # Throttled persistence; the broker saves once more at stop().
        if self.path is not None and self.observations % 8 == 0:
            self.save()

    def _observe_key(self, key: str, seconds: float) -> None:
        with self._lock:
            previous = self._table.get(key)
            if previous is None:
                self._table[key] = seconds
            else:
                self._table[key] = (self.alpha * seconds
                                    + (1.0 - self.alpha) * previous)
            self.observations += 1

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def load(self) -> bool:
        """Load the persisted table if present/valid; ``True`` on success."""

        if self.path is None:
            return False
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return False
        if (not isinstance(raw, dict)
                or raw.get("version") != _TABLE_VERSION
                or not isinstance(raw.get("seconds"), dict)):
            return False
        table = {str(key): float(value)
                 for key, value in raw["seconds"].items()
                 if isinstance(value, (int, float)) and value > 0.0}
        with self._lock:
            self._table.update(table)
        return True

    def save(self) -> None:
        """Atomically persist the learned table (best-effort)."""

        if self.path is None:
            return
        with self._lock:
            payload = {"version": _TABLE_VERSION,
                       "engine": self.config.engine,
                       "seconds": dict(self._table)}
        tmp = self.path.with_suffix(".json.tmp")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(payload, indent=2, sort_keys=True)
                           + "\n", encoding="utf-8")
            tmp.replace(self.path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass

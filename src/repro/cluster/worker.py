"""Worker side of the cluster fabric: claim points, simulate, stream back.

A worker connects to a broker, receives the spec's
:class:`~repro.analysis.experiments.HarnessConfig`, builds its own
:class:`~repro.analysis.experiments.ExperimentRunner` from it (regenerating
traces deterministically, or loading them from the broker's mmap'd columnar
spool when one is reachable — see :mod:`repro.workloads.spool`), and then
loops: receive a ``work`` claim (one expensive
:class:`~repro.analysis.executor.RunTask`, or several cheap ones chunked
together by the broker's cost model), execute each task, and send one
``result`` frame per task — the outcome, the ``(run_key, RunStatistics)``
cache entries the broker writes through to the shared persistent run
cache, and the observed ``elapsed`` seconds that refine the broker's
online cost model.

Fingerprint discipline: the worker echoes the fingerprint its runner
actually computes back to the broker (``ready``) and re-checks the
fingerprint stamped on every ``work`` frame — work for a spec this worker
was not built for is refused, never silently computed.

``spawn_local_workers`` is the programmatic way tests, benchmarks, and
:class:`~repro.cluster.executor.ClusterExecutor` start co-located worker
processes; the operator equivalent is::

    python -m repro.cluster worker --connect HOST:PORT --jobs N
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.executor import (
    TASK_ALONE,
    TASK_BATCH,
    TASK_RUN,
    AloneResult,
    RunTask,
)
from repro.cluster import protocol
from repro.cluster.protocol import Address, ConnectionClosed, ProtocolError

#: Test hook: a worker that finds this variable set to N >= 1 crashes hard
#: (``os._exit``) upon starting its N-th claimed task, *before* computing
#: or replying — the deterministic way to exercise the broker's requeue
#: path.  ``0`` crashes at startup before ever connecting, which is how
#: the dead-fleet path ("every spawned worker exited without serving") is
#: exercised now that a crash *after* a claim counts against that task's
#: requeue bound instead.
CRASH_AFTER_ENV = "REPRO_CLUSTER_CRASH_AFTER"

#: Test hook: a worker that finds this variable set crashes hard upon
#: claiming a ``run`` task with that N_RH value — a deterministic *poison
#: point* that kills every worker that claims it while every other point
#: stays computable.  Exercises the broker's requeue bound.
POISON_NRH_ENV = "REPRO_CLUSTER_POISON_NRH"

#: Test hook: a worker that finds this variable set to N writes N bytes of
#: diagnostics to stderr at startup.  With an un-drained stderr pipe this
#: used to deadlock the worker (and the whole campaign) once the pipe
#: buffer filled; ``spawn_local_workers`` drains continuously now.
STDERR_FLOOD_ENV = "REPRO_CLUSTER_STDERR_FLOOD"


def execute_claimed_task(runner, task: RunTask):
    """Run one task; returns ``(outcome, cache_entries)``.

    ``cache_entries`` is the list of ``(run_key, RunStatistics)`` pairs the
    broker persists to the shared run cache — the worker itself runs with
    its disk cache disabled, so persistence has exactly one owner.
    """

    if task.kind == TASK_RUN:
        key = runner.run_key(task.mix_name, task.mechanism, task.nrh,
                             task.breakhammer, task.seed)
        stats = runner.run(task.mix_name, task.mechanism, task.nrh,
                           task.breakhammer, seed=task.seed)
        return stats, [(key, stats)]
    if task.kind == TASK_ALONE:
        mix = runner.mix(task.mix_name, task.seed)
        trace = mix.traces[task.trace_index]
        stats = runner.alone_baseline(trace)
        outcome = AloneResult(trace_name=trace.name,
                              trace_length=len(trace),
                              ipc=max(1e-6, stats.ipc_of(0)))
        return outcome, [(runner._alone_disk_key(trace), stats)]
    if task.kind == TASK_BATCH:
        stats_list = runner.run_batch_group(task.group)
        entries = [
            (runner.run_key(member.mix_name, member.mechanism, member.nrh,
                            member.breakhammer, member.seed), stats)
            for member, stats in zip(task.group, stats_list)
        ]
        return stats_list, entries
    raise ValueError(f"unknown cluster task kind {task.kind!r}")


def _connect_with_retry(address: Address,
                        timeout: float = 30.0):
    """Dial the broker, retrying briefly (workers may start first)."""

    deadline = time.monotonic() + timeout
    while True:
        try:
            return protocol.connect(address, timeout=10.0)
        except OSError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.2)


def _apply_startup_hooks(crash_after: Optional[int]) -> None:
    """Honour the startup-time test hooks (fleet death, stderr flood)."""

    if crash_after is not None and crash_after <= 0:
        print("worker crash hook: exiting at startup before serving",
              file=sys.stderr, flush=True)
        os._exit(17)
    flood_raw = os.environ.get(STDERR_FLOOD_ENV, "").strip()
    if flood_raw:
        try:
            flood = int(flood_raw)
        except ValueError:
            flood = 0
        line = "worker diagnostic flood: " + "x" * 100 + "\n"
        written = 0
        while written < flood:
            sys.stderr.write(line)
            written += len(line)
        sys.stderr.flush()


def _poison_nrh() -> Optional[int]:
    raw = os.environ.get(POISON_NRH_ENV, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        return None


def worker_loop(address: Address,
                spec_fingerprint: Optional[str] = None,
                crash_after: Optional[int] = None) -> int:
    """Serve one broker connection until shutdown; returns an exit code.

    ``spec_fingerprint`` pins the spec this worker is willing to serve
    (``--spec``): the broker rejects the connection when it does not match,
    which is how stale workers fail fast instead of computing garbage.
    """

    from repro.analysis.experiments import ExperimentRunner

    _apply_startup_hooks(crash_after)
    poison_nrh = _poison_nrh()
    try:
        sock = _connect_with_retry(address)
    except OSError as exc:
        print(f"worker could not reach broker at {address}: {exc}",
              file=sys.stderr)
        return 4
    try:
        protocol.send_message(sock, protocol.HELLO,
                              version=protocol.PROTOCOL_VERSION,
                              fingerprint=spec_fingerprint)
        kind, payload = protocol.recv_message(sock)
        if kind == protocol.REJECT:
            print(f"worker rejected: {payload.get('reason')}",
                  file=sys.stderr)
            return 2
        if kind != protocol.CONFIG:
            print(f"worker expected config, got {kind!r}", file=sys.stderr)
            return 3
        runner = ExperimentRunner(payload["config"], _api_owned=True)
        protocol.send_message(sock, protocol.READY,
                              fingerprint=runner.fingerprint)
        served = 0
        while True:
            try:
                kind, payload = protocol.recv_message(sock)
            except ConnectionClosed:
                return 0  # broker went away; nothing of ours is lost
            if kind == protocol.SHUTDOWN:
                return 0
            if kind == protocol.REJECT:
                print(f"worker rejected: {payload.get('reason')}",
                      file=sys.stderr)
                return 2
            if kind != protocol.WORK:
                print(f"worker expected work, got {kind!r}", file=sys.stderr)
                return 3
            tasks: List[RunTask] = payload["tasks"]
            if payload.get("fingerprint") != runner.fingerprint:
                for task in tasks:
                    protocol.send_message(
                        sock, protocol.ERROR, task=task,
                        message=(
                            f"work addressed to {payload.get('fingerprint')}"
                            f" but this worker serves {runner.fingerprint}"
                        ),
                    )
                return 2
            for task in tasks:
                served += 1
                if crash_after is not None and served >= crash_after:
                    os._exit(17)  # simulate sudden worker death mid-point
                if (poison_nrh is not None and task.kind == TASK_RUN
                        and task.nrh == poison_nrh):
                    os._exit(17)  # deterministic poison point
                started = time.perf_counter()
                try:
                    outcome, entries = execute_claimed_task(runner, task)
                except Exception as exc:  # noqa: BLE001 - sent to broker
                    protocol.send_message(sock, protocol.ERROR, task=task,
                                          message=repr(exc))
                    continue
                protocol.send_message(
                    sock, protocol.RESULT, task=task, outcome=outcome,
                    entries=entries,
                    elapsed=time.perf_counter() - started,
                )
    except (ProtocolError, OSError) as exc:
        # A dead broker (or a frame torn on the wire) ends this worker;
        # whatever it had in flight is the broker's to requeue.
        print(f"worker connection failed: {exc}", file=sys.stderr)
        return 4
    finally:
        try:
            sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------- #
# Local worker processes
# ---------------------------------------------------------------------- #
def _worker_environment(extra_env: Optional[dict] = None) -> dict:
    """The child environment: inherit, but guarantee ``repro`` is importable."""

    import repro

    src_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (src_root + os.pathsep + existing
                             if existing else src_root)
    if extra_env:
        env.update(extra_env)
    return env


def _start_stderr_drain(proc: subprocess.Popen) -> None:
    """Continuously drain ``proc.stderr`` into an in-memory buffer.

    A piped-but-unread stderr deadlocks the child once the OS pipe buffer
    (~64KiB) fills — a chatty worker would block mid-``print`` and the
    whole campaign would stall.  The drain thread keeps the pipe empty
    while preserving every byte for ``reap_workers``' diagnostics.
    """

    if proc.stderr is None:
        return
    buffer = bytearray()

    def pump(stream=proc.stderr, sink=buffer) -> None:
        try:
            while True:
                chunk = stream.read(65536)
                if not chunk:
                    break
                sink.extend(chunk)
        except (OSError, ValueError):
            pass
        finally:
            try:
                stream.close()
            except OSError:
                pass

    thread = threading.Thread(target=pump, name="repro-worker-stderr",
                              daemon=True)
    thread.start()
    proc._repro_stderr_buffer = buffer       # type: ignore[attr-defined]
    proc._repro_stderr_thread = thread       # type: ignore[attr-defined]


def worker_stderr(proc: subprocess.Popen) -> str:
    """The stderr a drained worker produced so far (decoded, stripped)."""

    buffer = getattr(proc, "_repro_stderr_buffer", None)
    if buffer is None:
        return ""
    return bytes(buffer).decode("utf-8", "replace").strip()


def spawn_local_workers(address: Address, count: int,
                        spec_path: Optional[str] = None,
                        extra_env: Optional[dict] = None
                        ) -> List[subprocess.Popen]:
    """Start ``count`` worker processes pointed at ``address``.

    Each child is a fresh interpreter running
    ``python -m repro.cluster worker --connect <address>`` — the same entry
    point an operator uses on a remote host — so what the tests exercise is
    byte-for-byte the production worker path.  stderr is piped *and
    continuously drained* (a flooding worker must not deadlock against its
    own pipe) so a failed worker's diagnostics can be surfaced — see
    ``reap_workers`` / ``worker_stderr``.
    """

    command = [sys.executable, "-m", "repro.cluster", "worker",
               "--connect", str(parse_or_format(address))]
    if spec_path is not None:
        command += ["--spec", spec_path]
    env = _worker_environment(extra_env)
    processes = [
        subprocess.Popen(command, env=env, stdout=subprocess.DEVNULL,
                         stderr=subprocess.PIPE)
        for _ in range(count)
    ]
    for proc in processes:
        _start_stderr_drain(proc)
    return processes


def parse_or_format(address) -> str:
    """The CLI string form of an address (accepts strings verbatim)."""

    if isinstance(address, Address):
        return str(address)
    return str(protocol.parse_address(address))


def reap_workers(processes: Sequence[subprocess.Popen],
                 timeout: float = 10.0) -> List[str]:
    """Wait for worker processes, escalating to kill; returns stderr texts."""

    diagnostics: List[str] = []
    for proc in processes:
        try:
            proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                pass
        thread = getattr(proc, "_repro_stderr_thread", None)
        if thread is not None:
            thread.join(timeout=5.0)
            err = worker_stderr(proc)
        else:
            # Foreign Popen without a drain thread: fall back to a
            # one-shot read now that the process has exited.
            try:
                _out, raw = proc.communicate(timeout=5.0)
            except (subprocess.TimeoutExpired, ValueError):
                raw = b""
            err = (raw or b"").decode("utf-8", "replace").strip()
        if err:
            diagnostics.append(err)
    return diagnostics

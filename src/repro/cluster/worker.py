"""Worker side of the cluster fabric: claim points, simulate, stream back.

A worker connects to a broker, receives the spec's
:class:`~repro.analysis.experiments.HarnessConfig`, builds its own
:class:`~repro.analysis.experiments.ExperimentRunner` from it (regenerating
traces deterministically, or loading them from the broker's mmap'd columnar
spool when one is reachable — see :mod:`repro.workloads.spool`), and then
loops: receive a :class:`~repro.analysis.executor.RunTask`, execute it,
send the outcome back together with the ``(run_key, RunStatistics)`` cache
entries the broker writes through to the shared persistent run cache.

Fingerprint discipline: the worker echoes the fingerprint its runner
actually computes back to the broker (``ready``) and re-checks the
fingerprint stamped on every ``work`` frame — work for a spec this worker
was not built for is refused, never silently computed.

``spawn_local_workers`` is the programmatic way tests, benchmarks, and
:class:`~repro.cluster.executor.ClusterExecutor` start co-located worker
processes; the operator equivalent is::

    python -m repro.cluster worker --connect HOST:PORT --jobs N
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.executor import (
    TASK_ALONE,
    TASK_BATCH,
    TASK_RUN,
    AloneResult,
    RunTask,
)
from repro.cluster import protocol
from repro.cluster.protocol import Address, ConnectionClosed, ProtocolError

#: Test hook: a worker that finds this variable set to N crashes hard
#: (``os._exit``) upon receiving its N-th work frame, *before* computing or
#: replying — the deterministic way to exercise the broker's requeue path.
CRASH_AFTER_ENV = "REPRO_CLUSTER_CRASH_AFTER"


def execute_claimed_task(runner, task: RunTask):
    """Run one task; returns ``(outcome, cache_entries)``.

    ``cache_entries`` is the list of ``(run_key, RunStatistics)`` pairs the
    broker persists to the shared run cache — the worker itself runs with
    its disk cache disabled, so persistence has exactly one owner.
    """

    if task.kind == TASK_RUN:
        key = runner.run_key(task.mix_name, task.mechanism, task.nrh,
                             task.breakhammer, task.seed)
        stats = runner.run(task.mix_name, task.mechanism, task.nrh,
                           task.breakhammer, seed=task.seed)
        return stats, [(key, stats)]
    if task.kind == TASK_ALONE:
        mix = runner.mix(task.mix_name, task.seed)
        trace = mix.traces[task.trace_index]
        stats = runner.alone_baseline(trace)
        outcome = AloneResult(trace_name=trace.name,
                              trace_length=len(trace),
                              ipc=max(1e-6, stats.ipc_of(0)))
        return outcome, [(runner._alone_disk_key(trace), stats)]
    if task.kind == TASK_BATCH:
        stats_list = runner.run_batch_group(task.group)
        entries = [
            (runner.run_key(member.mix_name, member.mechanism, member.nrh,
                            member.breakhammer, member.seed), stats)
            for member, stats in zip(task.group, stats_list)
        ]
        return stats_list, entries
    raise ValueError(f"unknown cluster task kind {task.kind!r}")


def _connect_with_retry(address: Address,
                        timeout: float = 30.0):
    """Dial the broker, retrying briefly (workers may start first)."""

    deadline = time.monotonic() + timeout
    while True:
        try:
            return protocol.connect(address, timeout=10.0)
        except OSError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.2)


def worker_loop(address: Address,
                spec_fingerprint: Optional[str] = None,
                crash_after: Optional[int] = None) -> int:
    """Serve one broker connection until shutdown; returns an exit code.

    ``spec_fingerprint`` pins the spec this worker is willing to serve
    (``--spec``): the broker rejects the connection when it does not match,
    which is how stale workers fail fast instead of computing garbage.
    """

    from repro.analysis.experiments import ExperimentRunner

    try:
        sock = _connect_with_retry(address)
    except OSError as exc:
        print(f"worker could not reach broker at {address}: {exc}",
              file=sys.stderr)
        return 4
    try:
        protocol.send_message(sock, protocol.HELLO,
                              version=protocol.PROTOCOL_VERSION,
                              fingerprint=spec_fingerprint)
        kind, payload = protocol.recv_message(sock)
        if kind == protocol.REJECT:
            print(f"worker rejected: {payload.get('reason')}",
                  file=sys.stderr)
            return 2
        if kind != protocol.CONFIG:
            print(f"worker expected config, got {kind!r}", file=sys.stderr)
            return 3
        runner = ExperimentRunner(payload["config"], _api_owned=True)
        protocol.send_message(sock, protocol.READY,
                              fingerprint=runner.fingerprint)
        served = 0
        while True:
            try:
                kind, payload = protocol.recv_message(sock)
            except ConnectionClosed:
                return 0  # broker went away; nothing of ours is lost
            if kind == protocol.SHUTDOWN:
                return 0
            if kind == protocol.REJECT:
                print(f"worker rejected: {payload.get('reason')}",
                      file=sys.stderr)
                return 2
            if kind != protocol.WORK:
                print(f"worker expected work, got {kind!r}", file=sys.stderr)
                return 3
            if payload.get("fingerprint") != runner.fingerprint:
                protocol.send_message(
                    sock, protocol.ERROR, task=payload.get("task"),
                    message=(f"work addressed to {payload.get('fingerprint')}"
                             f" but this worker serves {runner.fingerprint}"),
                )
                return 2
            task: RunTask = payload["task"]
            served += 1
            if crash_after is not None and served >= crash_after:
                os._exit(17)  # simulate sudden worker death mid-point
            try:
                outcome, entries = execute_claimed_task(runner, task)
            except Exception as exc:  # noqa: BLE001 - reported to broker
                protocol.send_message(sock, protocol.ERROR, task=task,
                                      message=repr(exc))
                continue
            protocol.send_message(sock, protocol.RESULT, task=task,
                                  outcome=outcome, entries=entries)
    except (ProtocolError, OSError) as exc:
        # A dead broker (or a frame torn on the wire) ends this worker;
        # whatever it had in flight is the broker's to requeue.
        print(f"worker connection failed: {exc}", file=sys.stderr)
        return 4
    finally:
        try:
            sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------- #
# Local worker processes
# ---------------------------------------------------------------------- #
def _worker_environment(extra_env: Optional[dict] = None) -> dict:
    """The child environment: inherit, but guarantee ``repro`` is importable."""

    import repro

    src_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (src_root + os.pathsep + existing
                             if existing else src_root)
    if extra_env:
        env.update(extra_env)
    return env


def spawn_local_workers(address: Address, count: int,
                        spec_path: Optional[str] = None,
                        extra_env: Optional[dict] = None
                        ) -> List[subprocess.Popen]:
    """Start ``count`` worker processes pointed at ``address``.

    Each child is a fresh interpreter running
    ``python -m repro.cluster worker --connect <address>`` — the same entry
    point an operator uses on a remote host — so what the tests exercise is
    byte-for-byte the production worker path.  stderr is piped so a failed
    worker's diagnostics can be surfaced (see ``reap_workers``).
    """

    command = [sys.executable, "-m", "repro.cluster", "worker",
               "--connect", str(parse_or_format(address))]
    if spec_path is not None:
        command += ["--spec", spec_path]
    env = _worker_environment(extra_env)
    return [
        subprocess.Popen(command, env=env, stdout=subprocess.DEVNULL,
                         stderr=subprocess.PIPE)
        for _ in range(count)
    ]


def parse_or_format(address) -> str:
    """The CLI string form of an address (accepts strings verbatim)."""

    if isinstance(address, Address):
        return str(address)
    return str(protocol.parse_address(address))


def reap_workers(processes: Sequence[subprocess.Popen],
                 timeout: float = 10.0) -> List[str]:
    """Wait for worker processes, escalating to kill; returns stderr texts."""

    diagnostics: List[str] = []
    for proc in processes:
        try:
            proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
        try:
            _out, err = proc.communicate(timeout=5.0)
        except (subprocess.TimeoutExpired, ValueError):
            err = b""
        if err:
            diagnostics.append(err.decode("utf-8", "replace").strip())
    return diagnostics

"""repro.cluster — the distributed sweep backend.

A broker/worker fabric over TCP or Unix sockets that scales the
embarrassingly parallel figure grids past one machine's process pool:

* :class:`ClusterBroker` owns a spec's work queue, hands connecting
  workers the harness configuration, addresses every unit of work by
  (spec fingerprint, run key), requeues the in-flight points of dead or
  corrupt-stream workers (bounded — a poison point that keeps killing
  workers fails its future with a diagnostic instead of looping forever),
  and writes results through the shared persistent run cache so a resumed
  broker skips completed points.  Scheduling is cost-aware: a
  :class:`CostModel` (static features + an online EWMA persisted next to
  the run cache) orders dispatch longest-job-first and chunks cheap
  points several-per-claim;
* :class:`ClusterExecutor` plugs that broker in as the third
  :class:`~repro.analysis.executor.SweepExecutor` backend — selected by
  ``Session(backend="cluster", broker=..., workers=N)`` or
  ``REPRO_BACKEND=cluster`` — implementing both ``execute()`` and the
  futures ``submit()`` path, so streamed figure aggregation works
  unchanged on top of it.  ``workers=N`` is an elastic ceiling: one warm
  worker spawns eagerly and an autoscaler grows the fleet against queue
  backlog, reaping idle workers when the queue drains
  (``Session.cluster_stats()`` exposes the scheduling counters);
* the CLI pair runs each side standalone::

      python -m repro.cluster broker spec.toml --listen 0.0.0.0:7777
      python -m repro.cluster worker --connect HOST:7777 --jobs 4

Results are bit-identical to the serial path (``tests/test_cluster.py``
pins this including worker-death, stale-spec, and corrupt-frame modes),
and co-located workers mmap the session's columnar trace spool
(:mod:`repro.workloads.spool`) instead of regenerating traces.
"""

from repro.cluster.broker import ClusterBroker, ClusterTaskError
from repro.cluster.costs import CostModel, describe_task, mechanism_class
from repro.cluster.executor import ClusterExecutor
from repro.cluster.protocol import (
    Address,
    ConnectionClosed,
    FrameError,
    PROTOCOL_VERSION,
    ProtocolError,
    parse_address,
)
from repro.cluster.worker import (
    execute_claimed_task,
    reap_workers,
    spawn_local_workers,
    worker_loop,
    worker_stderr,
)

__all__ = [
    "Address",
    "ClusterBroker",
    "ClusterExecutor",
    "ClusterTaskError",
    "ConnectionClosed",
    "CostModel",
    "FrameError",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "cluster_broker",
    "describe_task",
    "execute_claimed_task",
    "mechanism_class",
    "parse_address",
    "reap_workers",
    "spawn_local_workers",
    "wait_for_workers",
    "worker_loop",
    "worker_stderr",
]


def cluster_broker(session) -> ClusterBroker:
    """The broker behind a ``Session(backend="cluster")`` (introspection)."""

    executor = session.runner._executor
    if not isinstance(executor, ClusterExecutor):
        raise TypeError(
            f"session runs on {type(executor).__name__}, not the cluster "
            "backend"
        )
    return executor.broker


def wait_for_workers(session, count: int, timeout: float = 60.0) -> None:
    """Block until ``count`` workers serve the session's broker."""

    cluster_broker(session).wait_for_workers(count, timeout=timeout)

"""The broker: owns a spec's work queue and a fleet of socket workers.

A :class:`ClusterBroker` listens on a TCP or Unix endpoint, hands each
connecting worker the spec's :class:`~repro.analysis.experiments.HarnessConfig`
(plus the spec fingerprint all work is addressed by), and then feeds it
grid points one at a time.  Fault tolerance is structural:

* **worker death / disconnect** — the point that worker had in flight is
  requeued and handed to the next free worker; the sweep's result cannot
  change, only its wall-clock;
* **stale workers** — a worker announcing (or computing) a fingerprint
  other than the broker's is rejected at handshake, before any work is
  dispatched;
* **corrupt frames** — a truncated or bit-flipped frame fails the CRC
  check (:class:`~repro.cluster.protocol.FrameError`), the connection is
  dropped, and the in-flight point is requeued;
* **resumption** — every result is written through the broker's shared
  persistent :class:`~repro.analysis.runcache.RunCache` as it arrives, so
  a broker restarted over the same cache directory skips completed points
  (they come back as cache hits before ever reaching the queue).

The broker is deliberately dumb about *what* a task means: it moves
:class:`~repro.analysis.executor.RunTask` pickles out and outcome pickles
back, resolving one :class:`concurrent.futures.Future` per task.  The
scheduling policy is pull-based one-at-a-time dispatch — with grid points
costing seconds each, per-point dispatch load-balances better than any
chunking, exactly like the process-pool executor's ``chunksize=1``.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Optional

from repro.analysis.runcache import RunCache
from repro.cluster import protocol
from repro.cluster.protocol import (
    Address,
    ConnectionClosed,
    FrameError,
    ProtocolError,
)


class ClusterTaskError(RuntimeError):
    """A worker reported a clean (deterministic) failure for one task."""


class _Entry:
    """Book-keeping of one submitted task."""

    __slots__ = ("task", "future", "requeues")

    def __init__(self, task) -> None:
        self.task = task
        self.future: Future = Future()
        self.requeues = 0


class ClusterBroker:
    """Work queue + worker fleet for one harness configuration.

    ``worker_config`` is the config every worker builds its runner from —
    the caller pins ``jobs=1``/``backend="local"`` and disables the worker
    disk cache (the broker owns persistence).  ``cache`` is the broker's
    shared :class:`RunCache` (or ``None``); results are written through it
    as they stream in.
    """

    def __init__(self, worker_config, address: Optional[Address] = None,
                 cache: Optional[RunCache] = None) -> None:
        from repro.analysis.experiments import harness_fingerprint

        self.worker_config = worker_config
        self.fingerprint = harness_fingerprint(worker_config)
        self.cache = cache
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._entries: Dict[object, _Entry] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._connections: List[socket.socket] = []
        self._listener, self.address = protocol.bind_listener(
            address or Address(kind="tcp", host="127.0.0.1", port=0)
        )
        # Observable state (written under _lock; unlocked reads are fine
        # for polling).
        self.workers_connected = 0
        self.fabric_error: Optional[str] = None
        self.workers_seen = 0
        self.workers_rejected = 0
        self.requeued_points = 0
        self.corrupt_frames = 0
        self.results_received = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ClusterBroker":
        accept = threading.Thread(target=self._accept_loop,
                                  name="repro-cluster-accept", daemon=True)
        accept.start()
        self._threads.append(accept)
        return self

    def stop(self) -> None:
        """Stop accepting, release workers, fail anything still pending."""

        if self._stop.is_set():
            return
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        if self.address.kind == "unix":
            try:
                os.unlink(self.address.path)
            except OSError:
                pass
        with self._lock:
            pending = [entry for entry in self._entries.values()
                       if not entry.future.done()]
            connections = list(self._connections)
        for entry in pending:
            entry.future.set_exception(RuntimeError(
                "cluster broker stopped with the point still pending"
            ))
        # Unblock handler threads parked in recv; workers observe the
        # dropped connection (or an explicit shutdown frame) and exit.
        for sock in connections:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=5.0)

    @property
    def worker_count(self) -> int:
        """Workers that completed the handshake and are serving work."""

        return self.workers_connected

    def wait_for_workers(self, count: int, timeout: float = 60.0) -> None:
        """Block until ``count`` workers are connected (tests and CLIs)."""

        deadline = time.monotonic() + timeout
        while self.workers_connected < count:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"only {self.workers_connected}/{count} workers "
                    f"connected to {self.address} within {timeout:.0f}s "
                    f"({self.workers_rejected} rejected)"
                )
            time.sleep(0.02)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, task) -> Future:
        """Enqueue one task; duplicate submissions share one future."""

        if self._stop.is_set():
            raise RuntimeError("cannot submit to a stopped cluster broker")
        with self._lock:
            # Checked under the lock against fail_pending(): a task either
            # observes the dead fabric here, or is registered before the
            # pending snapshot is taken — it can never fall between.
            if self.fabric_error is not None:
                raise RuntimeError(self.fabric_error)
            entry = self._entries.get(task)
            if entry is None:
                entry = _Entry(task)
                self._entries[task] = entry
                self._queue.put(task)
        return entry.future

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                sock, _peer = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            with self._lock:
                self._connections.append(sock)
                self.workers_seen += 1
            handler = threading.Thread(target=self._serve_worker,
                                       args=(sock,),
                                       name="repro-cluster-worker",
                                       daemon=True)
            handler.start()
            self._threads.append(handler)

    def _reject(self, sock: socket.socket, reason: str) -> None:
        with self._lock:
            self.workers_rejected += 1
        try:
            protocol.send_message(sock, protocol.REJECT, reason=reason)
        except OSError:
            pass

    def _handshake(self, sock: socket.socket) -> bool:
        """Run the hello/config/ready exchange; ``True`` when serviceable."""

        kind, payload = protocol.recv_message(sock)
        if kind != protocol.HELLO:
            raise FrameError(f"expected hello, got {kind!r}")
        if payload.get("version") != protocol.PROTOCOL_VERSION:
            self._reject(sock, (
                f"protocol version {payload.get('version')!r} != "
                f"{protocol.PROTOCOL_VERSION}"
            ))
            return False
        announced = payload.get("fingerprint")
        if announced is not None and announced != self.fingerprint:
            self._reject(sock, (
                f"stale spec: worker fingerprint {announced} != broker "
                f"fingerprint {self.fingerprint}"
            ))
            return False
        protocol.send_message(sock, protocol.CONFIG,
                              config=self.worker_config,
                              fingerprint=self.fingerprint)
        kind, payload = protocol.recv_message(sock)
        if kind != protocol.READY:
            raise FrameError(f"expected ready, got {kind!r}")
        if payload.get("fingerprint") != self.fingerprint:
            # The worker rebuilt the config into a different fingerprint —
            # an environment/version skew that would corrupt results.
            self._reject(sock, (
                f"fingerprint skew: worker built {payload.get('fingerprint')}"
                f" from a config fingerprinting {self.fingerprint} here"
            ))
            return False
        return True

    def _serve_worker(self, sock: socket.socket) -> None:
        in_flight = None
        serving = False
        try:
            if not self._handshake(sock):
                return
            serving = True
            with self._lock:
                self.workers_connected += 1
            while True:
                task = self._next_task(sock)
                if task is None:
                    return  # shutdown sent
                in_flight = task
                protocol.send_message(sock, protocol.WORK, task=task,
                                      fingerprint=self.fingerprint)
                kind, payload = protocol.recv_message(sock)
                if kind == protocol.RESULT and payload.get("task") == task:
                    self._resolve(task, payload)
                    in_flight = None
                elif kind == protocol.ERROR and payload.get("task") == task:
                    self._fail(task, payload.get("message", "worker error"))
                    in_flight = None
                else:
                    raise FrameError(
                        f"expected a result for {task!r}, got {kind!r}"
                    )
        except FrameError:
            with self._lock:
                self.corrupt_frames += 1
        except (ConnectionClosed, ProtocolError, OSError):
            pass
        finally:
            if serving:
                with self._lock:
                    self.workers_connected -= 1
            if in_flight is not None:
                self._requeue(in_flight)
            try:
                sock.close()
            except OSError:
                pass

    def _next_task(self, sock: socket.socket):
        """Pull the next queued task, or send shutdown when stopping."""

        while True:
            try:
                return self._queue.get(timeout=0.1)
            except queue.Empty:
                if self._stop.is_set():
                    try:
                        protocol.send_message(sock, protocol.SHUTDOWN)
                    except OSError:
                        pass
                    return None

    # ------------------------------------------------------------------ #
    # Outcome plumbing
    # ------------------------------------------------------------------ #
    def _entry(self, task) -> Optional[_Entry]:
        with self._lock:
            return self._entries.get(task)

    def _resolve(self, task, payload: dict) -> None:
        if self.cache is not None:
            for key, stats in payload.get("entries", ()):
                self.cache.put(key, stats)
        with self._lock:
            self.results_received += 1
        entry = self._entry(task)
        if entry is not None and not entry.future.done():
            entry.future.set_result(payload.get("outcome"))

    def fail_pending(self, message: str) -> None:
        """Fail every unresolved future (the fabric is known dead).

        Called by the executor's worker monitor when every spawned worker
        process has exited without serving: blocking on the queue would
        otherwise hang forever.  Later submissions fail fast too.
        """

        with self._lock:
            self.fabric_error = message
            pending = [entry for entry in self._entries.values()
                       if not entry.future.done()]
        for entry in pending:
            entry.future.set_exception(RuntimeError(message))

    def _fail(self, task, message: str) -> None:
        entry = self._entry(task)
        if entry is not None and not entry.future.done():
            entry.future.set_exception(ClusterTaskError(message))

    def _requeue(self, task) -> None:
        entry = self._entry(task)
        if entry is None or entry.future.done() or self._stop.is_set():
            return
        entry.requeues += 1
        with self._lock:
            self.requeued_points += 1
        self._queue.put(task)

"""The broker: owns a spec's work queue and a fleet of socket workers.

A :class:`ClusterBroker` listens on a TCP or Unix endpoint, hands each
connecting worker the spec's :class:`~repro.analysis.experiments.HarnessConfig`
(plus the spec fingerprint all work is addressed by), and then feeds it
grid points by *claims*.  Fault tolerance is structural:

* **worker death / disconnect** — the points that worker had in flight
  are requeued (solo — never re-chunked) and handed to the next free
  worker; the sweep's result cannot change, only its wall-clock.  A point
  requeued more than ``max_requeues`` times (default 3 — every worker
  that claimed it died) is treated as poison: its future fails with a
  diagnostic naming the task and the workers it killed, instead of being
  requeued forever;
* **stale workers** — a worker announcing (or computing) a fingerprint
  other than the broker's is rejected at handshake, before any work is
  dispatched;
* **corrupt frames** — a truncated or bit-flipped frame fails the CRC
  check (:class:`~repro.cluster.protocol.FrameError`), the connection is
  dropped, and the in-flight points are requeued;
* **resumption** — every result is written through the broker's shared
  persistent :class:`~repro.analysis.runcache.RunCache` as it arrives, so
  a broker restarted over the same cache directory skips completed points
  (they come back as cache hits before ever reaching the queue).

Scheduling is cost-aware (the tentpole of the paper's own argument —
throttle by *observed cost*): a :class:`~repro.cluster.costs.CostModel`
predicts seconds per task, the queue is a cost-ordered priority queue
dispatching longest-job-first, and points predicted under a cheapness
threshold are handed out several per ``work`` frame so per-frame
round-trips stop dominating tiny fast-engine points.  Observed ``elapsed``
seconds stream back in every ``result`` frame and refine the model online;
the learned table persists next to the run cache.  ``scheduling="fifo"``
(or ``REPRO_CLUSTER_SCHED=fifo``) restores blind one-at-a-time dispatch
for comparison — ordering is a wall-clock choice, never a correctness
one, so both modes produce bit-identical figures.
"""

from __future__ import annotations

import heapq
import os
import socket
import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Optional

from repro.analysis.runcache import RunCache
from repro.cluster import protocol
from repro.cluster.costs import CostModel, describe_task
from repro.cluster.protocol import (
    Address,
    ConnectionClosed,
    FrameError,
    ProtocolError,
)

#: Scheduling-policy knobs (constructor arguments beat the environment).
SCHED_ENV = "REPRO_CLUSTER_SCHED"            # "cost" (default) | "fifo"
CHEAP_SECONDS_ENV = "REPRO_CLUSTER_CHEAP_SECONDS"
CHUNK_ENV = "REPRO_CLUSTER_CHUNK"
MAX_REQUEUES_ENV = "REPRO_CLUSTER_MAX_REQUEUES"

#: Defaults: points predicted under ``DEFAULT_CHEAP_SECONDS`` are handed
#: out up to ``DEFAULT_CHUNK`` per claim; anything above dispatches solo.
DEFAULT_CHEAP_SECONDS = 0.75
DEFAULT_CHUNK = 4
DEFAULT_MAX_REQUEUES = 3


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


class ClusterTaskError(RuntimeError):
    """A worker reported a clean (deterministic) failure for one task."""


class _Entry:
    """Book-keeping of one submitted task."""

    __slots__ = ("task", "future", "requeues", "cost", "solo", "killed_by")

    def __init__(self, task, cost: float) -> None:
        self.task = task
        self.future: Future = Future()
        self.requeues = 0
        self.cost = cost
        self.solo = False          # requeued tasks are never re-chunked
        self.killed_by: List[str] = []


class _CostQueue:
    """A cost-ordered priority queue with chunked claims for cheap tasks.

    ``claim`` pops the most expensive pending task first (longest-job-first
    keeps the stragglers off the critical path); when the head is below the
    cheapness threshold, up to ``max_chunk`` equally-cheap non-solo tasks
    ride along in the same claim.  ``fifo=True`` degrades to submission
    order with no chunking (the comparison baseline).
    """

    def __init__(self, fifo: bool = False) -> None:
        self._heap: List[tuple] = []
        self._cond = threading.Condition()
        self._seq = 0
        self._fifo = fifo

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)

    def put(self, task, cost: float, solo: bool = False) -> None:
        with self._cond:
            self._seq += 1
            priority = 0.0 if self._fifo else -cost
            heapq.heappush(self._heap, (priority, self._seq, task, solo))
            self._cond.notify()

    def claim(self, max_chunk: int, cheap_seconds: float,
              timeout: float) -> List[object]:
        """Pop one claim: ``[]`` when nothing arrived within ``timeout``."""

        with self._cond:
            if not self._heap:
                self._cond.wait(timeout)
            if not self._heap:
                return []
            priority, _seq, task, solo = heapq.heappop(self._heap)
            claimed = [task]
            if self._fifo or solo or -priority >= cheap_seconds:
                return claimed
            while self._heap and len(claimed) < max_chunk:
                head_priority, _s, head_task, head_solo = self._heap[0]
                if head_solo or -head_priority >= cheap_seconds:
                    break
                heapq.heappop(self._heap)
                claimed.append(head_task)
            return claimed


class ClusterBroker:
    """Work queue + worker fleet for one harness configuration.

    ``worker_config`` is the config every worker builds its runner from —
    the caller pins ``jobs=1``/``backend="local"`` and disables the worker
    disk cache (the broker owns persistence).  ``cache`` is the broker's
    shared :class:`RunCache` (or ``None``); results are written through it
    as they stream in, and the learned cost table persists beside them.
    """

    def __init__(self, worker_config, address: Optional[Address] = None,
                 cache: Optional[RunCache] = None,
                 scheduling: Optional[str] = None,
                 cheap_seconds: Optional[float] = None,
                 chunk_size: Optional[int] = None,
                 max_requeues: Optional[int] = None) -> None:
        from repro.analysis.experiments import harness_fingerprint

        self.worker_config = worker_config
        self.fingerprint = harness_fingerprint(worker_config)
        self.cache = cache
        self.scheduling = (scheduling
                           or os.environ.get(SCHED_ENV, "").strip().lower()
                           or "cost")
        if self.scheduling not in ("cost", "fifo"):
            raise ValueError(
                f"unknown cluster scheduling {self.scheduling!r} "
                "(expected 'cost' or 'fifo')"
            )
        self.cheap_seconds = (cheap_seconds if cheap_seconds is not None
                              else _env_float(CHEAP_SECONDS_ENV,
                                              DEFAULT_CHEAP_SECONDS))
        self.chunk_size = max(1, chunk_size if chunk_size is not None
                              else _env_int(CHUNK_ENV, DEFAULT_CHUNK))
        self.max_requeues = max(0, max_requeues if max_requeues is not None
                                else _env_int(MAX_REQUEUES_ENV,
                                              DEFAULT_MAX_REQUEUES))
        self.cost_model = CostModel.for_cache(worker_config, cache)
        self._queue = _CostQueue(fifo=self.scheduling == "fifo")
        self._entries: Dict[object, _Entry] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._connections: List[socket.socket] = []
        self._release_requests = 0
        self._worker_seq = 0
        self._listener, self.address = protocol.bind_listener(
            address or Address(kind="tcp", host="127.0.0.1", port=0)
        )
        # Observable state (written under _lock; unlocked reads are fine
        # for polling).
        self.workers_connected = 0
        self.fabric_error: Optional[str] = None
        self.workers_seen = 0
        self.workers_rejected = 0
        self.requeued_points = 0
        self.corrupt_frames = 0
        self.results_received = 0
        self.scheduled_by_cost = 0
        self.chunked_claims = 0
        self.autoscale_events = 0
        self.worker_stats: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ClusterBroker":
        accept = threading.Thread(target=self._accept_loop,
                                  name="repro-cluster-accept", daemon=True)
        accept.start()
        with self._lock:
            self._threads.append(accept)
        return self

    def stop(self) -> None:
        """Stop accepting, release workers, fail anything still pending."""

        if self._stop.is_set():
            return
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        if self.address.kind == "unix":
            try:
                os.unlink(self.address.path)
            except OSError:
                pass
        with self._lock:
            pending = [entry for entry in self._entries.values()
                       if not entry.future.done()]
            connections = list(self._connections)
            threads = list(self._threads)
        for entry in pending:
            entry.future.set_exception(RuntimeError(
                "cluster broker stopped with the point still pending"
            ))
        # Unblock handler threads parked in recv; workers observe the
        # dropped connection (or an explicit shutdown frame) and exit.
        for sock in connections:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        for thread in threads:
            thread.join(timeout=5.0)
        self.cost_model.save()

    @property
    def worker_count(self) -> int:
        """Workers that completed the handshake and are serving work."""

        return self.workers_connected

    def wait_for_workers(self, count: int, timeout: float = 60.0) -> None:
        """Block until ``count`` workers are connected (tests and CLIs)."""

        deadline = time.monotonic() + timeout
        while self.workers_connected < count:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"only {self.workers_connected}/{count} workers "
                    f"connected to {self.address} within {timeout:.0f}s "
                    f"({self.workers_rejected} rejected)"
                )
            time.sleep(0.02)

    # ------------------------------------------------------------------ #
    # Submission and introspection
    # ------------------------------------------------------------------ #
    def submit(self, task) -> Future:
        """Enqueue one task; duplicate submissions share one future."""

        if self._stop.is_set():
            raise RuntimeError("cannot submit to a stopped cluster broker")
        cost = self.cost_model.predict(task)
        with self._lock:
            # Checked under the lock against fail_pending(): a task either
            # observes the dead fabric here, or is registered before the
            # pending snapshot is taken — it can never fall between.
            if self.fabric_error is not None:
                raise RuntimeError(self.fabric_error)
            entry = self._entries.get(task)
            if entry is None:
                entry = _Entry(task, cost)
                self._entries[task] = entry
                self._queue.put(task, cost=cost)
        return entry.future

    def queue_depth(self) -> int:
        """Tasks enqueued but not yet claimed by any worker."""

        return len(self._queue)

    def pending_count(self) -> int:
        """Submitted tasks whose futures are not resolved yet."""

        with self._lock:
            return sum(1 for entry in self._entries.values()
                       if not entry.future.done())

    def release_idle(self, count: int) -> None:
        """Ask up to ``count`` idle workers to shut down (autoscaler)."""

        if count <= 0:
            return
        with self._lock:
            self._release_requests += count

    def note_autoscale(self) -> None:
        """Record one fleet scale event (spawn batch or idle reap)."""

        with self._lock:
            self.autoscale_events += 1

    def stats(self) -> Dict[str, object]:
        """A snapshot of scheduling/elasticity counters (picklable)."""

        with self._lock:
            workers = {wid: dict(per) for wid, per in
                       self.worker_stats.items()}
            snapshot = {
                "scheduling": self.scheduling,
                "scheduled_by_cost": self.scheduled_by_cost,
                "chunked_claims": self.chunked_claims,
                "autoscale_events": self.autoscale_events,
                "results_received": self.results_received,
                "requeued_points": self.requeued_points,
                "corrupt_frames": self.corrupt_frames,
                "workers_seen": self.workers_seen,
                "workers_connected": self.workers_connected,
                "workers_rejected": self.workers_rejected,
                "workers": workers,
            }
        snapshot["queue_depth"] = self.queue_depth()
        snapshot["pending_points"] = self.pending_count()
        snapshot["cost_model"] = {
            "learned_keys": len(self.cost_model),
            "observations": self.cost_model.observations,
            "path": (str(self.cost_model.path)
                     if self.cost_model.path is not None else None),
        }
        return snapshot

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                sock, _peer = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            handler = threading.Thread(target=self._serve_worker,
                                       args=(sock,),
                                       name="repro-cluster-worker",
                                       daemon=True)
            with self._lock:
                self._connections.append(sock)
                self.workers_seen += 1
                # Long-lived brokers see many worker generations: prune
                # finished handler threads instead of accumulating them.
                self._threads = [t for t in self._threads if t.is_alive()]
                self._threads.append(handler)
            handler.start()

    def _reject(self, sock: socket.socket, reason: str) -> None:
        with self._lock:
            self.workers_rejected += 1
        try:
            protocol.send_message(sock, protocol.REJECT, reason=reason)
        except OSError:
            pass

    def _handshake(self, sock: socket.socket) -> bool:
        """Run the hello/config/ready exchange; ``True`` when serviceable."""

        kind, payload = protocol.recv_message(sock)
        if kind != protocol.HELLO:
            raise FrameError(f"expected hello, got {kind!r}")
        if payload.get("version") != protocol.PROTOCOL_VERSION:
            self._reject(sock, (
                f"protocol version {payload.get('version')!r} != "
                f"{protocol.PROTOCOL_VERSION}"
            ))
            return False
        announced = payload.get("fingerprint")
        if announced is not None and announced != self.fingerprint:
            self._reject(sock, (
                f"stale spec: worker fingerprint {announced} != broker "
                f"fingerprint {self.fingerprint}"
            ))
            return False
        protocol.send_message(sock, protocol.CONFIG,
                              config=self.worker_config,
                              fingerprint=self.fingerprint)
        kind, payload = protocol.recv_message(sock)
        if kind != protocol.READY:
            raise FrameError(f"expected ready, got {kind!r}")
        if payload.get("fingerprint") != self.fingerprint:
            # The worker rebuilt the config into a different fingerprint —
            # an environment/version skew that would corrupt results.
            self._reject(sock, (
                f"fingerprint skew: worker built {payload.get('fingerprint')}"
                f" from a config fingerprinting {self.fingerprint} here"
            ))
            return False
        return True

    def _serve_worker(self, sock: socket.socket) -> None:
        in_flight: List[object] = []
        worker_id: Optional[str] = None
        try:
            if not self._handshake(sock):
                return
            with self._lock:
                self._worker_seq += 1
                worker_id = f"worker-{self._worker_seq}"
                self.workers_connected += 1
                self.worker_stats[worker_id] = {"served": 0, "elapsed": 0.0}
            while True:
                tasks = self._claim(sock)
                if tasks is None:
                    return  # shutdown sent
                in_flight = list(tasks)
                protocol.send_message(sock, protocol.WORK, tasks=tasks,
                                      fingerprint=self.fingerprint)
                for task in tasks:
                    kind, payload = protocol.recv_message(sock)
                    if (kind == protocol.RESULT
                            and payload.get("task") == task):
                        self._resolve(task, payload, worker_id)
                    elif (kind == protocol.ERROR
                            and payload.get("task") == task):
                        self._fail(task,
                                   payload.get("message", "worker error"))
                    else:
                        raise FrameError(
                            f"expected a result for {task!r}, got {kind!r}"
                        )
                    in_flight.remove(task)
        except FrameError:
            with self._lock:
                self.corrupt_frames += 1
        except (ConnectionClosed, ProtocolError, OSError):
            pass
        finally:
            if worker_id is not None:
                with self._lock:
                    self.workers_connected -= 1
            for task in in_flight:
                self._requeue(task, worker_id)
            try:
                sock.close()
            except OSError:
                pass

    def _claim(self, sock: socket.socket) -> Optional[List[object]]:
        """Claim the next dispatch for one worker, or send shutdown."""

        while True:
            tasks = self._queue.claim(self.chunk_size, self.cheap_seconds,
                                      timeout=0.1)
            if tasks:
                with self._lock:
                    if self.scheduling == "cost":
                        self.scheduled_by_cost += len(tasks)
                    if len(tasks) > 1:
                        self.chunked_claims += 1
                return tasks
            if self._stop.is_set() or self._take_release():
                try:
                    protocol.send_message(sock, protocol.SHUTDOWN)
                except OSError:
                    pass
                return None

    def _take_release(self) -> bool:
        """Consume one pending idle-release request (autoscaler reap)."""

        with self._lock:
            if self._release_requests > 0:
                self._release_requests -= 1
                return True
        return False

    # ------------------------------------------------------------------ #
    # Outcome plumbing
    # ------------------------------------------------------------------ #
    def _entry(self, task) -> Optional[_Entry]:
        with self._lock:
            return self._entries.get(task)

    def _resolve(self, task, payload: dict,
                 worker_id: Optional[str] = None) -> None:
        if self.cache is not None:
            for key, stats in payload.get("entries", ()):
                self.cache.put(key, stats)
        elapsed = payload.get("elapsed")
        self.cost_model.observe(task, elapsed)
        with self._lock:
            self.results_received += 1
            per_worker = self.worker_stats.get(worker_id)
            if per_worker is not None:
                per_worker["served"] += 1
                if elapsed is not None and elapsed > 0.0:
                    per_worker["elapsed"] += float(elapsed)
        entry = self._entry(task)
        if entry is not None and not entry.future.done():
            entry.future.set_result(payload.get("outcome"))

    def fail_pending(self, message: str) -> None:
        """Fail every unresolved future (the fabric is known dead).

        Called by the executor's autoscaler when every spawned worker
        process has exited without making progress: blocking on the queue
        would otherwise hang forever.  Later submissions fail fast too.
        """

        with self._lock:
            self.fabric_error = message
            pending = [entry for entry in self._entries.values()
                       if not entry.future.done()]
        for entry in pending:
            entry.future.set_exception(RuntimeError(message))

    def _fail(self, task, message: str) -> None:
        entry = self._entry(task)
        if entry is not None and not entry.future.done():
            entry.future.set_exception(ClusterTaskError(message))

    def _requeue(self, task, worker_id: Optional[str] = None) -> None:
        if self._stop.is_set():
            return
        with self._lock:
            entry = self._entries.get(task)
            if entry is None or entry.future.done():
                return
            entry.requeues += 1
            entry.solo = True
            if worker_id is not None:
                entry.killed_by.append(worker_id)
            self.requeued_points += 1
            exceeded = entry.requeues > self.max_requeues
            killers = ", ".join(entry.killed_by) or "unknown"
            requeues = entry.requeues
        if exceeded:
            # Poison point: every worker that claimed it died.  Failing
            # the future (with the evidence) beats requeueing forever.
            entry.future.set_exception(ClusterTaskError(
                f"{describe_task(task)} exceeded the requeue bound: "
                f"{requeues} worker connection(s) were lost while it was "
                f"in flight (workers: {killers}; bound "
                f"max_requeues={self.max_requeues}) — the point looks "
                "poisonous and is failed instead of requeued again"
            ))
            return
        # Requeued points dispatch solo: an innocent chunk-mate of a
        # poison task must not ride along with it (and toward the requeue
        # bound) a second time.
        self._queue.put(task, cost=entry.cost, solo=True)

"""``ClusterExecutor`` — the third :class:`SweepExecutor` backend.

Where :class:`~repro.analysis.executor.SerialSweepExecutor` runs tasks
in-process and :class:`~repro.analysis.executor.ProcessPoolSweepExecutor`
shards them across local worker processes, this backend hands them to a
:class:`~repro.cluster.broker.ClusterBroker` whose workers connect over
TCP/Unix sockets — the same host, or any number of remote ones.

It implements both dispatch styles of the executor contract: ``submit``
returns the broker's real :class:`concurrent.futures.Future` (so the
streaming figure path — ``iter_completed`` / ``RunHandle`` — works
unchanged), and ``execute`` is the batch barrier over those futures in
task order.  Results are bit-identical to the serial path because workers
run the exact same deterministic simulations from the exact same pickled
configuration; the broker writes every result through the shared
persistent run cache as it arrives.

Construction is what ``Session(backend="cluster", broker=..., workers=N)``
(or ``REPRO_BACKEND=cluster``) resolves to; ``workers > 0`` additionally
spawns that many co-located worker processes so a single-machine cluster
sweep is one line of code.
"""

from __future__ import annotations

import dataclasses
import sys
import threading
import time
from concurrent.futures import Future
from typing import List, Optional, Sequence

from repro.analysis.executor import RunTask, SweepExecutor
from repro.analysis.runcache import RunCache
from repro.cluster.broker import ClusterBroker
from repro.cluster.protocol import Address, parse_address
from repro.cluster.worker import reap_workers, spawn_local_workers


class ClusterExecutor(SweepExecutor):
    """Dispatches sweep tasks to socket-connected workers via a broker."""

    def __init__(self, harness_config, broker: Optional[str] = None,
                 workers: int = 0, cache: Optional[RunCache] = None) -> None:
        # Workers run strictly serially on the local backend with their
        # disk cache off: persistence has one owner (the broker), and a
        # worker inheriting REPRO_BACKEND=cluster must never recurse into
        # hosting a broker of its own.  The trace spool directory survives
        # the replace so co-located workers mmap instead of regenerating.
        self._worker_config = dataclasses.replace(
            harness_config, jobs=1, backend="local", broker=None,
            cluster_workers=0, cache_dir="",
        )
        address = (parse_address(broker) if broker
                   else Address(kind="tcp", host="127.0.0.1", port=0))
        self._broker = ClusterBroker(self._worker_config, address=address,
                                     cache=cache)
        self._broker.start()
        self._closing = False
        self._processes = (
            spawn_local_workers(self._broker.address, workers)
            if workers > 0 else []
        )
        if self._processes:
            # Spawned workers are this executor's responsibility: if every
            # one of them dies without serving (bad interpreter, handshake
            # rejection, OOM kill), blocking futures must fail with their
            # stderr instead of hanging the sweep forever.
            monitor = threading.Thread(target=self._watch_workers,
                                       name="repro-cluster-monitor",
                                       daemon=True)
            monitor.start()
        else:
            # No local fleet: the sweep blocks until workers attach, so
            # the operator must be able to see where to attach them.
            print(f"cluster broker listening on {self._broker.address}; "
                  "no local workers spawned — attach with: "
                  f"python -m repro.cluster worker "
                  f"--connect {self._broker.address}",
                  file=sys.stderr, flush=True)

    # ------------------------------------------------------------------ #
    @property
    def broker(self) -> ClusterBroker:
        return self._broker

    @property
    def address(self) -> Address:
        """The endpoint workers must connect to (ephemeral ports resolved)."""

        return self._broker.address

    @property
    def jobs(self) -> int:
        """The currently connected worker count (what ``Session.jobs`` shows)."""

        return max(1, self._broker.worker_count)

    # ------------------------------------------------------------------ #
    def submit(self, task: RunTask) -> Future:
        return self._broker.submit(task)

    def execute(self, tasks: Sequence[RunTask]) -> List[object]:
        futures = [self.submit(task) for task in tasks]
        return [future.result() for future in futures]

    def _watch_workers(self) -> None:
        while not self._closing:
            time.sleep(0.2)
            if self._closing:
                return
            if any(proc.poll() is None for proc in self._processes):
                continue  # at least one worker process is still alive
            if self._broker.worker_count > 0:
                continue  # an externally attached worker is serving
            diagnostics = reap_workers(self._processes, timeout=1.0)
            detail = "; ".join(text for text in diagnostics if text) \
                or "no diagnostics on stderr"
            self._broker.fail_pending(
                f"all {len(self._processes)} spawned cluster workers "
                f"exited without serving the sweep: {detail}"
            )
            return

    def close(self) -> None:
        self._closing = True
        self._broker.stop()
        if self._processes:
            reap_workers(self._processes)
            self._processes = []

"""``ClusterExecutor`` — the third :class:`SweepExecutor` backend.

Where :class:`~repro.analysis.executor.SerialSweepExecutor` runs tasks
in-process and :class:`~repro.analysis.executor.ProcessPoolSweepExecutor`
shards them across local worker processes, this backend hands them to a
:class:`~repro.cluster.broker.ClusterBroker` whose workers connect over
TCP/Unix sockets — the same host, or any number of remote ones.

It implements both dispatch styles of the executor contract: ``submit``
returns the broker's real :class:`concurrent.futures.Future` (so the
streaming figure path — ``iter_completed`` / ``RunHandle`` — works
unchanged), and ``execute`` is the batch barrier over those futures in
task order.  Results are bit-identical to the serial path because workers
run the exact same deterministic simulations from the exact same pickled
configuration; the broker writes every result through the shared
persistent run cache as it arrives.

Construction is what ``Session(backend="cluster", broker=..., workers=N)``
(or ``REPRO_BACKEND=cluster``) resolves to.  ``workers=N`` is an *elastic
ceiling*, not a fixed fleet: one warm worker spawns eagerly, the
autoscaler grows the fleet toward ``N`` while the broker's pending
backlog exceeds the live worker count, and idle workers are reaped (down
to one warm spare) once the queue drains.  The same loop is the fleet
monitor: when every spawned worker has died without making progress and
work is still pending, it fails the pending futures with the workers'
drained stderr instead of hanging the sweep forever.
"""

from __future__ import annotations

import collections
import dataclasses
import sys
import threading
import time
from concurrent.futures import Future
from typing import List, Optional, Sequence

from repro.analysis.executor import RunTask, SweepExecutor
from repro.analysis.runcache import RunCache
from repro.cluster.broker import ClusterBroker
from repro.cluster.protocol import Address, parse_address
from repro.cluster.worker import (
    reap_workers,
    spawn_local_workers,
    worker_stderr,
)

#: Seconds of empty queue before idle workers (beyond the warm spare) are
#: released.
IDLE_REAP_SECONDS = 5.0

#: Autoscaler poll period.
_POLL_SECONDS = 0.1


class ClusterExecutor(SweepExecutor):
    """Dispatches sweep tasks to socket-connected workers via a broker."""

    def __init__(self, harness_config, broker: Optional[str] = None,
                 workers: int = 0, cache: Optional[RunCache] = None,
                 idle_after: float = IDLE_REAP_SECONDS) -> None:
        # Workers run strictly serially on the local backend with their
        # disk cache off: persistence has one owner (the broker), and a
        # worker inheriting REPRO_BACKEND=cluster must never recurse into
        # hosting a broker of its own.  The trace spool directory survives
        # the replace so co-located workers mmap instead of regenerating.
        self._worker_config = dataclasses.replace(
            harness_config, jobs=1, backend="local", broker=None,
            cluster_workers=0, cache_dir="",
        )
        address = (parse_address(broker) if broker
                   else Address(kind="tcp", host="127.0.0.1", port=0))
        self._broker = ClusterBroker(self._worker_config, address=address,
                                     cache=cache)
        self._broker.start()
        self._closing = False
        self._max_workers = max(0, workers)
        self._keep_warm = min(1, self._max_workers)
        self._idle_after = idle_after
        self._proc_lock = threading.Lock()
        self._processes: List = []
        self._spawned_total = 0
        self._worker_deaths = 0
        self._deaths_at_progress = 0
        self._dead_stderr = collections.deque(maxlen=8)
        if self._max_workers > 0:
            # One warm worker eagerly (a sweep submitted a millisecond
            # from now should not wait a poll period); the rest of the
            # fleet is the autoscaler's, grown against queue backlog.
            self._spawn(1)
            scaler = threading.Thread(target=self._autoscale_loop,
                                      name="repro-cluster-autoscale",
                                      daemon=True)
            scaler.start()
        else:
            # No local fleet: the sweep blocks until workers attach, so
            # the operator must be able to see where to attach them.
            print(f"cluster broker listening on {self._broker.address}; "
                  "no local workers spawned — attach with: "
                  f"python -m repro.cluster worker "
                  f"--connect {self._broker.address}",
                  file=sys.stderr, flush=True)

    # ------------------------------------------------------------------ #
    @property
    def broker(self) -> ClusterBroker:
        return self._broker

    @property
    def address(self) -> Address:
        """The endpoint workers must connect to (ephemeral ports resolved)."""

        return self._broker.address

    @property
    def jobs(self) -> int:
        """The currently connected worker count (what ``Session.jobs`` shows)."""

        return max(1, self._broker.worker_count)

    # ------------------------------------------------------------------ #
    def submit(self, task: RunTask) -> Future:
        return self._broker.submit(task)

    def execute(self, tasks: Sequence[RunTask]) -> List[object]:
        futures = [self.submit(task) for task in tasks]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------ #
    # Elastic fleet
    # ------------------------------------------------------------------ #
    def _spawn(self, count: int) -> None:
        if count <= 0:
            return
        spawned = spawn_local_workers(self._broker.address, count)
        with self._proc_lock:
            self._processes.extend(spawned)
            self._spawned_total += count

    def _prune_finished(self) -> int:
        """Drop exited processes from the fleet; returns the live count.

        Dead workers' drained stderr is kept (bounded) for the fleet-death
        diagnostic; clean exits (idle reaps, shutdown) are just removed.
        """

        with self._proc_lock:
            live = []
            for proc in self._processes:
                code = proc.poll()
                if code is None:
                    live.append(proc)
                    continue
                thread = getattr(proc, "_repro_stderr_thread", None)
                if thread is not None:
                    thread.join(timeout=0.2)
                if code != 0:
                    self._worker_deaths += 1
                    text = worker_stderr(proc)
                    self._dead_stderr.append(
                        text or f"worker pid {proc.pid} exited with "
                                f"code {code} and no stderr"
                    )
            self._processes = live
            return len(live)

    def _autoscale_loop(self) -> None:
        idle_since: Optional[float] = None
        last_results = -1
        while not self._closing:
            time.sleep(_POLL_SECONDS)
            if self._closing:
                return
            broker = self._broker
            live = self._prune_finished()
            if broker.results_received != last_results:
                # Any progress resets the death budget: a fleet that keeps
                # completing points is merely unlucky, not dead.
                last_results = broker.results_received
                with self._proc_lock:
                    self._deaths_at_progress = self._worker_deaths
            pending = broker.pending_count()
            if pending == 0:
                # Idle: reap surplus workers down to the warm spare.
                if live > self._keep_warm:
                    if idle_since is None:
                        idle_since = time.monotonic()
                    elif time.monotonic() - idle_since >= self._idle_after:
                        broker.release_idle(live - self._keep_warm)
                        broker.note_autoscale()
                        idle_since = None
                else:
                    idle_since = None
                continue
            idle_since = None
            desired = min(self._max_workers, max(1, pending))
            if live >= desired:
                continue
            with self._proc_lock:
                unproductive = self._worker_deaths - self._deaths_at_progress
            if (live == 0 and broker.worker_count == 0
                    and unproductive > self._max_workers
                    + broker.max_requeues):
                # Every respawn in the budget died without a single
                # result: the fabric is dead, blocking futures must fail
                # with the workers' diagnostics instead of hanging.
                with self._proc_lock:
                    detail = "; ".join(text for text in self._dead_stderr
                                       if text) or "no diagnostics on stderr"
                    total = self._spawned_total
                broker.fail_pending(
                    f"all {total} spawned cluster workers exited without "
                    f"serving the sweep: {detail}"
                )
                return
            self._spawn(desired - live)
            broker.note_autoscale()

    def close(self) -> None:
        self._closing = True
        self._broker.stop()
        with self._proc_lock:
            processes, self._processes = self._processes, []
        if processes:
            reap_workers(processes)

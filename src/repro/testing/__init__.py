"""Differential validation of the dual-engine simulation contract.

The reproduction's headline guarantee is that the event-driven ``fast``
engine produces :class:`repro.sim.stats.RunStatistics` bit-identical to the
reference ``cycle`` engine, and that parallel (``jobs>1``) sweeps are
bit-identical to serial ones.  Hand-written equivalence tests cover curated
points; this package *generates* scenarios:

* :mod:`repro.testing.scenarios` — a seeded random sampler over the
  mitigation × workload-mix × engine-knob space, plus fixed corpora;
* :mod:`repro.testing.fuzz` — the differential runner (``fast`` and
  ``batch`` vs ``cycle``, serial vs process-pool, batched vs solo), a
  shrinker that minimises failing scenarios to a reportable repro, and
  the campaign CLI
  (``python -m repro.testing.fuzz --seed N --count K --budget S``).
"""

from repro.testing.scenarios import (
    FUZZ_MECHANISMS,
    FuzzProfile,
    Scenario,
    build_simulation_config,
    build_system_config,
    build_workload,
    batch_corpus,
    cluster_corpus,
    executor_corpus,
    fuzz_corpus,
    generate_scenarios,
)

#: Symbols re-exported from :mod:`repro.testing.fuzz`, loaded lazily so
#: ``python -m repro.testing.fuzz`` does not import the module twice
#: (runpy warns when a package eagerly imports the submodule it is about
#: to execute as ``__main__``).
_FUZZ_EXPORTS = (
    "DifferentialReport",
    "batch_differential",
    "executor_differential",
    "repro_snippet",
    "run_differential",
    "run_scenario",
    "shrink",
)


def __getattr__(name: str):
    if name in _FUZZ_EXPORTS:
        from repro.testing import fuzz

        return getattr(fuzz, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "DifferentialReport",
    "FUZZ_MECHANISMS",
    "FuzzProfile",
    "Scenario",
    "build_simulation_config",
    "build_system_config",
    "build_workload",
    "batch_corpus",
    "batch_differential",
    "cluster_corpus",
    "executor_corpus",
    "executor_differential",
    "fuzz_corpus",
    "generate_scenarios",
    "repro_snippet",
    "run_differential",
    "run_scenario",
    "shrink",
]

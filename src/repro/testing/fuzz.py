"""Differential scenario fuzzer for the multi-engine contract.

Every :class:`~repro.testing.scenarios.Scenario` is executed through the
``cycle`` reference driver and each engine of its ``check_engines`` tuple
(``fast``, ``batch``, or both — the sampler rotates ``batch`` in); the run
is a pass only when the full :class:`~repro.sim.stats.RunStatistics`, the
stop-condition flag, and every core's introspection snapshot are
bit-identical.  Harness-shaped scenarios can additionally be executed
through the serial and process-pool sweep executors (``jobs=1`` vs
``jobs>1``), pinning the second determinism contract, and
:func:`batch_differential` runs whole scenario groups as one lockstep
:class:`~repro.sim.batch.BatchSimulator` batch against solo runs, pinning
the third: batching never changes a lane's results.

A failing scenario is minimised by :func:`shrink` — greedily dropping
cores, halving budgets, clearing warmup/instruction-limit/BreakHammer —
until no simpler variant still diverges, and :func:`repro_snippet` renders
the result as a paste-able reproduction (see ROADMAP.md "Validating
engines" for how to bisect one with ``REPRO_ENGINE=cycle``).

Campaign CLI::

    python -m repro.testing.fuzz --seed 0 --count 200 [--budget 600]
        [--profile campaign] [--jobs 2] [--no-shrink]

exits non-zero if any divergence survives, printing the minimised repro.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.simulator import SimulationResult, Simulator
from repro.testing.scenarios import (
    FuzzProfile,
    Scenario,
    build_simulation_config,
    build_system_config,
    build_workload,
    generate_scenarios,
    simplifications,
)

#: Fields compared between the two engines, in reporting order.
_FLAG_FIELD = "finished_by_instruction_limit"
_CORES_FIELD = "core_snapshots"


@dataclass
class DifferentialReport:
    """Outcome of one scenario's engine differential run.

    ``mismatched_fields`` entries are ``"engine:field"`` — the candidate
    engine that diverged from the cycle reference and on which observable.
    ``ticks_fast`` is the tick count of the scenario's first checked
    engine (``fast`` and ``batch`` share the event-jump structure, so the
    skip factor is comparable either way).
    """

    scenario: Scenario
    identical: bool
    mismatched_fields: Tuple[str, ...]
    cycles: int
    ticks_cycle: int
    ticks_fast: int

    @property
    def speedup(self) -> float:
        """Tick-count ratio: how much work the fast engine skipped."""

        return self.ticks_cycle / max(1, self.ticks_fast)

    def summary(self) -> str:
        if self.identical:
            return (f"PASS {self.scenario.label}: {self.cycles} cycles, "
                    f"fast engine ticked {self.ticks_fast}/{self.ticks_cycle}")
        return (f"DIVERGENCE {self.scenario.label}: fields "
                f"{', '.join(self.mismatched_fields)} differ\n"
                + repro_snippet(self.scenario))


def run_scenario(scenario: Scenario, engine: str) -> Tuple[SimulationResult,
                                                           Simulator]:
    """Execute ``scenario`` under ``engine``; fresh state every call."""

    config = build_system_config(scenario)
    mix = build_workload(scenario, config)
    simulator = Simulator(
        config,
        mix.traces,
        build_simulation_config(scenario, engine),
        attacker_threads=mix.attacker_threads,
    )
    return simulator.run(), simulator


def _comparable(result: SimulationResult) -> Dict[str, object]:
    snapshot = dataclasses.asdict(result.stats)
    snapshot[_FLAG_FIELD] = result.finished_by_instruction_limit
    snapshot[_CORES_FIELD] = [core.snapshot() for core in result.system.cores]
    return snapshot


def run_differential(scenario: Scenario) -> DifferentialReport:
    """Diff ``scenario.check_engines`` against the cycle reference."""

    cycle_result, cycle_sim = run_scenario(scenario, "cycle")
    reference = _comparable(cycle_result)
    mismatched: List[str] = []
    ticks_first = 0
    for engine in scenario.check_engines:
        result, sim = run_scenario(scenario, engine)
        ticks_first = ticks_first or sim.ticks_executed
        candidate = _comparable(result)
        mismatched.extend(
            f"{engine}:{field}" for field in reference
            if reference[field] != candidate[field]
        )
    return DifferentialReport(
        scenario=scenario,
        identical=not mismatched,
        mismatched_fields=tuple(mismatched),
        cycles=cycle_result.stats.cycles,
        ticks_cycle=cycle_sim.ticks_executed,
        ticks_fast=ticks_first,
    )


# ---------------------------------------------------------------------- #
# Batched-vs-solo differential
# ---------------------------------------------------------------------- #
def batch_differential(scenarios: Sequence[Scenario],
                       max_lanes: int = 16) -> List[str]:
    """Run scenario groups as one lockstep batch and diff against solo runs.

    Every scenario is expanded across its seed axis (each seed becomes one
    lane, mirroring how the sweep layer batches multi-seed grids); lanes
    are chunked to ``max_lanes`` and each chunk runs as a single
    :class:`~repro.sim.batch.BatchSimulator`, whose per-lane observables
    must be bit-identical to solo ``engine="fast"`` runs of the same
    configurations.  Lanes in a chunk are deliberately heterogeneous
    (different mixes, mechanisms, machines): lanes are independent
    systems, so lockstep grouping must never be a correctness constraint.
    Returns human-readable mismatch descriptions (empty = all identical).
    """

    from dataclasses import replace as _replace

    from repro.sim.batch import BatchSimulator

    lanes = [
        _replace(scenario, seed=seed, extra_seeds=())
        for scenario in scenarios
        for seed in scenario.seeds
    ]
    mismatches: List[str] = []
    for start in range(0, len(lanes), max_lanes):
        chunk = lanes[start:start + max_lanes]
        solo = [_comparable(run_scenario(s, "fast")[0]) for s in chunk]

        simulators = []
        for scenario in chunk:
            config = build_system_config(scenario)
            mix = build_workload(scenario, config)
            simulators.append(Simulator(
                config, mix.traces,
                build_simulation_config(scenario, "fast"),
                attacker_threads=mix.attacker_threads,
            ))
        batched = BatchSimulator(simulators).run()
        for scenario, reference, result in zip(chunk, solo, batched):
            fields = tuple(
                field for field in reference
                if reference[field] != _comparable(result)[field]
            )
            if fields:
                mismatches.append(
                    f"batched vs solo diverge on {scenario.label}: "
                    f"{', '.join(fields)}"
                )
    return mismatches


# ---------------------------------------------------------------------- #
# Serial vs process-pool executor differential
# ---------------------------------------------------------------------- #
def executor_differential(scenarios: Sequence[Scenario],
                          jobs: int = 2,
                          backend: str = "local") -> List[str]:
    """Check harness-shaped scenarios under ``jobs=1`` vs a parallel fabric.

    Scenarios are grouped by harness shape (cycle budget, trace sizes,
    *seed axis*); each group becomes one (mix, mechanism, nrh, breakhammer)
    grid — multiplied across every seed of the shape's ``Scenario.seeds``
    tuple, so multi-seed scenarios pin the statistical seed axis through
    every backend — described by an :class:`repro.api.ExperimentSpec` and
    executed by a serial :class:`repro.api.Session` against a parallel one;
    the parallel side goes through the futures/streaming path, pinning it
    to the same determinism contract.  ``backend="local"`` pits serial
    against a ``jobs``-process pool; ``backend="cluster"`` pits it against
    a socket broker serving ``jobs`` spawned local workers
    (:mod:`repro.cluster`).  Returns a list of human-readable mismatch
    descriptions (empty = all identical); non-harness-shaped scenarios are
    skipped.
    """

    from repro.api import ExperimentSpec, RunPoint, Session

    groups: Dict[Tuple[int, int, int, Tuple[int, ...]], List[Scenario]] = {}
    for scenario in scenarios:
        if not scenario.harness_shaped():
            continue
        shape = (scenario.sim_cycles, scenario.entries_per_core,
                 scenario.attacker_entries, scenario.seeds)
        groups.setdefault(shape, []).append(scenario)

    if backend == "cluster":
        parallel_kwargs = dict(backend="cluster", workers=jobs)
        rhs_label = f"cluster({jobs} workers)"
    else:
        parallel_kwargs = dict(jobs=jobs)
        rhs_label = f"jobs={jobs}"

    mismatches: List[str] = []
    for (sim_cycles, entries, attacker_entries, seeds), group \
            in groups.items():
        spec = ExperimentSpec.tiny(
            sim_cycles=sim_cycles,
            entries_per_core=entries,
            attacker_entries=attacker_entries,
            seeds=seeds,
            engine="fast",
        )
        points = [RunPoint(s.mix, s.mechanism, s.nrh, s.breakhammer, seed)
                  for s in group for seed in seeds]
        # cache_dir="" keeps both sessions hermetic: never share state
        # through the disk, even under an exported REPRO_CACHE_DIR.
        with Session(spec, jobs=1, cache_dir="") as serial, \
                Session(spec, cache_dir="", **parallel_kwargs) as parallel:
            # submit_grid returns one handle per *distinct* point; key the
            # lookup so duplicated scenarios compare against their own run.
            handles = dict(zip(dict.fromkeys(points),
                               parallel.submit_grid(points)))
            for scenario in group:
                for seed in seeds:
                    point = RunPoint(scenario.mix, scenario.mechanism,
                                     scenario.nrh, scenario.breakhammer, seed)
                    lhs = serial.run(point.mix, point.mechanism, point.nrh,
                                     point.breakhammer, seed=seed)
                    rhs = handles[point].result()
                    if dataclasses.asdict(lhs) != dataclasses.asdict(rhs):
                        mismatches.append(
                            f"jobs=1 vs {rhs_label} diverge on "
                            f"{scenario.label} seed={seed}"
                        )
    return mismatches


# ---------------------------------------------------------------------- #
# Shrinking
# ---------------------------------------------------------------------- #
def shrink(scenario: Scenario,
           still_fails: Optional[Callable[[Scenario], bool]] = None,
           max_attempts: int = 200) -> Scenario:
    """Greedily minimise a failing scenario.

    ``still_fails`` decides whether a candidate still reproduces the
    failure (default: the engine differential diverges).  Each accepted
    simplification restarts the candidate sweep, so the result is a local
    minimum: no single simplification keeps it failing.
    """

    if still_fails is None:
        def still_fails(candidate: Scenario) -> bool:
            return not run_differential(candidate).identical

    attempts = 0
    current = scenario
    progressed = True
    while progressed and attempts < max_attempts:
        progressed = False
        for candidate in simplifications(current):
            attempts += 1
            if still_fails(candidate):
                current = candidate
                progressed = True
                break
            if attempts >= max_attempts:
                break
    return current


def repro_snippet(scenario: Scenario) -> str:
    """A paste-able reproduction of one divergent scenario."""

    return (
        "from repro.testing import Scenario, run_differential\n"
        f"scenario = {scenario!r}\n"
        "report = run_differential(scenario)\n"
        "assert report.identical, report.mismatched_fields\n"
        "# Bisect: the cycle engine is the reference; rerun sweeps with\n"
        "# REPRO_ENGINE=cycle to regenerate reference-side figures.\n"
    )


# ---------------------------------------------------------------------- #
# Campaign CLI
# ---------------------------------------------------------------------- #
def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.fuzz",
        description="Differential fuzzing campaign over the dual-engine "
                    "simulation contract.",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--count", type=int, default=100,
                        help="scenarios to run (default 100)")
    parser.add_argument("--budget", type=float, default=None,
                        help="wall-clock budget in seconds; the campaign "
                             "stops early when exceeded")
    parser.add_argument("--profile", choices=("smoke", "campaign"),
                        default="smoke",
                        help="sampling ranges: 'smoke' (tier-1 sized runs, "
                             "default) or 'campaign' (longer runs)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="also run harness-shaped scenarios through a "
                             "process pool of this size and diff against "
                             "serial (default 1 = engine differential only)")
    parser.add_argument("--no-cluster", action="store_true",
                        help="with --jobs > 1, skip the cluster-backend "
                             "differential (broker + --jobs local workers "
                             "over the cluster corpus)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report divergences without minimising them")
    return parser.parse_args(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse_args(argv)
    profile = (FuzzProfile.campaign() if args.profile == "campaign"
               else FuzzProfile.smoke())
    scenarios = generate_scenarios(args.seed, args.count, profile)

    started = time.perf_counter()
    executed: List[Scenario] = []
    failures: List[DifferentialReport] = []
    ticks_cycle = ticks_fast = 0
    for index, scenario in enumerate(scenarios):
        if args.budget is not None \
                and time.perf_counter() - started > args.budget:
            print(f"budget exhausted after {len(executed)}/{len(scenarios)} "
                  "scenarios")
            break
        report = run_differential(scenario)
        executed.append(scenario)
        ticks_cycle += report.ticks_cycle
        ticks_fast += report.ticks_fast
        if not report.identical:
            failures.append(report)
            print(report.summary())
        elif (index + 1) % 10 == 0:
            elapsed = time.perf_counter() - started
            print(f"[{index + 1}/{len(scenarios)}] ok, "
                  f"{(index + 1) / elapsed:.2f} scenarios/s")

    batch_mismatches: List[str] = []
    batch_checked = 0
    if not failures:
        from repro.testing.scenarios import batch_corpus

        # Batched-vs-solo: the fixed batch corpus plus a slice of this
        # campaign's batch-checking samples, run as heterogeneous lockstep
        # batches against solo fast runs.
        batch_candidates = batch_corpus() + [
            s for s in executed if "batch" in s.check_engines
        ][:8]
        batch_checked = len(batch_candidates)
        batch_mismatches = batch_differential(batch_candidates)
        print(f"batch differential: {batch_checked} scenarios batched "
              "vs solo")
        for line in batch_mismatches:
            print(line)

    executor_mismatches: List[str] = []
    executor_checked = 0
    cluster_checked = 0
    if args.jobs > 1 and not failures:
        from repro.testing.scenarios import cluster_corpus, executor_corpus

        # Random campaigns rarely sample harness-shaped scenarios (the
        # shape is a conjunction of several constraints), so the fixed
        # executor corpus always rides along — the serial-vs-parallel
        # contract is genuinely exercised on every --jobs run.
        candidates = [s for s in executed if s.harness_shaped()]
        candidates.extend(executor_corpus())
        executor_checked = len(candidates)
        executor_mismatches = executor_differential(candidates,
                                                    jobs=args.jobs)
        print(f"executor differential: {executor_checked} harness-shaped "
              f"scenarios under jobs=1 vs jobs={args.jobs}")
        if not args.no_cluster:
            # The cluster fabric is the third executor backend; pit serial
            # against a broker + local socket workers over the fixed
            # cluster corpus (one shared shape = one worker fleet).
            cluster_candidates = cluster_corpus()
            cluster_checked = len(cluster_candidates)
            executor_mismatches.extend(executor_differential(
                cluster_candidates, jobs=args.jobs, backend="cluster"
            ))
            print(f"cluster differential: {cluster_checked} scenarios "
                  f"under jobs=1 vs cluster({args.jobs} workers)")
        for line in executor_mismatches:
            print(line)

    elapsed = max(1e-9, time.perf_counter() - started)
    executor_note = (
        f"{len(executor_mismatches)} executor divergence(s) "
        f"across {executor_checked} pool + {cluster_checked} cluster checked"
        if executor_checked
        else "executor differential not run (use --jobs 2)"
    )
    print(f"ran {len(executed)} scenarios in {elapsed:.2f}s "
          f"({len(executed) / elapsed:.2f} scenarios/s); "
          f"fast engine ticked {ticks_fast}/{ticks_cycle} cycles "
          f"({ticks_cycle / max(1, ticks_fast):.2f}x skip factor); "
          f"{len(failures)} engine divergence(s); "
          f"{len(batch_mismatches)} batched-vs-solo divergence(s) "
          f"across {batch_checked} checked; {executor_note}")

    if failures and not args.no_shrink:
        worst = failures[0]
        print("shrinking first divergence ...")
        minimal = shrink(worst.scenario)
        print("minimal failing scenario:")
        print(repro_snippet(minimal))
    return 1 if failures or batch_mismatches or executor_mismatches else 0


if __name__ == "__main__":
    sys.exit(main())

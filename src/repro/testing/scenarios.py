"""Scenario space of the differential fuzzer.

A :class:`Scenario` is one fully specified simulation setup: workload mix
(benign intensities, attacker, DMA stream), mitigation mechanism and its
threshold, BreakHammer, device geometry (rank count, timing compression),
scheduler policy, and every run-bounding knob the engines must agree on
(cycle budget, warmup boundary, instruction limit).  The sampler draws
scenarios from that space deterministically from a seed, so any scenario —
and any whole campaign — can be replayed exactly.

Mechanism coverage is guaranteed, not hoped for: scenario ``i`` of a batch
uses mechanism ``FUZZ_MECHANISMS[i % len]``, so any batch of at least ten
scenarios exercises every registered mitigation (the paper's eight paired
mechanisms plus ``none`` and BlockHammer); the remaining dimensions are
sampled randomly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.dram.config import DeviceConfig
from repro.mitigations.registry import PAIRED_MECHANISMS
from repro.sim.config import SimulationConfig, SystemConfig
from repro.workloads.attacker import AttackerConfig
from repro.workloads.mixes import WorkloadMix, make_mix

#: Every mechanism the fuzzer rotates through (registry order: the paper's
#: eight BreakHammer-paired mechanisms, the no-mitigation baseline, and
#: BlockHammer).
FUZZ_MECHANISMS: Tuple[str, ...] = (*PAIRED_MECHANISMS, "none", "blockhammer")

#: Seed of the fixed pytest corpora (``-m fuzz_smoke``); never change it
#: without re-validating the corpus, it defines which scenarios CI pins.
CORPUS_SEED = 2024


@dataclass(frozen=True)
class Scenario:
    """One point of the differential-fuzzing space (picklable, replayable)."""

    seed: int
    mix: str
    mechanism: str
    nrh: int
    breakhammer: bool
    sim_cycles: int
    warmup_cycles: int = 0
    instruction_limit: Optional[int] = None
    entries_per_core: int = 1_200
    attacker_entries: int = 1_600
    ranks: int = 2
    scheduler: str = "frfcfs_cap"
    time_compression: float = 4.0

    @property
    def label(self) -> str:
        """Compact id used by pytest parametrisation and CLI progress."""

        extras = []
        if self.breakhammer:
            extras.append("bh")
        if self.warmup_cycles:
            extras.append(f"w{self.warmup_cycles}")
        if self.instruction_limit:
            extras.append(f"il{self.instruction_limit}")
        if self.ranks != 2:
            extras.append(f"r{self.ranks}")
        suffix = ("-" + "-".join(extras)) if extras else ""
        return (f"s{self.seed}-{self.mix}-{self.mechanism}"
                f"-nrh{self.nrh}{suffix}")

    def harness_shaped(self) -> bool:
        """Whether the experiment harness can express this scenario.

        The serial-vs-parallel executor differential runs scenarios through
        :class:`repro.analysis.experiments.ExperimentRunner`, whose grid
        only varies (mix, mechanism, nrh, breakhammer, seed) on top of the
        default fast-profile machine.
        """

        return (
            self.warmup_cycles == 0
            and self.instruction_limit is None
            and self.ranks == 2
            and self.scheduler == "frfcfs_cap"
            and self.time_compression == 4.0
            and "D" not in self.mix
            and len(self.mix) == 4  # the harness machine has four cores
        )


@dataclass(frozen=True)
class FuzzProfile:
    """Sampling ranges of one fuzzing campaign."""

    sim_cycles_choices: Tuple[int, ...] = (800, 1_200, 1_600, 2_000)
    entries_choices: Tuple[int, ...] = (600, 1_200)
    attacker_entries_choices: Tuple[int, ...] = (800, 1_600)
    nrh_choices: Tuple[int, ...] = (16, 64, 256, 1_024)
    max_cores: int = 4
    trace_seeds: int = 4

    @classmethod
    def smoke(cls) -> "FuzzProfile":
        """Small enough for the tier-1 ``fuzz_smoke`` corpus."""

        return cls()

    @classmethod
    def campaign(cls) -> "FuzzProfile":
        """Longer runs for offline campaigns (more cycles per scenario)."""

        return cls(
            sim_cycles_choices=(2_000, 4_000, 6_000, 8_000),
            entries_choices=(1_200, 2_400),
            attacker_entries_choices=(1_600, 3_200),
        )


def _sample_mix(rng: random.Random, max_cores: int) -> str:
    """A mix string over {H, M, L, A, D} with 1..max_cores cores."""

    length = rng.randint(1, max_cores)
    letters = [rng.choice("HML") for _ in range(length)]
    if rng.random() < 0.55:
        letters[rng.randrange(length)] = "A"
        # Occasionally saturate with a second attacker (back-off storms).
        if length > 1 and rng.random() < 0.2:
            letters[rng.randrange(length)] = "A"
    if rng.random() < 0.3:
        slots = [i for i, letter in enumerate(letters) if letter != "A"]
        if slots:
            letters[rng.choice(slots)] = "D"
    return "".join(letters)


def _sample_scenario(rng: random.Random, index: int,
                     profile: FuzzProfile) -> Scenario:
    sim_cycles = rng.choice(profile.sim_cycles_choices)
    warmup = rng.choice((0, 0, 0, sim_cycles // 4, sim_cycles // 2))
    limit = rng.choice((None, None, None, 200, 500, 1_500))
    return Scenario(
        seed=rng.randrange(profile.trace_seeds),
        mix=_sample_mix(rng, profile.max_cores),
        mechanism=FUZZ_MECHANISMS[index % len(FUZZ_MECHANISMS)],
        nrh=rng.choice(profile.nrh_choices),
        breakhammer=rng.random() < 0.5,
        sim_cycles=sim_cycles,
        warmup_cycles=warmup,
        instruction_limit=limit,
        entries_per_core=rng.choice(profile.entries_choices),
        attacker_entries=rng.choice(profile.attacker_entries_choices),
        ranks=rng.choice((1, 2, 2)),
        scheduler=rng.choice(("frfcfs_cap", "frfcfs_cap", "frfcfs", "fcfs")),
        time_compression=rng.choice((4.0, 4.0, 2.0)),
    )


def generate_scenarios(seed: int, count: int,
                       profile: Optional[FuzzProfile] = None
                       ) -> List[Scenario]:
    """``count`` scenarios drawn deterministically from ``seed``."""

    profile = profile or FuzzProfile.smoke()
    rng = random.Random(seed)
    return [_sample_scenario(rng, index, profile) for index in range(count)]


def fuzz_corpus(count: int = 30) -> List[Scenario]:
    """The fixed-seed corpus the ``fuzz_smoke`` pytest tier replays.

    Spans every registered mechanism (``count >= len(FUZZ_MECHANISMS)``),
    single- to four-core mixes with attackers and DMA streams, both rank
    geometries, all schedulers, and warmup/instruction-limit combinations.
    """

    return generate_scenarios(CORPUS_SEED, count, FuzzProfile.smoke())


def executor_corpus() -> List[Scenario]:
    """Harness-shaped scenarios for the serial-vs-parallel differential.

    All share one harness shape (cycle budget, trace sizes, seed) so a
    single worker pool serves the whole batch; they vary the grid
    coordinates the sweep executor actually shards.
    """

    shape = dict(sim_cycles=1_200, entries_per_core=600,
                 attacker_entries=800, seed=0)
    grid = [
        ("MMLA", "para", 64, True),
        ("HHMA", "graphene", 64, False),
        ("HMLA", "prac", 16, True),
        ("HHAA", "rfm", 64, False),
        ("MMLL", "hydra", 256, True),
        ("HMML", "none", 1_024, False),
    ]
    return [
        Scenario(mix=mix, mechanism=mechanism, nrh=nrh, breakhammer=bh,
                 **shape)
        for mix, mechanism, nrh, bh in grid
    ]


# ---------------------------------------------------------------------- #
# Scenario -> simulation inputs
# ---------------------------------------------------------------------- #
def build_system_config(scenario: Scenario) -> SystemConfig:
    """The :class:`SystemConfig` a scenario describes.

    Starts from the scaled fast profile (so BreakHammer's window scaling
    matches the harness) and applies the scenario's machine knobs.
    """

    config = SystemConfig.fast_profile(
        mitigation=scenario.mechanism,
        nrh=scenario.nrh,
        breakhammer_enabled=scenario.breakhammer,
        sim_cycles=scenario.sim_cycles,
        time_compression=scenario.time_compression,
    )
    changes = {
        "num_cores": len(scenario.mix),
        "scheduler": scenario.scheduler,
    }
    if scenario.ranks != config.device.ranks:
        device = DeviceConfig.ddr5_4800(rows_per_bank=4096,
                                        ranks=scenario.ranks)
        if scenario.time_compression != 1.0:
            device = device.time_compressed(scenario.time_compression)
        changes["device"] = device
    return config.with_(**changes)


def build_workload(scenario: Scenario,
                   config: Optional[SystemConfig] = None) -> WorkloadMix:
    """The workload mix a scenario describes (deterministic from the seed)."""

    config = config or build_system_config(scenario)
    return make_mix(
        scenario.mix,
        device=config.device,
        mapping=config.mapping,
        entries_per_core=scenario.entries_per_core,
        attacker_entries=scenario.attacker_entries,
        seed=scenario.seed,
        attacker_config=AttackerConfig(entries=scenario.attacker_entries,
                                       seed=scenario.seed),
    )


def build_simulation_config(scenario: Scenario,
                            engine: str) -> SimulationConfig:
    """The run bounds a scenario describes, for ``engine``."""

    return SimulationConfig(
        max_cycles=scenario.sim_cycles,
        engine=engine,
        instruction_limit=scenario.instruction_limit,
        warmup_cycles=scenario.warmup_cycles,
    )


def simplifications(scenario: Scenario) -> List[Scenario]:
    """Strictly simpler variants of ``scenario``, for the shrinker.

    Ordered most-aggressive first: dropping a core removes an entire trace,
    halving the budget halves the run, and clearing warmup / instruction
    limit / BreakHammer removes a whole contract dimension.  Machine-shape
    knobs (scheduler, ranks, compression) are left alone — changing them
    would change *which* bug is being reproduced.
    """

    candidates: List[Scenario] = []
    if len(scenario.mix) > 1:
        candidates.extend(
            replace(scenario, mix=scenario.mix[:i] + scenario.mix[i + 1:])
            for i in range(len(scenario.mix))
        )
    if scenario.sim_cycles > 400:
        shorter = scenario.sim_cycles // 2
        candidates.append(replace(
            scenario,
            sim_cycles=shorter,
            warmup_cycles=min(scenario.warmup_cycles, shorter // 2),
        ))
    if scenario.warmup_cycles:
        candidates.append(replace(scenario, warmup_cycles=0))
    if scenario.instruction_limit is not None:
        candidates.append(replace(scenario, instruction_limit=None))
    if scenario.breakhammer:
        candidates.append(replace(scenario, breakhammer=False))
    if scenario.entries_per_core > 300:
        candidates.append(replace(
            scenario, entries_per_core=scenario.entries_per_core // 2))
    if scenario.attacker_entries > 400:
        candidates.append(replace(
            scenario, attacker_entries=scenario.attacker_entries // 2))
    return candidates

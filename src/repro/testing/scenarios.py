"""Scenario space of the differential fuzzer.

A :class:`Scenario` is one fully specified simulation setup: workload mix
(benign intensities, attacker, DMA stream), mitigation mechanism with its
threshold *and its internals* (``mitigation_kwargs``: PRAC back-off
servicing, Graphene/Hydra table sizes), BreakHammer, device geometry (rank
count, timing compression), scheduler policy, and every run-bounding knob
the engines must agree on (cycle budget, warmup boundary, instruction
limit).  The sampler draws
scenarios from that space deterministically from a seed, so any scenario —
and any whole campaign — can be replayed exactly.

Mechanism coverage is guaranteed, not hoped for: scenario ``i`` of a batch
uses mechanism ``FUZZ_MECHANISMS[i % len]``, so any batch of at least ten
scenarios exercises every registered mitigation (the paper's eight paired
mechanisms plus ``none`` and BlockHammer); the remaining dimensions are
sampled randomly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.dram.config import DeviceConfig
from repro.mitigations.registry import PAIRED_MECHANISMS
from repro.sim.config import SimulationConfig, SystemConfig
from repro.workloads.attacker import AttackerConfig
from repro.workloads.mixes import ATTACKER_LETTERS, WorkloadMix, make_mix

#: Every mechanism the fuzzer rotates through (registry order: the paper's
#: eight BreakHammer-paired mechanisms, the no-mitigation baseline, and
#: BlockHammer).
FUZZ_MECHANISMS: Tuple[str, ...] = (*PAIRED_MECHANISMS, "none", "blockhammer")

#: Attacker letters the sampler rotates through by scenario index (like
#: mechanisms and ``check_engines`` — never an RNG draw, so adding
#: geometries cannot perturb how other dimensions sample): ``A`` is the
#: paper's double-sided attacker, ``S`` many-sided, ``X`` half-double.
ATTACK_LETTER_ROTATION: Tuple[str, ...] = tuple(ATTACKER_LETTERS)

#: Seed of the fixed pytest corpora (``-m fuzz_smoke``); never change it
#: without re-validating the corpus, it defines which scenarios CI pins.
CORPUS_SEED = 2024


@dataclass(frozen=True)
class Scenario:
    """One point of the differential-fuzzing space (picklable, replayable)."""

    seed: int
    mix: str
    mechanism: str
    nrh: int
    breakhammer: bool
    sim_cycles: int
    warmup_cycles: int = 0
    instruction_limit: Optional[int] = None
    entries_per_core: int = 1_200
    attacker_entries: int = 1_600
    ranks: int = 2
    scheduler: str = "frfcfs_cap"
    time_compression: float = 4.0
    #: Per-mechanism constructor overrides (PRAC back-off servicing,
    #: Graphene/Hydra table sizes, …) as sorted (name, value) pairs so the
    #: scenario stays hashable, picklable, and replayable from its repr.
    mitigation_kwargs: Tuple[Tuple[str, object], ...] = ()
    #: Additional trace seeds beyond ``seed``: a non-empty tuple turns the
    #: executor/cluster differentials into multi-seed sweeps (the grid
    #: point is replayed once per seed of :attr:`seeds`), pinning the
    #: statistical seed axis through every execution backend.
    extra_seeds: Tuple[int, ...] = ()
    #: Engines diffed against the ``cycle`` reference by
    #: :func:`repro.testing.fuzz.run_differential`.  The sampler rotates
    #: ``("batch",)`` in (like mechanisms: by index, so rotation never
    #: perturbs the other dimensions' draws), keeping the tri-engine
    #: contract generatively enforced at unchanged campaign cost.
    check_engines: Tuple[str, ...] = ("fast",)

    @property
    def seeds(self) -> Tuple[int, ...]:
        """The full seed axis of this scenario (primary seed first)."""

        return (self.seed, *self.extra_seeds)

    @property
    def label(self) -> str:
        """Compact id used by pytest parametrisation and CLI progress."""

        extras = []
        if self.breakhammer:
            extras.append("bh")
        if self.warmup_cycles:
            extras.append(f"w{self.warmup_cycles}")
        if self.instruction_limit:
            extras.append(f"il{self.instruction_limit}")
        if self.ranks != 2:
            extras.append(f"r{self.ranks}")
        extras.extend(
            f"{name.replace('_', '')}{value}"
            for name, value in self.mitigation_kwargs
        )
        if self.extra_seeds:
            extras.append("ms" + "".join(str(s) for s in self.extra_seeds))
        if self.check_engines != ("fast",):
            extras.append("e" + "".join(e[0] for e in self.check_engines))
        suffix = ("-" + "-".join(extras)) if extras else ""
        return (f"s{self.seed}-{self.mix}-{self.mechanism}"
                f"-nrh{self.nrh}{suffix}")

    def harness_shaped(self) -> bool:
        """Whether the experiment harness can express this scenario.

        The serial-vs-parallel executor differential runs scenarios through
        :class:`repro.analysis.experiments.ExperimentRunner`, whose grid
        only varies (mix, mechanism, nrh, breakhammer, seed) on top of the
        default fast-profile machine.
        """

        return (
            self.warmup_cycles == 0
            and self.instruction_limit is None
            and self.ranks == 2
            and self.scheduler == "frfcfs_cap"
            and self.time_compression == 4.0
            and not self.mitigation_kwargs  # grid points use registry defaults
            and "D" not in self.mix
            and len(self.mix) == 4  # the harness machine has four cores
        )


@dataclass(frozen=True)
class FuzzProfile:
    """Sampling ranges of one fuzzing campaign."""

    sim_cycles_choices: Tuple[int, ...] = (800, 1_200, 1_600, 2_000)
    entries_choices: Tuple[int, ...] = (600, 1_200)
    attacker_entries_choices: Tuple[int, ...] = (800, 1_600)
    nrh_choices: Tuple[int, ...] = (16, 64, 256, 1_024)
    max_cores: int = 4
    trace_seeds: int = 4

    @classmethod
    def smoke(cls) -> "FuzzProfile":
        """Small enough for the tier-1 ``fuzz_smoke`` corpus."""

        return cls()

    @classmethod
    def campaign(cls) -> "FuzzProfile":
        """Longer runs for offline campaigns (more cycles per scenario)."""

        return cls(
            sim_cycles_choices=(2_000, 4_000, 6_000, 8_000),
            entries_choices=(1_200, 2_400),
            attacker_entries_choices=(1_600, 3_200),
        )


#: Per-mechanism `mitigation_kwargs` pools the fuzzer samples from, so the
#: differential contract covers mechanism *internals*, not just thresholds:
#: PRAC's back-off servicing knobs and the Graphene/Hydra table sizes
#: (smaller tables force spillover / RCC-miss paths that the defaults
#: rarely exercise at fuzzing scale).
MITIGATION_KWARG_POOLS: dict = {
    "prac": (
        ("rfm_per_backoff", (1, 2, 3, 4)),
        ("blast_radius", (1, 2)),
    ),
    "graphene": (
        ("table_entries", (4, 16, 64)),
    ),
    "hydra": (
        ("rcc_entries_per_bank", (4, 16, 64)),
        ("group_size", (32, 64, 128)),
    ),
}


def _sample_mitigation_kwargs(rng: random.Random, mechanism: str
                              ) -> Tuple[Tuple[str, object], ...]:
    """Sorted (name, value) overrides for ``mechanism`` (often empty).

    Always consumes the same number of RNG draws for a given mechanism, so
    adding pools never perturbs the sampling of later dimensions within a
    scenario.
    """

    pools = MITIGATION_KWARG_POOLS.get(mechanism)
    if pools is None:
        return ()
    chosen = []
    sample_any = rng.random() < 0.55
    for name, values in pools:
        pick = rng.random() < 0.7
        value = rng.choice(values)
        if sample_any and pick:
            chosen.append((name, value))
    return tuple(sorted(chosen))


def _sample_mix(rng: random.Random, max_cores: int,
                attack_letter: str = "A") -> str:
    """A mix string over the workload alphabet with 1..max_cores cores.

    ``attack_letter`` selects which hammering geometry an attacker core
    (if placed) uses; the caller rotates it by scenario index so the RNG
    stream is identical whichever letter lands.
    """

    length = rng.randint(1, max_cores)
    letters = [rng.choice("HML") for _ in range(length)]
    if rng.random() < 0.55:
        letters[rng.randrange(length)] = attack_letter
        # Occasionally saturate with a second attacker (back-off storms).
        if length > 1 and rng.random() < 0.2:
            letters[rng.randrange(length)] = attack_letter
    if rng.random() < 0.3:
        slots = [i for i, letter in enumerate(letters)
                 if letter not in ATTACKER_LETTERS]
        if slots:
            letters[rng.choice(slots)] = "D"
    return "".join(letters)


def _sample_extra_seeds(index: int, base_seed: int,
                        sim_cycles: int) -> Tuple[int, ...]:
    """Extra seeds (length 0–2, i.e. seed tuples of length 1–3).

    Drawn from a scenario-local RNG keyed on already-sampled fields, not
    from the campaign stream: extending the seed axis must never perturb
    how the *other* dimensions of this or any later scenario sample.
    """

    local = random.Random(index * 7919 + base_seed * 131 + sim_cycles)
    length = local.choice((0, 0, 0, 1, 2))
    return tuple(base_seed + 1 + i for i in range(length))


def _sample_scenario(rng: random.Random, index: int,
                     profile: FuzzProfile) -> Scenario:
    sim_cycles = rng.choice(profile.sim_cycles_choices)
    warmup = rng.choice((0, 0, 0, sim_cycles // 4, sim_cycles // 2))
    limit = rng.choice((None, None, None, 200, 500, 1_500))
    mechanism = FUZZ_MECHANISMS[index % len(FUZZ_MECHANISMS)]
    seed = rng.randrange(profile.trace_seeds)
    return Scenario(
        seed=seed,
        # Attack-pattern rotation by index (like mechanisms): scenario i
        # places the double-sided / many-sided / half-double attacker.
        mix=_sample_mix(rng, profile.max_cores,
                        ATTACK_LETTER_ROTATION[
                            index % len(ATTACK_LETTER_ROTATION)]),
        mechanism=mechanism,
        nrh=rng.choice(profile.nrh_choices),
        breakhammer=rng.random() < 0.5,
        sim_cycles=sim_cycles,
        warmup_cycles=warmup,
        instruction_limit=limit,
        entries_per_core=rng.choice(profile.entries_choices),
        attacker_entries=rng.choice(profile.attacker_entries_choices),
        ranks=rng.choice((1, 2, 2)),
        scheduler=rng.choice(("frfcfs_cap", "frfcfs_cap", "frfcfs", "fcfs")),
        time_compression=rng.choice((4.0, 4.0, 2.0)),
        mitigation_kwargs=_sample_mitigation_kwargs(rng, mechanism),
        extra_seeds=_sample_extra_seeds(index, seed, sim_cycles),
        # Index rotation (not an RNG draw): every third scenario checks the
        # batch engine against the cycle reference instead of the fast one.
        # cycle ≡ fast stays pinned by the other two thirds, so all three
        # engines are generatively covered at two runs per scenario.
        check_engines=("batch",) if index % 3 == 2 else ("fast",),
    )


def generate_scenarios(seed: int, count: int,
                       profile: Optional[FuzzProfile] = None
                       ) -> List[Scenario]:
    """``count`` scenarios drawn deterministically from ``seed``."""

    profile = profile or FuzzProfile.smoke()
    rng = random.Random(seed)
    return [_sample_scenario(rng, index, profile) for index in range(count)]


def fuzz_corpus(count: int = 44) -> List[Scenario]:
    """The fixed-seed corpus the ``fuzz_smoke`` pytest tier replays.

    Spans every registered mechanism (``count >= len(FUZZ_MECHANISMS)``),
    single- to four-core mixes with attackers and DMA streams, both rank
    geometries, all schedulers, warmup/instruction-limit combinations, and
    ``mitigation_kwargs`` overrides for every mechanism that samples them
    (PRAC back-off servicing, Graphene and Hydra table sizes) — 44 is the
    smallest count at which the fixed seed reaches all three.  The fixed
    :func:`cluster_corpus` scenarios ride along, so the engine contract
    also covers every grid point the cluster-backend differential replays,
    and :func:`batch_corpus` pins the tri-engine contract on fixed
    scenarios (the sampler's index rotation covers it generatively).
    """

    return (generate_scenarios(CORPUS_SEED, count, FuzzProfile.smoke())
            + cluster_corpus() + batch_corpus())


def batch_corpus() -> List[Scenario]:
    """Fixed scenarios pinning ``cycle ≡ fast ≡ batch`` on every lane kind.

    Each checks both non-reference engines against the cycle reference
    (``check_engines=("fast", "batch")``), covering the batch kernel's
    vectorised-scan lanes *and* its scalar fallbacks: warmup boundaries
    and instruction limits (lockstep stop conditions), BreakHammer,
    mechanism internals, a non-default scheduler and a gating mechanism
    (kernel-ineligible lanes), and a single-rank geometry.  The
    multi-seed scenarios double as the batched-vs-solo corpus
    (:func:`repro.testing.fuzz.batch_differential` expands their seed
    axis into lanes of one lockstep batch).
    """

    both = ("fast", "batch")
    return [
        Scenario(seed=0, mix="MMLA", mechanism="graphene", nrh=64,
                 breakhammer=True, sim_cycles=1_200, entries_per_core=600,
                 attacker_entries=800, check_engines=both),
        Scenario(seed=1, mix="HHMA", mechanism="para", nrh=256,
                 breakhammer=False, sim_cycles=1_200, warmup_cycles=400,
                 entries_per_core=600, attacker_entries=800,
                 check_engines=both),
        Scenario(seed=2, mix="HMLA", mechanism="prac", nrh=16,
                 breakhammer=True, sim_cycles=1_600, instruction_limit=500,
                 entries_per_core=600, attacker_entries=800,
                 mitigation_kwargs=(("rfm_per_backoff", 2),),
                 check_engines=both),
        # Kernel-ineligible lanes: non-default scheduler / gating mechanism
        # run the ordinary scalar scan inside the lockstep loop.
        Scenario(seed=0, mix="MMDA", mechanism="hydra", nrh=64,
                 breakhammer=False, sim_cycles=1_200, scheduler="frfcfs",
                 entries_per_core=600, attacker_entries=800,
                 check_engines=both),
        Scenario(seed=3, mix="HLA", mechanism="blockhammer", nrh=64,
                 breakhammer=False, sim_cycles=1_200, ranks=1,
                 entries_per_core=600, attacker_entries=800,
                 check_engines=both),
        # Multi-seed: expanded into lanes by the batched-vs-solo check.
        Scenario(seed=0, mix="MMLA", mechanism="rfm", nrh=128,
                 breakhammer=True, sim_cycles=1_200, entries_per_core=600,
                 attacker_entries=800, extra_seeds=(1, 2),
                 check_engines=both),
        Scenario(seed=0, mix="HHMA", mechanism="graphene", nrh=128,
                 breakhammer=False, sim_cycles=1_200, entries_per_core=600,
                 attacker_entries=800, extra_seeds=(1,),
                 check_engines=both),
    ]


def executor_corpus() -> List[Scenario]:
    """Harness-shaped scenarios for the serial-vs-parallel differential.

    All share one harness shape (cycle budget, trace sizes, seed) so a
    single worker pool serves the whole batch; they vary the grid
    coordinates the sweep executor actually shards.
    """

    shape = dict(sim_cycles=1_200, entries_per_core=600,
                 attacker_entries=800, seed=0)
    grid = [
        ("MMLA", "para", 64, True, ()),
        ("HHMA", "graphene", 64, False, ()),
        ("HMLA", "prac", 16, True, ()),
        ("HHAA", "rfm", 64, False, ()),
        ("MMLL", "hydra", 256, True, ()),
        ("HMML", "none", 1_024, False, ()),
        # Multi-seed grid points: the differential replays these once per
        # seed, asserting serial and sharded sweeps agree on the seed axis.
        ("HHMA", "graphene", 256, False, (1,)),
        ("MMLA", "rfm", 256, True, (1, 2)),
    ]
    return [
        Scenario(mix=mix, mechanism=mechanism, nrh=nrh, breakhammer=bh,
                 extra_seeds=extra, **shape)
        for mix, mechanism, nrh, bh, extra in grid
    ]


def cluster_corpus() -> List[Scenario]:
    """Cluster-shaped scenarios for the broker/worker differential.

    Like :func:`executor_corpus` these are harness-shaped and share one
    harness shape, so a single broker + worker fleet serves the whole
    batch; ``nrh=128`` (outside the random sampler's choice set) keeps
    their labels distinct from every sampled scenario.  They are part of
    the fixed :func:`fuzz_corpus`, and
    ``repro.testing.fuzz --jobs N`` replays them against a broker with N
    spawned local socket workers (``tests/test_cluster.py`` replays them
    in tier-1).
    """

    shape = dict(sim_cycles=1_200, entries_per_core=600,
                 attacker_entries=800, seed=0)
    grid = [
        ("MMLA", "para", 128, True, ()),
        ("HHMA", "graphene", 128, False, ()),
        ("MLLA", "prac", 128, True, ()),
        ("MMLL", "hydra", 128, False, ()),
        ("HMLA", "rfm", 128, True, ()),
        # Multi-seed grid points: the broker schedules the multiplied grid
        # across its workers; results must match the serial seed axis.
        ("MMLA", "graphene", 128, True, (1,)),
        ("HHMA", "rfm", 128, False, (1, 2)),
    ]
    return [
        Scenario(mix=mix, mechanism=mechanism, nrh=nrh, breakhammer=bh,
                 extra_seeds=extra, **shape)
        for mix, mechanism, nrh, bh, extra in grid
    ]


# ---------------------------------------------------------------------- #
# Scenario -> simulation inputs
# ---------------------------------------------------------------------- #
def build_system_config(scenario: Scenario) -> SystemConfig:
    """The :class:`SystemConfig` a scenario describes.

    Starts from the scaled fast profile (so BreakHammer's window scaling
    matches the harness) and applies the scenario's machine knobs.
    """

    config = SystemConfig.fast_profile(
        mitigation=scenario.mechanism,
        nrh=scenario.nrh,
        breakhammer_enabled=scenario.breakhammer,
        sim_cycles=scenario.sim_cycles,
        time_compression=scenario.time_compression,
    )
    changes = {
        "num_cores": len(scenario.mix),
        "scheduler": scenario.scheduler,
    }
    if scenario.mitigation_kwargs:
        changes["mitigation_kwargs"] = dict(scenario.mitigation_kwargs)
    if scenario.ranks != config.device.ranks:
        device = DeviceConfig.ddr5_4800(rows_per_bank=4096,
                                        ranks=scenario.ranks)
        if scenario.time_compression != 1.0:
            device = device.time_compressed(scenario.time_compression)
        changes["device"] = device
    return config.with_(**changes)


def build_workload(scenario: Scenario,
                   config: Optional[SystemConfig] = None) -> WorkloadMix:
    """The workload mix a scenario describes (deterministic from the seed)."""

    config = config or build_system_config(scenario)
    return make_mix(
        scenario.mix,
        device=config.device,
        mapping=config.mapping,
        entries_per_core=scenario.entries_per_core,
        attacker_entries=scenario.attacker_entries,
        seed=scenario.seed,
        attacker_config=AttackerConfig(entries=scenario.attacker_entries,
                                       seed=scenario.seed),
    )


def build_simulation_config(scenario: Scenario,
                            engine: str) -> SimulationConfig:
    """The run bounds a scenario describes, for ``engine``."""

    return SimulationConfig(
        max_cycles=scenario.sim_cycles,
        engine=engine,
        instruction_limit=scenario.instruction_limit,
        warmup_cycles=scenario.warmup_cycles,
    )


def simplifications(scenario: Scenario) -> List[Scenario]:
    """Strictly simpler variants of ``scenario``, for the shrinker.

    Ordered most-aggressive first: dropping a core removes an entire trace,
    halving the budget halves the run, and clearing warmup / instruction
    limit / BreakHammer removes a whole contract dimension.  Machine-shape
    knobs (scheduler, ranks, compression) are left alone — changing them
    would change *which* bug is being reproduced.
    """

    candidates: List[Scenario] = []
    if len(scenario.mix) > 1:
        candidates.extend(
            replace(scenario, mix=scenario.mix[:i] + scenario.mix[i + 1:])
            for i in range(len(scenario.mix))
        )
    if scenario.sim_cycles > 400:
        shorter = scenario.sim_cycles // 2
        candidates.append(replace(
            scenario,
            sim_cycles=shorter,
            warmup_cycles=min(scenario.warmup_cycles, shorter // 2),
        ))
    if scenario.warmup_cycles:
        candidates.append(replace(scenario, warmup_cycles=0))
    if scenario.instruction_limit is not None:
        candidates.append(replace(scenario, instruction_limit=None))
    if scenario.breakhammer:
        candidates.append(replace(scenario, breakhammer=False))
    if scenario.mitigation_kwargs:
        # Drop all overrides first, then one at a time.
        candidates.append(replace(scenario, mitigation_kwargs=()))
        if len(scenario.mitigation_kwargs) > 1:
            candidates.extend(
                replace(scenario, mitigation_kwargs=tuple(
                    kv for j, kv in enumerate(scenario.mitigation_kwargs)
                    if j != i
                ))
                for i in range(len(scenario.mitigation_kwargs))
            )
    if scenario.entries_per_core > 300:
        candidates.append(replace(
            scenario, entries_per_core=scenario.entries_per_core // 2))
    if scenario.attacker_entries > 400:
        candidates.append(replace(
            scenario, attacker_entries=scenario.attacker_entries // 2))
    return candidates

"""Lockstep batch simulation engine.

:class:`BatchSimulator` advances many *independent* simulations ("lanes")
in lockstep: each iteration picks the minimum pending event cycle across
all live lanes and ticks exactly the lanes due at that cycle, replicating
the fast engine's per-lane loop (same jump targets, same warmup clamp,
same stop conditions) so every lane's :class:`RunStatistics` is
bit-identical to a solo ``engine="fast"`` (and hence ``engine="cycle"``)
run of the same configuration.

Two batch-only accelerations ride on the lockstep structure, both exact:

* the vectorised FR-FCFS+Cap scan of :mod:`repro.sim.batch.kernel`
  computes all due lanes' scheduling decisions as one array program per
  global cycle and installs them as validated one-shot predictions;
* ``System.batch_core_skip`` elides core ticks that are provably limited
  to stall accounting, which ``Core.tick``'s catch-up replays exactly.

Lanes the kernel cannot vectorise (gating mitigations, non-default
schedulers, more banks than the scheduler's attempt budget) run the
ordinary scalar scan inside the same lockstep loop.

``Simulator.run()`` with ``engine="batch"`` delegates here with a batch
of one; the sweep layer groups compatible grid points into larger batches
(see :meth:`repro.analysis.experiments.ExperimentRunner.run_batch_group`).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.sim.batch import kernel as _kernel
from repro.sim.simulator import SimulationResult, Simulator


class _Lane:
    """One simulation in the lockstep batch (plus kernel mirror state)."""

    def __init__(self, index: int, sim: Simulator) -> None:
        self.index = index
        self.sim = sim
        self.next_cycle = 0
        # (final cycle, finished_by_instruction_limit) once the lane stops.
        self.end: Optional[Tuple[int, bool]] = None
        # Set by the kernel when it can vectorise this lane's scan.
        self.eligible = False


class BatchSimulator:
    """Runs a batch of independent simulations in lockstep."""

    def __init__(self, simulators: List[Simulator],
                 accelerate: bool = True) -> None:
        if not simulators:
            raise ValueError("batch needs at least one simulator")
        self.simulators = list(simulators)
        self.accelerate = accelerate
        self.accelerator = None

    # ------------------------------------------------------------------ #
    def run(self) -> List[SimulationResult]:
        """Run every lane to completion; results in input order."""

        lanes = [_Lane(i, sim) for i, sim in enumerate(self.simulators)]
        for lane in lanes:
            sim = lane.sim
            cfg = sim.sim_config
            if cfg.stop_when_benign_done and cfg.instruction_limit is not None:
                sim.system.track_instruction_limit(
                    cfg.instruction_limit, sim.benign_threads
                )
            sim.system.batch_core_skip = True
            # First tick: the fast engine always simulates cycle 1.
            lane.next_cycle = min(1, cfg.max_cycles)

        accel = None
        if self.accelerate and _kernel.numpy_available():
            accel = _kernel.ScanAccelerator(lanes)
            if not accel.any_eligible:
                accel = None
        self.accelerator = accel

        active = list(lanes)
        while active:
            cycle = min(lane.next_cycle for lane in active)
            due = [lane for lane in active if lane.next_cycle == cycle]
            if accel is not None:
                accel.predict(due, cycle)
            any_finished = False
            for lane in due:
                sim = lane.sim
                cfg = sim.sim_config
                sim.system.tick(cycle)
                sim.ticks_executed += 1
                warmup = cfg.warmup_cycles
                if warmup and cycle == warmup:
                    sim._warmup_baseline = sim._snapshot_counters()
                if cfg.stop_when_benign_done and sim._benign_done():
                    lane.end = (cycle, True)
                    any_finished = True
                elif cycle >= cfg.max_cycles:
                    lane.end = (cycle, False)
                    any_finished = True
                else:
                    next_cycle = max(sim.system.next_event_cycle(), cycle + 1)
                    if warmup and cycle < warmup:
                        next_cycle = min(next_cycle, warmup)
                    lane.next_cycle = min(next_cycle, cfg.max_cycles)
                if lane.end is not None:
                    # Cores still being skipped at the final tick owe their
                    # remaining per-cycle stall accounting.
                    for core in sim.system.cores:
                        core.flush_stall_accounting(cycle)
            if any_finished:
                active = [lane for lane in active if lane.end is None]

        results: List[SimulationResult] = []
        for lane in lanes:
            end_cycle, finished_early = lane.end
            results.append(SimulationResult(
                system=lane.sim.system,
                stats=lane.sim.collect_statistics(end_cycle),
                finished_by_instruction_limit=finished_early,
            ))
        return results

    # ------------------------------------------------------------------ #
    def scan_stats(self) -> dict:
        """Aggregate prediction-path counters (tests and benchmarks)."""

        totals = {"predictions_used": 0, "mispredictions": 0,
                  "memo_hits": 0, "eligible_lanes": 0, "lanes": 0}
        for sim in self.simulators:
            ctrl = sim.system.controller
            totals["predictions_used"] += ctrl.scan_predictions_used
            totals["mispredictions"] += ctrl.scan_mispredictions
            totals["memo_hits"] += ctrl.scan_memo_hits
            totals["lanes"] += 1
        accel = self.accelerator
        if accel is not None:
            totals["eligible_lanes"] = sum(
                1 for lane in accel.lanes if lane.eligible
            )
        return totals


def run_batch(simulators: List[Simulator]) -> List[SimulationResult]:
    """Convenience wrapper: run ``simulators`` as one lockstep batch."""

    return BatchSimulator(simulators).run()

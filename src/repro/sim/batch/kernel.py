"""Vectorised FR-FCFS+Cap scan predictions for the batch engine.

:class:`ScanAccelerator` maintains, for every *eligible* lane of a
:class:`repro.sim.batch.BatchSimulator`, an array mirror of exactly the
state the controller's request scan reads — folded down to per-bank
*readiness gates*:

* ``col_gate``  — earliest cycle a RD/WR to the bank's open row can issue
  (bank tCCD/tRTP/tWR floors, bank maintenance block, rank block);
* ``pre_gate``  — earliest cycle the bank's open row can be precharged;
* ``act_gate``  — earliest cycle a new row can be activated (bank tRC/tRP
  floors, rank tRRD_s/tRRD_l spacing, tFAW window, maintenance blocks);
* ``urgent_at`` — the cycle from which the rank's refresh urgency crosses
  the threshold that silently fails closed-bank activations;

plus the scheduler-facing queue digest: first-hit/first-miss arrival
positions per (queue, bank) bucket, the per-bank cap saturation flag, and
the per-lane write-drain occupancy thresholds.  Each global cycle one
array program computes, for all predicted lanes at once, the decision the
scheduler walk *would* reach — the winning request and whether it is a
row hit, or the stalled-command bounds of a fully-failed scan — and
installs it as the controller's one-shot scan prediction.

The prediction is *advisory by construction*: the controller validates it
against ``(cycle, channel issue serial, queue versions)`` and re-derives
every side effect through the ordinary ``_try_serve`` path, so a stale or
wrong prediction degrades to the scalar walk instead of diverging.  The
mirrors are therefore maintained for speed, not for safety: they are
synced *read-back style* from journals the channel and queues record
(never by re-implementing the update rules), which keeps them exact and
keeps the misprediction counters at zero in practice.

Mirror folding is lazy and engagement is adaptive: journals accumulate
per lane and are folded only when the lane is worth predicting — queue
depth at or above :data:`PREDICT_MIN_QUEUE`, where the scalar walk's
per-candidate cost exceeds the prediction's fixed cost.  Shallow-queue
lanes skip both the fold and the prediction and run the ordinary scalar
scan (with the controller's own failed-scan memo), so batching never
loses to solo runs on lightly-loaded workloads.  A lane whose journal
backlog outgrows :data:`REATTACH_JOURNAL_LEN` while dormant is
re-snapshotted from scratch instead of replayed.

Eligibility (checked once per lane, revoked permanently on violation):

* the scheduler is exactly :class:`FrFcfsCapScheduler` (the dedup walk
  modelled here),
* the mitigation cannot veto activations (BlockHammer-style gating makes
  the scan outcome time-dependent in ways a prediction cannot carry),
* every queued request carries a decoded coordinate.

Channels with more banks than ``MAX_SCHEDULE_ATTEMPTS`` are handled by
modelling the walk's attempt budget: the dedup walk tries decisions in
sequence order and gives up after ``MAX_SCHEDULE_ATTEMPTS`` failures, so
the winner is the first *ready* decision among the budget-many smallest
sequence keys, and a fully-failed scan stalls exactly those decisions.

Ineligible lanes simply run the scalar scan — still in lockstep, still
bit-identical.
"""

from __future__ import annotations

from typing import List, Tuple

try:  # numpy ships with the toolchain, but the engine degrades gracefully
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

from repro.controller.controller import MemoryController
from repro.controller.scheduler import FrFcfsCapScheduler
from repro.dram.commands import CommandType

#: Sentinel "no entry" position; larger than any real arrival position.
_BIG = 1 << 60
#: Sequence-key offset placing all miss decisions after all hit decisions
#: (the walk yields row hits during the queue pass, misses after it).
_MISS_OFFSET = 1 << 48
#: Sequence key larger than any real or padded decision key.
_NO_DECISION = 1 << 62
#: "Never activated" last-ACT mirror value (only the sign is compared).
_NEG = -(1 << 60)

#: Combined read+write queue depth from which a lane's scan is predicted.
#: Below it the scalar walk (plus the controller's failed-scan memo) is
#: cheaper than the prediction's fixed per-lane cost.
PREDICT_MIN_QUEUE = 4

#: Journal backlog at which a dormant lane is re-snapshotted instead of
#: folding entry by entry.
REATTACH_JOURNAL_LEN = 512


def numpy_available() -> bool:
    return _np is not None


class ScanAccelerator:
    """Array mirrors + vectorised scan prediction over a set of lanes."""

    def __init__(self, lanes: List) -> None:
        if _np is None:  # pragma: no cover - guarded by numpy_available()
            raise RuntimeError("ScanAccelerator requires numpy")
        self.lanes = [lane for lane in lanes if self._eligible(lane)]
        self.any_eligible = bool(self.lanes)
        if not self.any_eligible:
            return
        for index, lane in enumerate(self.lanes):
            lane.mirror_index = index
            lane.eligible = True
        L = len(self.lanes)
        self.Bmax = B = max(lane.total_banks for lane in self.lanes)
        self.budget_mask_needed = B > MemoryController.MAX_SCHEDULE_ATTEMPTS

        i64 = _np.int64
        # Fused per-bank readiness gates (see module docstring).
        self.col_gate = _np.full((L, B), _BIG, dtype=i64)
        self.pre_gate = _np.full((L, B), _BIG, dtype=i64)
        self.act_gate = _np.full((L, B), _BIG, dtype=i64)
        self.urgent_at = _np.full((L, B), _BIG, dtype=i64)
        self.is_open = _np.zeros((L, B), dtype=bool)
        self.capped = _np.zeros((L, B), dtype=bool)
        # Raw per-bank floors, kept for rank-slice gate recomputes.
        self.next_act = _np.full((L, B), _BIG, dtype=i64)
        self.next_pre = _np.full((L, B), _BIG, dtype=i64)
        self.next_rdwr = _np.full((L, B), _BIG, dtype=i64)
        self.bank_blocked = _np.full((L, B), _BIG, dtype=i64)
        self.open_row = _np.full((L, B), -1, dtype=i64)
        # Static coordinate maps (padding banks map to rank/group/bank 0;
        # they never carry a decision because their queue cells stay empty).
        self.rank_of = _np.zeros((L, B), dtype=i64)
        self.bg_of = _np.zeros((L, B), dtype=i64)
        self.ba_of = _np.zeros((L, B), dtype=i64)
        # Per-lane scalars.
        self.bus_free = _np.zeros(L, dtype=i64)
        self.rq_len = _np.zeros(L, dtype=i64)
        self.wq_len = _np.zeros(L, dtype=i64)
        self.drain = _np.zeros(L, dtype=bool)
        self.drain_hi_at = _np.zeros(L, dtype=i64)
        self.drain_lo_at = _np.full(L, -1, dtype=i64)
        # First-hit / first-miss positions per (lane, queue, bank).
        self.hp = _np.full((L, 2, B), _BIG, dtype=i64)
        self.mp = _np.full((L, 2, B), _BIG, dtype=i64)
        self._all_idx = _np.arange(L)

        for lane in self.lanes:
            self._attach(lane)

    # ------------------------------------------------------------------ #
    # Lane setup
    # ------------------------------------------------------------------ #
    @staticmethod
    def _eligible(lane) -> bool:
        ctrl = lane.sim.system.controller
        if type(ctrl.scheduler) is not FrFcfsCapScheduler:
            return False
        if ctrl._gating_mitigation:
            return False
        cfg = ctrl.config
        lane.ctrl = ctrl
        lane.channel = ctrl.channel
        lane.total_banks = cfg.ranks * cfg.bank_groups * cfg.banks_per_group
        return True

    def _attach(self, lane) -> None:
        ctrl = lane.ctrl
        channel = lane.channel
        cfg = ctrl.config
        i = lane.mirror_index
        timing = ctrl.timing
        lane.BG = cfg.bank_groups
        lane.BA = cfg.banks_per_group
        lane.ranks = len(channel.ranks)
        lane.rank_banks = lane.BG * lane.BA
        lane.trefi_half = (timing.trefi + 1) // 2
        lane.trrd_s = timing.trrd_s
        lane.trrd_l = timing.trrd_l
        lane.cap = ctrl.scheduler.cap
        lane.predicting = False
        # True when a dormant lane's journals were discarded; the next
        # fold re-snapshots instead of replaying.
        lane.stale = False
        # Per-rank python scalars backing the per-bank gate recomputes.
        lane.rank_blocked = [0] * lane.ranks
        lane.last_act = [_NEG] * lane.ranks
        lane.last_bg = [-1] * lane.ranks
        lane.faw = [_NEG] * lane.ranks

        # Exact integer twins of the controller's float drain thresholds:
        # smallest occupancy with occ/cap >= high, largest with <= low.
        wq_cap = ctrl.write_queue.capacity
        hi, lo = ctrl._write_drain_high, ctrl._write_drain_low
        self.drain_hi_at[i] = next(
            (w for w in range(wq_cap + 1) if w / wq_cap >= hi), wq_cap + 1
        )
        self.drain_lo_at[i] = max(
            (w for w in range(wq_cap + 1) if w / wq_cap <= lo), default=-1
        )

        for r in range(lane.ranks):
            base = r * lane.rank_banks
            for bg in range(lane.BG):
                for ba in range(lane.BA):
                    fb = base + bg * lane.BA + ba
                    self.rank_of[i, fb] = r
                    self.bg_of[i, fb] = bg
                    self.ba_of[i, fb] = ba

        # Install journals and take the initial snapshot.
        channel.journal = []
        ctrl.read_queue.journal = []
        ctrl.write_queue.journal = []
        lane.buckets = [[[] for _ in range(self.Bmax)] for _ in range(2)]
        lane.push_count = [0, 0]
        lane.href = [None] * (2 * self.Bmax)
        lane.mref = [None] * (2 * self.Bmax)
        if not self._snapshot(lane):
            self._disable(lane)

    def _snapshot(self, lane) -> bool:
        """(Re)build every mirror of one lane from live state."""

        ctrl = lane.ctrl
        for r in range(lane.ranks):
            self._read_rank_scalars(lane, r)
            self._read_refresh(lane, r)
        for r in range(lane.ranks):
            for bg in range(lane.BG):
                for ba in range(lane.BA):
                    self._read_bank(lane, r, bg, ba)
            self._recompute_rank_gates(lane, r)
        buckets = lane.buckets
        for q in (0, 1):
            for cell in buckets[q]:
                cell.clear()
        lane.push_count = [0, 0]
        for q, queue in ((0, ctrl.read_queue), (1, ctrl.write_queue)):
            for req in queue:
                coord = req.coordinate
                if coord is None:
                    return False
                fb = self._flat(lane, coord)
                lane.push_count[q] += 1
                buckets[q][fb].append((lane.push_count[q], coord.row, req))
        i = lane.mirror_index
        caps_dict = ctrl.scheduler._hits_over_misses
        chan_idx = ctrl.channel_index
        for fb in range(lane.total_banks):
            self.capped[i, fb] = caps_dict.get(
                (chan_idx, int(self.rank_of[i, fb]), int(self.bg_of[i, fb]),
                 int(self.ba_of[i, fb])), 0
            ) >= lane.cap
            self._rebuild_cell(lane, 0, fb)
            self._rebuild_cell(lane, 1, fb)
        self._read_scalars(lane)
        return True

    @staticmethod
    def _flat(lane, coord) -> int:
        return (coord.rank * lane.BG + coord.bank_group) * lane.BA + coord.bank

    def _disable(self, lane) -> None:
        """Permanently revoke a lane's predictions (scalar walk takes over)."""

        lane.eligible = False
        lane.predicting = False
        lane.channel.journal = None
        lane.ctrl.read_queue.journal = None
        lane.ctrl.write_queue.journal = None
        lane.ctrl._scan_prediction = None

    # ------------------------------------------------------------------ #
    # Read-back mirror maintenance
    # ------------------------------------------------------------------ #
    def _read_bank(self, lane, r: int, bg: int, ba: int) -> bool:
        """Refresh one bank's floors and gates; True if its row changed."""

        i = lane.mirror_index
        fb = (r * lane.BG + bg) * lane.BA + ba
        bank = lane.channel.ranks[r].banks[bg][ba]
        na = bank._next_act
        np_ = bank._next_pre
        nrw = bank._next_rdwr
        bb = bank._blocked_until
        self.next_act[i, fb] = na
        self.next_pre[i, fb] = np_
        self.next_rdwr[i, fb] = nrw
        self.bank_blocked[i, fb] = bb
        rb = lane.rank_blocked[r]
        floor = bb if bb > rb else rb
        self.col_gate[i, fb] = nrw if nrw > floor else floor
        self.pre_gate[i, fb] = np_ if np_ > floor else floor
        la = lane.last_act[r]
        if la >= 0:
            spacing = la + (
                lane.trrd_l if bg == lane.last_bg[r] else lane.trrd_s
            )
            if spacing > floor:
                floor = spacing
        faw = lane.faw[r]
        if faw > floor:
            floor = faw
        self.act_gate[i, fb] = na if na > floor else floor
        row = bank.open_row if bank.is_open() else -1
        if row != self.open_row[i, fb]:
            self.open_row[i, fb] = row
            self.is_open[i, fb] = row >= 0
            return True
        return False

    def _read_rank_scalars(self, lane, r: int) -> None:
        rank = lane.channel.ranks[r]
        lane.rank_blocked[r] = rank._blocked_until
        lane.last_act[r] = rank._last_act_cycle
        last_bg = rank._last_act_bank_group
        lane.last_bg[r] = -1 if last_bg is None else last_bg
        hist = rank._act_history
        if len(hist) == hist.maxlen:
            lane.faw[r] = hist[0] + rank.timing.tfaw
        else:
            lane.faw[r] = _NEG

    def _recompute_rank_gates(self, lane, r: int) -> None:
        """Vector-recompute one rank's per-bank gates from raw floors."""

        i = lane.mirror_index
        np = _np
        sl = slice(r * lane.rank_banks, (r + 1) * lane.rank_banks)
        rb = lane.rank_blocked[r]
        base = np.maximum(self.bank_blocked[i, sl], rb)
        np.maximum(self.next_rdwr[i, sl], base, out=self.col_gate[i, sl])
        np.maximum(self.next_pre[i, sl], base, out=self.pre_gate[i, sl])
        la = lane.last_act[r]
        if la >= 0:
            spacing = np.where(
                self.bg_of[i, sl] == lane.last_bg[r],
                la + lane.trrd_l, la + lane.trrd_s,
            )
            base = np.maximum(base, spacing)
        faw = lane.faw[r]
        if faw > _NEG:
            base = np.maximum(base, faw)
        np.maximum(self.next_act[i, sl], base, out=self.act_gate[i, sl])

    def _read_refresh(self, lane, r: int) -> None:
        i = lane.mirror_index
        state = lane.ctrl.refresh_manager.states[r]
        sl = slice(r * lane.rank_banks, (r + 1) * lane.rank_banks)
        # Urgency >= 0.5 <=> 2*(c - next) >= trefi <=> c >= next + ceil/2
        # (pending is implied: it only ever holds with c >= next).
        self.urgent_at[i, sl] = state.next_refresh_cycle + lane.trefi_half

    def _read_scalars(self, lane) -> None:
        i = lane.mirror_index
        ctrl = lane.ctrl
        self.bus_free[i] = lane.channel._data_bus_free_at
        self.rq_len[i] = len(ctrl.read_queue)
        self.wq_len[i] = len(ctrl.write_queue)
        self.drain[i] = ctrl._write_drain
        lane.serial = lane.channel.issue_serial
        lane.rqv = ctrl.read_queue.version
        lane.wqv = ctrl.write_queue.version

    def _rebuild_cell(self, lane, q: int, fb: int) -> None:
        """Recompute first-hit/first-miss of one (queue, bank) bucket."""

        i = lane.mirror_index
        orow = self.open_row[i, fb]
        hp = mp = _BIG
        hr = mr = None
        for pos, row, req in lane.buckets[q][fb]:
            if row == orow:  # orow == -1 never matches a real row
                if hr is None:
                    hp, hr = pos, req
                    if mr is not None:
                        break
            elif mr is None:
                mp, mr = pos, req
                if hr is not None:
                    break
        self.hp[i, q, fb] = hp
        self.mp[i, q, fb] = mp
        cell = q * self.Bmax + fb
        lane.href[cell] = hr
        lane.mref[cell] = mr

    def _fold(self, lane) -> bool:
        """Fold the accumulated journals into the lane's mirrors.

        Returns False (after disabling the lane) on an uncoordinated
        request; True otherwise.  Safe to call at any point between ticks:
        journals record *which* state changed, the values are read back
        from the live objects, so folding late reads the same final state.
        """

        ctrl = lane.ctrl
        channel = lane.channel
        cj = channel.journal
        rj = ctrl.read_queue.journal
        wj = ctrl.write_queue.journal
        if lane.stale or (len(cj) + len(rj) + len(wj)) > REATTACH_JOURNAL_LEN:
            lane.stale = False
            cj.clear()
            rj.clear()
            wj.clear()
            if not self._snapshot(lane):
                self._disable(lane)
                return False
            return True
        dirty = set()
        if cj:
            caps_dict = ctrl.scheduler._hits_over_misses
            chan_idx = ctrl.channel_index
            i = lane.mirror_index
            cap = lane.cap
            for kind, r, bg, ba in cj:
                if kind is CommandType.REF or kind is CommandType.PREA:
                    self._read_rank_scalars(lane, r)
                    base = r * lane.rank_banks
                    for g in range(lane.BG):
                        for b in range(lane.BA):
                            if self._read_bank(lane, r, g, b):
                                fb = base + g * lane.BA + b
                                dirty.add((0, fb))
                                dirty.add((1, fb))
                    if kind is CommandType.REF:
                        self._read_refresh(lane, r)
                    continue
                if kind is CommandType.ACT:
                    # ACT moves the rank's tRRD/tFAW state for every bank.
                    self._read_rank_scalars(lane, r)
                    if self._read_bank(lane, r, bg, ba):
                        fb = (r * lane.BG + bg) * lane.BA + ba
                        dirty.add((0, fb))
                        dirty.add((1, fb))
                    self._recompute_rank_gates(lane, r)
                    continue
                if self._read_bank(lane, r, bg, ba):
                    fb = (r * lane.BG + bg) * lane.BA + ba
                    dirty.add((0, fb))
                    dirty.add((1, fb))
                if kind.is_column_command:
                    fb = (r * lane.BG + bg) * lane.BA + ba
                    self.capped[i, fb] = caps_dict.get(
                        (chan_idx, r, bg, ba), 0
                    ) >= cap
            cj.clear()
        for q, journal in ((0, rj), (1, wj)):
            if not journal:
                continue
            buckets = lane.buckets[q]
            for is_push, req in journal:
                coord = req.coordinate
                if coord is None:
                    self._disable(lane)
                    return False
                fb = self._flat(lane, coord)
                if is_push:
                    lane.push_count[q] += 1
                    buckets[fb].append((lane.push_count[q], coord.row, req))
                else:
                    bucket = buckets[fb]
                    for pos, entry in enumerate(bucket):
                        if entry[2] is req:
                            del bucket[pos]
                            break
                dirty.add((q, fb))
            journal.clear()
        for q, fb in dirty:
            self._rebuild_cell(lane, q, fb)
        self._read_scalars(lane)
        return True

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def predict(self, due_lanes: List, cycle: int) -> None:
        """Install scan predictions for the due lanes worth predicting."""

        elig = []
        for lane in due_lanes:
            if not lane.eligible:
                continue
            ctrl = lane.ctrl
            # Engagement heuristic on *live* queue depth: shallow scans are
            # cheaper scalar (and memoised); deep scans are predicted.
            if len(ctrl.read_queue) + len(ctrl.write_queue) \
                    < PREDICT_MIN_QUEUE:
                lane.predicting = False
                ctrl._scan_prediction = None
                if not lane.stale and (
                    len(lane.channel.journal)
                    + len(ctrl.read_queue.journal)
                    + len(ctrl.write_queue.journal)
                ) > REATTACH_JOURNAL_LEN:
                    # Dormant lane: discard the backlog, re-snapshot later.
                    lane.channel.journal.clear()
                    ctrl.read_queue.journal.clear()
                    ctrl.write_queue.journal.clear()
                    lane.stale = True
                continue
            if self._fold(lane):
                lane.predicting = True
                elig.append(lane)
        if not elig:
            return
        np = _np
        L = len(self.lanes)
        if len(elig) == L:
            idx = slice(None)
        else:
            idx = np.fromiter(
                (lane.mirror_index for lane in elig), dtype=np.int64,
                count=len(elig),
            )
        c = cycle

        # Effective write-drain for this tick (replicates
        # _update_write_drain through the exact integer occupancy
        # thresholds; pinned by the prediction key).
        wql = self.wq_len[idx]
        d0 = self.drain[idx]
        drain = (~d0 & (wql >= self.drain_hi_at[idx])) \
            | (d0 & (wql > self.drain_lo_at[idx]))
        drain |= (self.rq_len[idx] == 0) & (wql > 0)
        aq = drain.view(np.int8).astype(np.int64)

        if isinstance(idx, slice):
            hp = self.hp[self._all_idx, aq]
            mp = self.mp[self._all_idx, aq]
        else:
            hp = self.hp[idx, aq]
            mp = self.mp[idx, aq]
        # The walk cap-defers a hit only when an older miss to the same
        # bank was already seen, i.e. the first miss precedes the first hit.
        y_hit = (hp < _BIG) & ~((mp < hp) & self.capped[idx])
        pos = np.where(y_hit, hp, mp)
        # Non-decisions land at >= _BIG (+ _MISS_OFFSET), past every real
        # decision key, so no explicit no-decision sentinel is needed.
        seq = np.where(y_hit, pos, pos + _MISS_OFFSET)
        has_dec = pos < _BIG
        # The walk gives up after MAX_SCHEDULE_ATTEMPTS failed decisions,
        # so only the budget-many smallest sequence keys are ever tried
        # (decision keys are unique: queue positions are).
        if self.budget_mask_needed:
            budget = MemoryController.MAX_SCHEDULE_ATTEMPTS
            kth = np.partition(seq, budget - 1, axis=1)[:, budget - 1]
            tryable = has_dec & (seq <= kth[:, None])
        else:
            tryable = has_dec

        open_ = self.is_open[idx]
        urgent = self.urgent_at[idx] <= c
        hit_ok = (self.col_gate[idx] <= c) \
            & (self.bus_free[idx] <= c)[:, None]
        miss_ok = np.where(
            open_, self.pre_gate[idx] <= c,
            (self.act_gate[idx] <= c) & ~urgent,
        )
        serveable = tryable & np.where(y_hit, hit_ok, miss_ok)
        win = serveable.any(axis=1)
        winner_bank = np.where(serveable, seq, _NO_DECISION).argmin(axis=1)

        Bmax = self.Bmax
        for k, lane in enumerate(elig):
            if win[k]:
                fb = int(winner_bank[k])
                hit = bool(y_hit[k, fb])
                cell = int(aq[k]) * Bmax + fb
                req = lane.href[cell] if hit else lane.mref[cell]
                lane.ctrl._scan_prediction = (
                    cycle, lane.serial, lane.rqv, lane.wqv, req, hit, (),
                )
                continue
            # Fully-failed scan: reproduce the stalled-command tuples in
            # walk order (hits by position, then misses by position).
            stalled: List[Tuple] = []
            row = seq[k]
            dec_banks = np.nonzero(tryable[k])[0]
            if dec_banks.size:
                col_kind = CommandType.WR if aq[k] else CommandType.RD
                i = lane.mirror_index
                for fb in dec_banks[np.argsort(row[dec_banks],
                                               kind="stable")]:
                    fb = int(fb)
                    if y_hit[k, fb]:
                        kind = col_kind
                    elif open_[k, fb]:
                        kind = CommandType.PRE
                    elif urgent[k, fb]:
                        continue  # urgency-gated: tried, but no stall bound
                    else:
                        kind = CommandType.ACT
                    stalled.append((
                        kind,
                        int(self.rank_of[i, fb]),
                        int(self.bg_of[i, fb]),
                        int(self.ba_of[i, fb]),
                    ))
            lane.ctrl._scan_prediction = (
                cycle, lane.serial, lane.rqv, lane.wqv, None, False,
                tuple(stalled),
            )

"""Evaluation metrics.

The paper evaluates:

* **system performance** with weighted speedup [Eyerman & Eeckhout;
  Snavely & Tullsen]: ``WS = Σ_i IPC_shared_i / IPC_alone_i``, computed over
  the *benign* applications only when an attacker is present;
* **unfairness** with the maximum slowdown experienced by any benign
  application: ``max_i IPC_alone_i / IPC_shared_i``;
* **memory latency percentiles** (Figs. 11/17);
* **DRAM energy**, normalised to a no-mitigation baseline (Fig. 12);
* geometric means across workloads for the summary bars.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence


def weighted_speedup(ipc_shared: Dict[int, float],
                     ipc_alone: Dict[int, float],
                     include: Optional[Iterable[int]] = None) -> float:
    """Weighted speedup over the threads in ``include`` (default: all)."""

    threads = list(include) if include is not None else list(ipc_shared)
    if not threads:
        raise ValueError("weighted speedup needs at least one thread")
    total = 0.0
    for thread in threads:
        alone = ipc_alone.get(thread, 0.0)
        if alone <= 0:
            raise ValueError(f"thread {thread} has no standalone IPC")
        total += ipc_shared.get(thread, 0.0) / alone
    return total


def max_slowdown(ipc_shared: Dict[int, float],
                 ipc_alone: Dict[int, float],
                 include: Optional[Iterable[int]] = None) -> float:
    """Unfairness: the worst per-thread slowdown among ``include`` threads."""

    threads = list(include) if include is not None else list(ipc_shared)
    if not threads:
        raise ValueError("max slowdown needs at least one thread")
    worst = 0.0
    for thread in threads:
        shared = ipc_shared.get(thread, 0.0)
        alone = ipc_alone.get(thread, 0.0)
        if alone <= 0:
            raise ValueError(f"thread {thread} has no standalone IPC")
        slowdown = float("inf") if shared <= 0 else alone / shared
        worst = max(worst, slowdown)
    return worst


def harmonic_speedup(ipc_shared: Dict[int, float],
                     ipc_alone: Dict[int, float],
                     include: Optional[Iterable[int]] = None) -> float:
    """Harmonic mean of per-thread speedups (balance-sensitive metric)."""

    threads = list(include) if include is not None else list(ipc_shared)
    if not threads:
        raise ValueError("harmonic speedup needs at least one thread")
    denominator = 0.0
    for thread in threads:
        shared = ipc_shared.get(thread, 0.0)
        alone = ipc_alone.get(thread, 0.0)
        if alone <= 0:
            raise ValueError(f"thread {thread} has no standalone IPC")
        if shared <= 0:
            return 0.0
        denominator += alone / shared
    return len(threads) / denominator


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile; ``fraction`` in [0, 1]."""

    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = fraction * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return float(ordered[lower])
    weight = position - lower
    return float(ordered[lower] * (1.0 - weight) + ordered[upper] * weight)


def latency_percentiles(latencies: Sequence[float],
                        points: Sequence[int] = (50, 90, 95, 99, 100)
                        ) -> Dict[int, float]:
    """Latency percentile curve, keyed by percentile point."""

    return {p: percentile(latencies, p / 100.0) for p in points}


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; all values must be positive."""

    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalize(values: Sequence[float], baseline: float) -> List[float]:
    """Divide every value by ``baseline`` (used for normalised figures)."""

    if baseline == 0:
        raise ValueError("cannot normalise by zero")
    return [v / baseline for v in values]


def speedup_percentage(new: float, old: float) -> float:
    """Percentage improvement of ``new`` over ``old``."""

    if old == 0:
        raise ValueError("cannot compute speedup over zero baseline")
    return 100.0 * (new - old) / old

"""System and simulation configuration.

:class:`SystemConfig` collects every knob of the simulated machine (paper
Table 1), the attached mitigation mechanism, and the optional BreakHammer
instance (paper Table 2).  :class:`SimulationConfig` bounds a run.

Scaling note
------------
The paper simulates 100 M instructions per core with a 64 ms throttling
window.  A pure-Python cycle-level model cannot afford that per data point,
so the default *fast profile* shortens runs to tens of thousands of
controller cycles and scales BreakHammer's windowed parameters with them:

* ``TH_window`` becomes a fraction of the simulated horizon, and
* ``TH_threat`` is reduced proportionally (a thread simply cannot accumulate
  a score of 32 preventive actions in a millisecond-scale window).

Both scalings preserve the *structure* of the mechanism — scores accumulate
per window, suspects must both exceed an absolute floor and be outliers —
which is what the reproduced trends depend on.  The paper-exact values are
available through :meth:`SystemConfig.paper_exact`.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.core.breakhammer import BreakHammerConfig
from repro.cpu.cache import CacheConfig
from repro.cpu.core_model import CoreConfig
from repro.dram.address import MappingScheme
from repro.dram.config import DeviceConfig


#: Valid values of :attr:`SimulationConfig.engine`.
SIMULATION_ENGINES = ("cycle", "fast", "batch")

#: Environment variable naming the default simulation engine.  Resolution
#: order (explicit spec/config field > this variable > ``"fast"``) is
#: implemented once, in :func:`repro.api.session.resolve_execution`.
ENGINE_ENV = "REPRO_ENGINE"


def config_fingerprint(*configs) -> str:
    """A short stable digest over one or more (frozen) config dataclasses.

    The digest covers every field, recursively (nested dataclasses are
    flattened by :func:`dataclasses.asdict`; enums and other values fall
    back to ``repr``), so *any* configuration difference — device geometry,
    timing compression, mitigation kwargs, scheduler choice — yields a
    different fingerprint.  The on-disk run cache uses this to key cached
    :class:`repro.sim.stats.RunStatistics` so two distinct configurations
    can never alias.
    """

    parts = []
    for config in configs:
        if dataclasses.is_dataclass(config) and not isinstance(config, type):
            parts.append(repr(dataclasses.asdict(config)))
        else:
            parts.append(repr(config))
    payload = "\x1e".join(parts).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:20]


@dataclass(frozen=True)
class SimulationConfig:
    """Bounds and termination conditions of one simulation run.

    ``engine`` selects the simulation driver:

    * ``"cycle"`` (default) — tick every cycle, the reference behaviour;
    * ``"fast"``  — event-driven fast-forward: the simulator jumps straight
      to the next cycle at which any component can act (a DRAM command
      becoming timing-ready, an in-flight request completing, a refresh
      deadline, a throttling-window boundary, a runnable core).  Both
      engines produce identical :class:`repro.sim.stats.RunStatistics`;
      the fast engine simply skips the cycles in which nothing can happen.
    * ``"batch"`` — the fast engine's event-jumping semantics, driven in
      lockstep with other runs by :class:`repro.sim.batch.BatchSimulator`
      so FR-FCFS+Cap scheduling decisions for many independent grid points
      are computed as one vectorised array program per cycle.  Statistics
      are bit-identical to the other two engines; lanes whose
      configuration the kernel cannot vectorise (gating mitigations such
      as BlockHammer, non-default schedulers, more banks than the
      scheduler attempt budget) simply fall back to scalar scheduling.
      A solo ``Simulator.run`` with this engine runs a batch of one.

    ``warmup_cycles`` excludes the first cycles from every reported
    *performance* statistic: core, LLC, controller, latency, and energy
    counters are snapshotted at the warmup boundary and subtracted, so
    IPC, MPKI and friends describe only the measured interval.  Mechanism
    diagnostics (``mitigation_stats``, ``breakhammer_stats``,
    ``mshr_stats``) remain whole-run values by design.
    """

    max_cycles: int = 60_000
    instruction_limit: Optional[int] = None
    warmup_cycles: int = 0
    stop_when_benign_done: bool = True
    engine: str = "cycle"

    def __post_init__(self) -> None:
        if self.max_cycles <= 0:
            raise ValueError("max_cycles must be positive")
        if self.instruction_limit is not None and self.instruction_limit <= 0:
            raise ValueError("instruction_limit must be positive")
        if self.warmup_cycles < 0:
            raise ValueError("warmup_cycles cannot be negative")
        if self.engine not in SIMULATION_ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of "
                f"{SIMULATION_ENGINES}"
            )

    @classmethod
    def fast(cls, max_cycles: int = 30_000) -> "SimulationConfig":
        return cls(max_cycles=max_cycles)

    @classmethod
    def standard(cls) -> "SimulationConfig":
        return cls(max_cycles=120_000)


@dataclass(frozen=True)
class SystemConfig:
    """The simulated machine (paper Table 1 + Table 2)."""

    device: DeviceConfig = field(default_factory=DeviceConfig.ddr5_4800)
    num_cores: int = 4
    core: CoreConfig = field(default_factory=CoreConfig)
    llc: CacheConfig = field(default_factory=CacheConfig)
    mshr_entries: int = 64
    read_queue_size: int = 64
    write_queue_size: int = 64
    scheduler: str = "frfcfs_cap"
    scheduler_cap: int = 4
    mapping: MappingScheme = MappingScheme.MOP

    # RowHammer mitigation
    mitigation: str = "none"
    nrh: int = 1024
    mitigation_kwargs: Dict[str, object] = field(default_factory=dict)

    # BreakHammer
    breakhammer_enabled: bool = False
    breakhammer: BreakHammerConfig = field(default_factory=BreakHammerConfig)

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError("need at least one core")
        if self.mshr_entries <= 0:
            raise ValueError("need at least one MSHR")

    # ------------------------------------------------------------------ #
    def with_(self, **overrides) -> "SystemConfig":
        """Return a copy with fields replaced (dataclasses.replace wrapper)."""

        return replace(self, **overrides)

    def with_mitigation(self, mitigation: str, nrh: Optional[int] = None,
                        breakhammer: Optional[bool] = None) -> "SystemConfig":
        """Convenience for the experiment harness."""

        changes: Dict[str, object] = {"mitigation": mitigation}
        if nrh is not None:
            changes["nrh"] = nrh
        if breakhammer is not None:
            changes["breakhammer_enabled"] = breakhammer
        return self.with_(**changes)

    # ------------------------------------------------------------------ #
    @classmethod
    def paper_exact(cls, mitigation: str = "none", nrh: int = 1024,
                    breakhammer_enabled: bool = False) -> "SystemConfig":
        """The paper's exact configuration (Tables 1 and 2), unscaled."""

        return cls(
            mitigation=mitigation,
            nrh=nrh,
            breakhammer_enabled=breakhammer_enabled,
            breakhammer=BreakHammerConfig(
                window_ms=64.0,
                threat_threshold=32.0,
                outlier_threshold=0.65,
                p_oldsuspect=1,
                p_newsuspect=10,
            ),
        )

    @classmethod
    def fast_profile(cls, mitigation: str = "none", nrh: int = 1024,
                     breakhammer_enabled: bool = False,
                     sim_cycles: int = 30_000,
                     threat_threshold: float = 4.0,
                     outlier_threshold: float = 0.65,
                     time_compression: float = 4.0) -> "SystemConfig":
        """A configuration scaled for short Python simulations.

        Three scalings keep short runs representative of the paper's much
        longer ones:

        * DRAM service times are compressed by ``time_compression`` so a run
          of tens of thousands of cycles contains enough row activations to
          exercise the mitigation mechanisms' trigger algorithms;
        * the throttling window is set to a quarter of the simulated horizon
          so that several windows elapse per run;
        * ``TH_threat`` is reduced to match the smaller number of preventive
          actions a window can contain.

        A smaller LLC keeps tag-store state light and lets synthetic traces
        exercise DRAM without needing gigantic footprints.
        """

        device = DeviceConfig.ddr5_4800(rows_per_bank=4096)
        if time_compression != 1.0:
            device = device.time_compressed(time_compression)
        tck = device.timings.tck
        window_ms = sim_cycles / 4 * tck * 1e-6
        return cls(
            device=device,
            llc=CacheConfig(size_bytes=512 * 1024, associativity=8),
            mitigation=mitigation,
            nrh=nrh,
            breakhammer_enabled=breakhammer_enabled,
            breakhammer=BreakHammerConfig(
                window_ms=window_ms,
                threat_threshold=threat_threshold,
                outlier_threshold=outlier_threshold,
                p_oldsuspect=1,
                p_newsuspect=10,
            ),
        )

    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, object]:
        """Dictionary summary used by the Table 1 / Table 2 benchmarks."""

        return {
            "processor": {
                "cores": self.num_cores,
                "issue_width": self.core.issue_width,
                "instruction_window": self.core.instruction_window,
                "frequency_ghz": self.core.frequency_ghz,
            },
            "llc": {
                "size_bytes": self.llc.size_bytes,
                "associativity": self.llc.associativity,
                "line_bytes": self.llc.line_bytes,
            },
            "memory_controller": {
                "read_queue": self.read_queue_size,
                "write_queue": self.write_queue_size,
                "scheduler": self.scheduler,
                "cap": self.scheduler_cap,
                "mapping": self.mapping.value,
                "mshr_entries": self.mshr_entries,
            },
            "dram": self.device.describe(),
            "mitigation": {"name": self.mitigation, "nrh": self.nrh},
            "breakhammer": (
                self.breakhammer.as_dict() if self.breakhammer_enabled else None
            ),
        }

"""Full-system simulation: cores + LLC + MSHRs + controller + DRAM.

* :mod:`repro.sim.config` — :class:`SystemConfig` and
  :class:`SimulationConfig`, including the paper's Table 1/2 presets and the
  scaled "fast" profile used by tests and benchmarks,
* :mod:`repro.sim.system` — wires the substrates together and registers
  BreakHammer as the controller's observer and the MSHR quota driver,
* :mod:`repro.sim.simulator` — the cycle loop and termination conditions,
* :mod:`repro.sim.stats` — per-run results containers,
* :mod:`repro.sim.metrics` — weighted speedup, max slowdown (unfairness),
  latency percentiles, geometric means.
"""

from repro.sim.config import SimulationConfig, SystemConfig
from repro.sim.metrics import (
    geometric_mean,
    harmonic_speedup,
    max_slowdown,
    percentile,
    weighted_speedup,
)
from repro.sim.simulator import SimulationResult, Simulator
from repro.sim.stats import RunStatistics
from repro.sim.system import System

__all__ = [
    "RunStatistics",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "System",
    "SystemConfig",
    "geometric_mean",
    "harmonic_speedup",
    "max_slowdown",
    "percentile",
    "weighted_speedup",
]

"""The simulation driver.

:class:`Simulator` advances a :class:`repro.sim.system.System` until either
the cycle budget is exhausted or every *benign* core has retired its
instruction quota (attacker cores are never waited for — the paper's
methodology, footnote 9: the attacker's progress is irrelevant and
BreakHammer slows it down dramatically).

Two interchangeable engines drive the run, selected by
:attr:`repro.sim.config.SimulationConfig.engine`:

* ``"cycle"`` — the reference engine: one :meth:`System.tick` per cycle.
* ``"fast"``  — the event-driven fast-forward engine: after each tick the
  system reports the next cycle at which *anything* can act (via
  ``System.next_event_cycle``) and the simulator jumps straight there.
  Cycles in which every core is stalled and the memory controller is
  timing-blocked are skipped entirely.  Both engines produce identical
  :class:`repro.sim.stats.RunStatistics`.

Warmup semantics: when ``warmup_cycles > 0``, core, LLC, controller,
latency, and energy counters are snapshotted at the warmup boundary and
subtracted at collection time, so every reported metric (IPC, MPKI, miss
rate, latency percentiles, energy, activation counts) describes only the
measured interval.  If the run ends before the warmup boundary is reached,
no subtraction happens and the full run is reported.

The result is a :class:`repro.sim.stats.RunStatistics` snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cpu.trace import Trace
from repro.sim.config import SimulationConfig, SystemConfig
from repro.sim.stats import RunStatistics
from repro.sim.system import System


@dataclass
class SimulationResult:
    """A finished run: the system (for inspection) plus its statistics."""

    system: System
    stats: RunStatistics
    finished_by_instruction_limit: bool

    @property
    def cycles(self) -> int:
        return self.stats.cycles


class Simulator:
    """Runs one system to completion."""

    def __init__(self, system_config: SystemConfig,
                 traces: Sequence[Trace],
                 sim_config: Optional[SimulationConfig] = None,
                 attacker_threads: Sequence[int] = ()) -> None:
        self.system_config = system_config
        self.sim_config = sim_config or SimulationConfig()
        self.traces = list(traces)
        self.attacker_threads = set(attacker_threads)
        self.system = System(system_config, self.traces)
        # Counter snapshot taken at the warmup boundary (None until then).
        self._warmup_baseline: Optional[Dict[str, object]] = None
        # Number of System.tick calls the run performed; the fast engine's
        # speedup is visible as ticks_executed << stats.cycles.
        self.ticks_executed = 0

    # ------------------------------------------------------------------ #
    @property
    def benign_threads(self) -> List[int]:
        return [
            i for i in range(self.system.num_cores)
            if i not in self.attacker_threads
        ]

    def _benign_done(self) -> bool:
        limit = self.sim_config.instruction_limit
        if limit is None:
            return False
        return all(
            self.system.core(i).reached(limit) for i in self.benign_threads
        )

    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Execute the run and collect statistics."""

        if self.sim_config.engine == "batch":
            # A solo batch-engine run is a lockstep batch of one.  Imported
            # lazily: repro.sim.batch depends on this module.
            from repro.sim.batch import BatchSimulator

            return BatchSimulator([self]).run()[0]
        if self.sim_config.engine == "fast":
            cycle, finished_early = self._run_fast()
        else:
            cycle, finished_early = self._run_cycle()
        stats = self.collect_statistics(cycle)
        return SimulationResult(
            system=self.system,
            stats=stats,
            finished_by_instruction_limit=finished_early,
        )

    def _run_cycle(self) -> tuple:
        """Reference engine: tick every cycle."""

        warmup = self.sim_config.warmup_cycles
        cycle = 0
        for cycle in range(1, self.sim_config.max_cycles + 1):
            self.system.tick(cycle)
            self.ticks_executed += 1
            if warmup and cycle == warmup:
                self._warmup_baseline = self._snapshot_counters()
            if (
                self.sim_config.stop_when_benign_done
                and self._benign_done()
            ):
                return cycle, True
        return cycle, False

    def _run_fast(self) -> tuple:
        """Event-driven engine: jump to the next cycle anything can act.

        The jump target is ``System.next_event_cycle()``, clamped so the
        warmup boundary and the final cycle are always simulated — both are
        observation points the cycle engine hits too.  Every simulated
        cycle is ticked by the exact same ``System.tick`` the cycle engine
        uses, so the two engines can only differ by the *skipped* cycles,
        which the system has proven inert.
        """

        max_cycles = self.sim_config.max_cycles
        warmup = self.sim_config.warmup_cycles
        if (
            self.sim_config.stop_when_benign_done
            and self.sim_config.instruction_limit is not None
        ):
            self.system.track_instruction_limit(
                self.sim_config.instruction_limit, self.benign_threads
            )
        cycle = 0
        while cycle < max_cycles:
            if cycle == 0:
                next_cycle = 1
            else:
                next_cycle = max(self.system.next_event_cycle(), cycle + 1)
            if warmup and cycle < warmup:
                next_cycle = min(next_cycle, warmup)
            cycle = min(next_cycle, max_cycles)
            self.system.tick(cycle)
            self.ticks_executed += 1
            if warmup and cycle == warmup:
                self._warmup_baseline = self._snapshot_counters()
            if (
                self.sim_config.stop_when_benign_done
                and self._benign_done()
            ):
                return cycle, True
        return cycle, False

    # ------------------------------------------------------------------ #
    def _snapshot_counters(self) -> Dict[str, object]:
        """Capture the performance counters warmup must not pollute.

        Covers core, LLC, controller, latency, and energy counters — the
        inputs to every performance metric.  Mechanism diagnostics
        (``mitigation_stats``, ``breakhammer_stats``, ``mshr_stats``)
        intentionally keep whole-run values: they describe the state the
        warmup interval built up (blacklists, score counters, quotas), not
        a rate over the measured interval.
        """

        system = self.system
        controller = system.controller
        return {
            "retired_instructions": {
                core.core_id: core.stats.retired_instructions
                for core in system.cores
            },
            "retired_memory_accesses": {
                core.core_id: core.stats.retired_memory_accesses
                for core in system.cores
            },
            "llc_hits": system.llc.stats.hits,
            "llc_misses": system.llc.stats.misses,
            "llc_misses_by_thread": dict(system.llc.stats.misses_by_thread),
            "read_latency_count": len(controller.stats.read_latencies),
            "latency_count_by_thread": {
                thread: len(values)
                for thread, values in controller.stats.latency_by_thread.items()
            },
            "activations": controller.stats.activations,
            "activations_by_thread": dict(controller.stats.activations_by_thread),
            "row_hits": controller.stats.row_hits,
            "row_misses": controller.stats.row_misses,
            "row_conflicts": controller.stats.row_conflicts,
            "refreshes": controller.stats.refreshes,
            "preventive_actions": controller.stats.preventive_actions,
            "preventive_commands": controller.stats.preventive_commands,
            "blocked_activations": controller.stats.blocked_activations,
            "energy_counts": dict(controller.energy.command_counts),
        }

    # ------------------------------------------------------------------ #
    def collect_statistics(self, cycles: int) -> RunStatistics:
        system = self.system
        controller = system.controller
        base = self._warmup_baseline
        if base is not None:
            effective_cycles = max(1, cycles - self.sim_config.warmup_cycles)
        else:
            # The boundary was never crossed (warmup disabled, or the run
            # ended early): report the full run.
            effective_cycles = max(1, cycles)

        def delta(key: str, current: int) -> int:
            return current - (base[key] if base is not None else 0)

        ipc_by_thread: Dict[int, float] = {}
        instructions: Dict[int, int] = {}
        memory_accesses: Dict[int, int] = {}
        mpki: Dict[int, float] = {}
        base_instr = base["retired_instructions"] if base is not None else {}
        base_mem = base["retired_memory_accesses"] if base is not None else {}
        base_misses = base["llc_misses_by_thread"] if base is not None else {}
        for core in system.cores:
            retired = (
                core.stats.retired_instructions
                - base_instr.get(core.core_id, 0)
            )
            instructions[core.core_id] = retired
            memory_accesses[core.core_id] = (
                core.stats.retired_memory_accesses
                - base_mem.get(core.core_id, 0)
            )
            ipc_by_thread[core.core_id] = retired / effective_cycles
            misses = (
                system.llc.stats.misses_by_thread.get(core.core_id, 0)
                - base_misses.get(core.core_id, 0)
            )
            mpki[core.core_id] = 1000.0 * misses / max(1, retired)

        llc_hits = delta("llc_hits", system.llc.stats.hits)
        llc_misses = delta("llc_misses", system.llc.stats.misses)
        llc_accesses = llc_hits + llc_misses
        llc_miss_rate = llc_misses / llc_accesses if llc_accesses else 0.0

        latency_start = base["read_latency_count"] if base is not None else 0
        base_latency_counts = (
            base["latency_count_by_thread"] if base is not None else {}
        )
        read_latencies = list(controller.stats.read_latencies[latency_start:])
        latency_by_thread = {
            thread: list(values[base_latency_counts.get(thread, 0):])
            for thread, values in controller.stats.latency_by_thread.items()
        }

        if base is not None:
            energy = controller.energy.report_since(
                base["energy_counts"], effective_cycles
            )
        else:
            energy = controller.energy.report(cycles)

        return RunStatistics(
            cycles=cycles,
            ipc_by_thread=ipc_by_thread,
            instructions_by_thread=instructions,
            memory_accesses_by_thread=memory_accesses,
            llc_miss_rate=llc_miss_rate,
            llc_mpki_by_thread=mpki,
            read_latencies=read_latencies,
            latency_by_thread=latency_by_thread,
            activations=delta("activations", controller.stats.activations),
            activations_by_thread={
                thread: count - (
                    base["activations_by_thread"].get(thread, 0)
                    if base is not None else 0
                )
                for thread, count in
                controller.stats.activations_by_thread.items()
            },
            row_hits=delta("row_hits", controller.stats.row_hits),
            row_misses=delta("row_misses", controller.stats.row_misses),
            row_conflicts=delta("row_conflicts", controller.stats.row_conflicts),
            refreshes=delta("refreshes", controller.stats.refreshes),
            preventive_actions=delta(
                "preventive_actions", controller.stats.preventive_actions
            ),
            preventive_commands=delta(
                "preventive_commands", controller.stats.preventive_commands
            ),
            blocked_activations=delta(
                "blocked_activations", controller.stats.blocked_activations
            ),
            energy=energy,
            mitigation_stats=system.mitigation.stats(),
            breakhammer_stats=(
                system.breakhammer.snapshot() if system.breakhammer else None
            ),
            mshr_stats=system.mshrs.snapshot(),
        )


def run_simulation(system_config: SystemConfig, traces: Sequence[Trace],
                   sim_config: Optional[SimulationConfig] = None,
                   attacker_threads: Sequence[int] = ()) -> SimulationResult:
    """One-call convenience wrapper used by examples and the harness."""

    simulator = Simulator(system_config, traces, sim_config, attacker_threads)
    return simulator.run()

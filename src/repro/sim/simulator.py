"""The simulation driver.

:class:`Simulator` advances a :class:`repro.sim.system.System` cycle by
cycle until either the cycle budget is exhausted or every *benign* core has
retired its instruction quota (attacker cores are never waited for — the
paper's methodology, footnote 9: the attacker's progress is irrelevant and
BreakHammer slows it down dramatically).

The result is a :class:`repro.sim.stats.RunStatistics` snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cpu.trace import Trace
from repro.sim.config import SimulationConfig, SystemConfig
from repro.sim.stats import RunStatistics
from repro.sim.system import System


@dataclass
class SimulationResult:
    """A finished run: the system (for inspection) plus its statistics."""

    system: System
    stats: RunStatistics
    finished_by_instruction_limit: bool

    @property
    def cycles(self) -> int:
        return self.stats.cycles


class Simulator:
    """Runs one system to completion."""

    def __init__(self, system_config: SystemConfig,
                 traces: Sequence[Trace],
                 sim_config: Optional[SimulationConfig] = None,
                 attacker_threads: Sequence[int] = ()) -> None:
        self.system_config = system_config
        self.sim_config = sim_config or SimulationConfig()
        self.traces = list(traces)
        self.attacker_threads = set(attacker_threads)
        self.system = System(system_config, self.traces)

    # ------------------------------------------------------------------ #
    @property
    def benign_threads(self) -> List[int]:
        return [
            i for i in range(self.system.num_cores)
            if i not in self.attacker_threads
        ]

    def _benign_done(self) -> bool:
        limit = self.sim_config.instruction_limit
        if limit is None:
            return False
        return all(
            self.system.core(i).reached(limit) for i in self.benign_threads
        )

    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Execute the run and collect statistics."""

        cycle = 0
        finished_early = False
        for cycle in range(1, self.sim_config.max_cycles + 1):
            self.system.tick(cycle)
            if (
                self.sim_config.stop_when_benign_done
                and self._benign_done()
            ):
                finished_early = True
                break
        stats = self.collect_statistics(cycle)
        return SimulationResult(
            system=self.system,
            stats=stats,
            finished_by_instruction_limit=finished_early,
        )

    # ------------------------------------------------------------------ #
    def collect_statistics(self, cycles: int) -> RunStatistics:
        system = self.system
        controller = system.controller
        effective_cycles = max(1, cycles - self.sim_config.warmup_cycles)

        ipc_by_thread: Dict[int, float] = {}
        instructions: Dict[int, int] = {}
        memory_accesses: Dict[int, int] = {}
        mpki: Dict[int, float] = {}
        for core in system.cores:
            ipc_by_thread[core.core_id] = core.ipc(effective_cycles)
            instructions[core.core_id] = core.stats.retired_instructions
            memory_accesses[core.core_id] = core.stats.retired_memory_accesses
            misses = system.llc.stats.misses_by_thread.get(core.core_id, 0)
            retired = max(1, core.stats.retired_instructions)
            mpki[core.core_id] = 1000.0 * misses / retired

        energy = controller.energy.report(cycles)

        return RunStatistics(
            cycles=cycles,
            ipc_by_thread=ipc_by_thread,
            instructions_by_thread=instructions,
            memory_accesses_by_thread=memory_accesses,
            llc_miss_rate=system.llc.stats.miss_rate,
            llc_mpki_by_thread=mpki,
            read_latencies=list(controller.stats.read_latencies),
            latency_by_thread={
                thread: list(values)
                for thread, values in controller.stats.latency_by_thread.items()
            },
            activations=controller.stats.activations,
            activations_by_thread=dict(controller.stats.activations_by_thread),
            row_hits=controller.stats.row_hits,
            row_misses=controller.stats.row_misses,
            row_conflicts=controller.stats.row_conflicts,
            refreshes=controller.stats.refreshes,
            preventive_actions=controller.stats.preventive_actions,
            preventive_commands=controller.stats.preventive_commands,
            blocked_activations=controller.stats.blocked_activations,
            energy=energy,
            mitigation_stats=system.mitigation.stats(),
            breakhammer_stats=(
                system.breakhammer.snapshot() if system.breakhammer else None
            ),
            mshr_stats=system.mshrs.snapshot(),
        )


def run_simulation(system_config: SystemConfig, traces: Sequence[Trace],
                   sim_config: Optional[SimulationConfig] = None,
                   attacker_threads: Sequence[int] = ()) -> SimulationResult:
    """One-call convenience wrapper used by examples and the harness."""

    simulator = Simulator(system_config, traces, sim_config, attacker_threads)
    return simulator.run()

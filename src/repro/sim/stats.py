"""Per-run statistics containers.

:class:`RunStatistics` is the flattened result of one simulation run: per
thread IPCs, memory latencies, DRAM command and preventive-action counts,
energy, and BreakHammer's own counters.  It is a plain data object so that
experiment code and tests can compare runs without reaching into simulator
internals.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dram.energy import EnergyReport
from repro.sim.metrics import latency_percentiles


@dataclass
class RunStatistics:
    """Everything measured during one simulation run."""

    cycles: int
    ipc_by_thread: Dict[int, float] = field(default_factory=dict)
    instructions_by_thread: Dict[int, int] = field(default_factory=dict)
    memory_accesses_by_thread: Dict[int, int] = field(default_factory=dict)
    llc_miss_rate: float = 0.0
    llc_mpki_by_thread: Dict[int, float] = field(default_factory=dict)

    read_latencies: List[int] = field(default_factory=list)
    latency_by_thread: Dict[int, List[int]] = field(default_factory=dict)

    activations: int = 0
    activations_by_thread: Dict[int, int] = field(default_factory=dict)
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    refreshes: int = 0
    preventive_actions: int = 0
    preventive_commands: int = 0
    blocked_activations: int = 0

    energy: Optional[EnergyReport] = None
    mitigation_stats: Dict[str, object] = field(default_factory=dict)
    breakhammer_stats: Optional[Dict[str, object]] = None
    mshr_stats: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def total_instructions(self) -> int:
        return sum(self.instructions_by_thread.values())

    @property
    def total_ipc(self) -> float:
        return sum(self.ipc_by_thread.values())

    def ipc_of(self, thread_id: int) -> float:
        return self.ipc_by_thread.get(thread_id, 0.0)

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    def latency_curve(self, thread_ids: Optional[List[int]] = None,
                      points=(50, 90, 95, 99, 100)) -> Dict[int, float]:
        """Memory-latency percentiles, optionally restricted to threads."""

        if thread_ids is None:
            values = self.read_latencies
        else:
            values = []
            for thread in thread_ids:
                values.extend(self.latency_by_thread.get(thread, []))
        if not values:
            return {p: 0.0 for p in points}
        return latency_percentiles(values, points)

    def mean_read_latency(self) -> float:
        if not self.read_latencies:
            return 0.0
        return sum(self.read_latencies) / len(self.read_latencies)

    @property
    def energy_mj(self) -> float:
        return self.energy.total_mj if self.energy else 0.0

    # ------------------------------------------------------------------ #
    # Serialization — the parallel sweep executor ships RunStatistics from
    # worker processes, and the on-disk run cache persists them between
    # invocations.  Pickle round-trips every field (floats included)
    # bit-exactly, which the determinism tests rely on.
    # ------------------------------------------------------------------ #
    def to_payload(self) -> bytes:
        """Serialise to a compact byte payload (exact round-trip)."""

        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_payload(cls, payload: bytes) -> "RunStatistics":
        """Inverse of :meth:`to_payload`."""

        stats = pickle.loads(payload)
        if not isinstance(stats, cls):
            raise TypeError(
                f"payload decoded to {type(stats).__name__}, "
                f"expected {cls.__name__}"
            )
        return stats

    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, object]:
        """Compact dictionary for logs and reports."""

        return {
            "cycles": self.cycles,
            "total_ipc": round(self.total_ipc, 4),
            "ipc_by_thread": {k: round(v, 4) for k, v in self.ipc_by_thread.items()},
            "llc_miss_rate": round(self.llc_miss_rate, 4),
            "activations": self.activations,
            "row_hit_rate": round(self.row_hit_rate, 4),
            "preventive_actions": self.preventive_actions,
            "blocked_activations": self.blocked_activations,
            "mean_read_latency": round(self.mean_read_latency(), 2),
            "energy_mj": round(self.energy_mj, 4),
            "breakhammer": self.breakhammer_stats,
        }

"""System wiring: cores → LLC → MSHRs → memory controller → DRAM.

:class:`System` builds every substrate from a :class:`SystemConfig`, connects
them, and exposes the per-cycle :meth:`tick` the simulator drives:

* each core replays its trace and sends memory accesses to the LLC;
* LLC misses allocate MSHRs — gated by BreakHammer's per-thread quotas —
  and become :class:`MemoryRequest` objects for the controller;
* the controller schedules DRAM commands, runs the mitigation mechanism's
  trigger algorithm, and performs its preventive actions;
* BreakHammer observes activations and preventive actions from the
  controller and adjusts MSHR quotas.

For the fast-forward engine the system also answers :meth:`next_event_cycle`
— the earliest future cycle at which *anything* observable can happen (a
DRAM command clearing its timing constraints, an in-flight request
completing, a pending LLC hit returning, a core reaching its next memory
access, a refresh or throttling-window deadline).  ``Simulator`` with
``engine="fast"`` jumps straight between those cycles; every jumped-over
cycle is provably inert, so both engines produce identical statistics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.controller.controller import MemoryController
from repro.controller.request import MemoryRequest, RequestType
from repro.controller.scheduler import make_scheduler
from repro.core.breakhammer import BreakHammer
from repro.cpu.cache import SetAssociativeCache
from repro.cpu.core_model import _STALL_REJECT, _STALL_WINDOW, Core
from repro.cpu.mshr import MshrFile
from repro.cpu.trace import Trace
from repro.dram.address import AddressMapper
from repro.dram.config import DeviceConfig
from repro.mitigations.base import MitigationMechanism
from repro.mitigations.registry import create_mechanism
from repro.mitigations.rega import Rega
from repro.sim.config import SystemConfig


class System:
    """A complete simulated machine."""

    def __init__(self, config: SystemConfig, traces: Sequence[Trace]) -> None:
        if len(traces) != config.num_cores:
            raise ValueError(
                f"expected {config.num_cores} traces, got {len(traces)}"
            )
        self.config = config

        # --- mitigation (may adjust DRAM timings: REGA) ----------------- #
        self.mitigation: MitigationMechanism = create_mechanism(
            config.mitigation, config.device, config.nrh,
            **config.mitigation_kwargs,
        )
        device = config.device
        if isinstance(self.mitigation, Rega):
            device = device.scaled(timings=self.mitigation.adjusted_timings())
            # The mechanism keeps a reference to the adjusted device too.
            self.mitigation.config = device
        self.device: DeviceConfig = device

        # --- memory controller ------------------------------------------ #
        self.mapper = AddressMapper(device, config.mapping)
        self.controller = MemoryController(
            device,
            mitigation=self.mitigation,
            scheduler=make_scheduler(config.scheduler, cap=config.scheduler_cap),
            mapper=self.mapper,
            read_queue_size=config.read_queue_size,
            write_queue_size=config.write_queue_size,
        )

        # --- cache hierarchy --------------------------------------------- #
        self.llc = SetAssociativeCache(config.llc)
        self.mshrs = MshrFile(config.mshr_entries, num_threads=config.num_cores)

        # --- BreakHammer -------------------------------------------------- #
        self.breakhammer: Optional[BreakHammer] = None
        if config.breakhammer_enabled:
            self.breakhammer = BreakHammer(
                num_threads=config.num_cores,
                config=config.breakhammer,
                device_config=device,
                full_quota=config.mshr_entries,
                apply_quota=self._apply_quota,
            )
            self.controller.register_observer(self.breakhammer)

        # --- cores -------------------------------------------------------- #
        self.cores: List[Core] = [
            Core(core_id=i, trace=trace, config=config.core, send=self._send)
            for i, trace in enumerate(traces)
        ]

        # Precomputed per-start-index core orderings for the tick rotation.
        count = len(self.cores)
        self._rotations: List[Tuple[Core, ...]] = [
            tuple(self.cores[(start + offset) % count]
                  for offset in range(count))
            for start in range(count)
        ]

        # LLC hits waiting to return data: (ready_cycle, core).
        self._pending_hits: List[Tuple[int, Core]] = []
        self.cycle = 0
        # Whether any core enqueued a memory request during the last tick.
        # Enqueues mutate controller state *after* the controller's phase of
        # the tick, so the controller must be ticked again on the very next
        # cycle; consumed by next_event_cycle().  LLC-hit sends and MSHR
        # merges do not touch the controller and so do not set this — their
        # observable futures (data returns, fills) are tracked as events.
        self._enqueued_this_tick = True
        # Stop-condition tracking for the fast engine: cores whose
        # instruction-limit crossing must land on a simulated tick.
        self._instruction_limit: Optional[int] = None
        self._limit_tracked_cores: frozenset = frozenset()
        # Wake epoch for the batch engine's stalled-core skip: bumped by
        # every event that could turn a previously-rejected memory access
        # into an accepted one (MSHR release/allocate/merge, LLC fill,
        # quota change).  Queue-space changes are covered by the request
        # queues' own version counters.
        self._wake_epoch = 0
        # Set (only) by the batch engine: skip ticking cores whose tick is
        # provably a no-op beyond stall accounting — which Core.tick's
        # existing catch-up replays exactly on the next real tick.  The
        # cycle and fast engines never enable this.
        self.batch_core_skip = False
        self._core_wake_keys: Dict[int, Tuple[int, int, int]] = {}

    # ------------------------------------------------------------------ #
    # Core → memory path
    # ------------------------------------------------------------------ #
    def _apply_quota(self, thread_id: int, quota: int) -> None:
        """BreakHammer quota hook; a quota change can unstall a core."""

        self.mshrs.set_quota(thread_id, quota)
        self._wake_epoch += 1

    def _send(self, core: Core, entry) -> bool:
        """Handle one memory access from ``core``; return False to stall it."""

        address = entry.address
        is_write = entry.is_write
        thread_id = core.thread_id
        if entry.bypass_cache:
            return self._send_uncached(core, address, is_write, thread_id)
        result = self.llc.access_if_resident(address, is_write=is_write,
                                             thread_id=thread_id)
        if result is not None:
            if not is_write:
                self._pending_hits.append(
                    (self.cycle + result.latency, core)
                )
            return True

        line_address = self.llc.line_address(address)
        existing = self.mshrs.lookup(line_address)
        if existing is not None:
            # Secondary miss: merge and (for loads) wait on the same fill.
            self.llc.access(address, is_write=is_write, thread_id=thread_id)
            self.mshrs.allocate(line_address, thread_id, self.cycle, is_write)
            self._wake_epoch += 1
            if not is_write:
                existing.waiters.append(core)
            return True

        if is_write:
            # Store misses are posted to the controller's write queue without
            # holding an MSHR (a write buffer in a real hierarchy); the store
            # already retired at the core.
            if not self.controller.can_accept(RequestType.WRITE):
                return False
            self.llc.access(address, is_write=True, thread_id=thread_id)
            request = MemoryRequest(
                address=line_address,
                kind=RequestType.WRITE,
                thread_id=thread_id,
                arrival_cycle=self.cycle,
            )
            self._enqueued_this_tick = True
            return self.controller.enqueue(request)

        # Primary load miss: needs an MSHR (gated by BreakHammer's per-thread
        # quota) plus a controller queue slot.  The checks run before the
        # access is recorded so that a stalled-and-retried access does not
        # inflate the miss statistics.
        if not self.mshrs.can_allocate(thread_id):
            return False
        if not self.controller.can_accept(RequestType.READ):
            return False
        self.llc.access(address, is_write=False, thread_id=thread_id)
        entry = self.mshrs.allocate(line_address, thread_id, self.cycle, False)
        self._wake_epoch += 1
        assert entry is not None
        entry.waiters.append(core)
        request = MemoryRequest(
            address=line_address,
            kind=RequestType.READ,
            thread_id=thread_id,
            arrival_cycle=self.cycle,
            on_complete=self._on_memory_response,
        )
        accepted = self.controller.enqueue(request)
        if not accepted:  # pragma: no cover - guarded by can_accept above
            self.mshrs.release(line_address)
            return False
        self._enqueued_this_tick = True
        return True

    def _send_uncached(self, core: Core, address: int, is_write: bool,
                       thread_id: int) -> bool:
        """Non-cacheable access: skips the LLC but still needs an MSHR.

        Models the ``clflush``-style accesses a hammering attacker performs;
        the MSHR requirement is what lets BreakHammer throttle such a thread
        even though its accesses never hit the cache.
        """

        line_address = self.llc.line_address(address)
        if is_write:
            if not self.controller.can_accept(RequestType.WRITE):
                return False
            self._enqueued_this_tick = True
            return self.controller.enqueue(MemoryRequest(
                address=line_address,
                kind=RequestType.WRITE,
                thread_id=thread_id,
                arrival_cycle=self.cycle,
            ))
        existing = self.mshrs.lookup(line_address)
        if existing is not None:
            self.mshrs.allocate(line_address, thread_id, self.cycle, False,
                                uncached=True)
            self._wake_epoch += 1
            existing.waiters.append(core)
            return True
        if not self.mshrs.can_allocate(thread_id):
            return False
        if not self.controller.can_accept(RequestType.READ):
            return False
        entry = self.mshrs.allocate(line_address, thread_id, self.cycle, False,
                                    uncached=True)
        self._wake_epoch += 1
        assert entry is not None
        entry.waiters.append(core)
        request = MemoryRequest(
            address=line_address,
            kind=RequestType.READ,
            thread_id=thread_id,
            arrival_cycle=self.cycle,
            on_complete=self._on_memory_response,
            metadata={"uncached": True},
        )
        accepted = self.controller.enqueue(request)
        if not accepted:  # pragma: no cover - guarded by can_accept above
            self.mshrs.release(line_address)
            return False
        self._enqueued_this_tick = True
        return True

    def _on_memory_response(self, request: MemoryRequest, cycle: int) -> None:
        """Fill the LLC, release the MSHR, and wake waiting cores."""

        self._wake_epoch += 1
        entry = self.mshrs.release(request.address)
        # The entry's flag — not the request metadata — decides whether to
        # install the line: a cacheable load that merged into an uncached
        # fetch clears the flag, so its data does land in the LLC.
        uncached = (
            entry.uncached if entry is not None
            else bool(request.metadata.get("uncached"))
        )
        if uncached:
            if entry is not None:
                for core in entry.waiters:
                    core.on_data_returned(cycle)
            return
        writeback = self.llc.fill(
            request.address,
            is_write=request.is_write,
            thread_id=request.thread_id,
        )
        if writeback is not None:
            # Dirty victim: issue a best-effort writeback (dropped if the
            # write queue is full; data loss is irrelevant to a tag-only model).
            wb = MemoryRequest(
                address=writeback,
                kind=RequestType.WRITE,
                thread_id=request.thread_id,
                arrival_cycle=cycle,
            )
            self.controller.enqueue(wb)
        if entry is not None:
            for core in entry.waiters:
                core.on_data_returned(cycle)

    # ------------------------------------------------------------------ #
    # Cycle loop body
    # ------------------------------------------------------------------ #
    def tick(self, cycle: int) -> None:
        self.cycle = cycle
        self._enqueued_this_tick = False
        if self.breakhammer is not None:
            self.breakhammer.tick(cycle)
        self.controller.tick(cycle)
        if self._pending_hits:
            self._return_llc_hits(cycle)
        # The start index rotates with the cycle number so no core gets
        # structural priority over shared resources (MSHRs, queue slots)
        # just by tick order.  Deriving it from the cycle — rather than from
        # a tick counter — keeps the cycle and fast-forward engines on the
        # same arbitration sequence.
        rotation = self._rotations[(cycle - 1) % len(self.cores)]
        if not self.batch_core_skip:
            for core in rotation:
                core.tick(cycle)
            return
        # Batch engine only: skip cores whose tick is provably limited to
        # stall accounting.  A window-stalled core can only be woken by a
        # data return, which clears ``core.stalled`` before this loop; a
        # reject-stalled core re-attempts the same send, whose outcome can
        # only change when MSHR/LLC/quota state (wake epoch) or controller
        # queue space (queue versions) changes.  Skipped cycles are
        # attributed by Core.tick's catch-up replay, exactly as for cycles
        # the fast engine jumps over.  The wake key is re-read per core:
        # earlier cores in this rotation may accept work this very cycle
        # and thereby unblock a later core's send.
        wake_keys = self._core_wake_keys
        controller = self.controller
        for core in rotation:
            if core.finished:
                continue
            if core.stalled:
                kind = core._stall_kind
                if kind is _STALL_WINDOW:
                    continue
                if kind is _STALL_REJECT and wake_keys.get(core.core_id) == (
                    self._wake_epoch,
                    controller.read_queue.version,
                    controller.write_queue.version,
                ):
                    continue
            core.tick(cycle)
            if core.stalled and core._stall_kind is _STALL_REJECT:
                wake_keys[core.core_id] = (
                    self._wake_epoch,
                    controller.read_queue.version,
                    controller.write_queue.version,
                )

    def _return_llc_hits(self, cycle: int) -> None:
        if not self._pending_hits:
            return
        still_pending: List[Tuple[int, Core]] = []
        for ready_cycle, core in self._pending_hits:
            if ready_cycle <= cycle:
                core.on_data_returned(cycle)
            else:
                still_pending.append((ready_cycle, core))
        self._pending_hits = still_pending

    # ------------------------------------------------------------------ #
    # Fast-forward support
    # ------------------------------------------------------------------ #
    def track_instruction_limit(self, limit: Optional[int],
                                core_ids: Sequence[int]) -> None:
        """Tell the fast engine which cores' limit crossings are stop events.

        The simulator samples its stop condition once per simulated tick, so
        each tracked core's ``next_event_cycle`` caps its bubble-batch jump
        at the tick on which it crosses ``limit`` — keeping the fast
        engine's stop cycle identical to the cycle engine's.
        """

        self._instruction_limit = limit
        self._limit_tracked_cores = frozenset(core_ids)

    def next_event_cycle(self) -> int:
        """The next cycle :meth:`tick` must simulate to stay cycle-accurate.

        Returns ``cycle + 1`` whenever a core enqueued a memory request
        during the last tick (the controller must react next cycle);
        otherwise the
        earliest of the controller's next event, each core's next
        self-driven tick (bubble runs are batched), the next pending
        LLC-hit data return, and BreakHammer's next window boundary.  The
        engine may safely jump straight to the returned cycle: nothing
        observable can happen in between.
        """

        cycle = self.cycle
        next_cycle = cycle + 1
        if self._enqueued_this_tick:
            return next_cycle
        earliest: Optional[int] = None
        controller_event = self.controller.next_event_cycle()
        if controller_event is not None:
            if controller_event <= next_cycle:
                return next_cycle
            earliest = controller_event
        limit = self._instruction_limit
        tracked = self._limit_tracked_cores
        for core in self.cores:
            core_event = core.next_event_cycle(
                cycle, limit if core.core_id in tracked else None
            )
            if core_event is not None:
                if core_event <= next_cycle:
                    return next_cycle
                if earliest is None or core_event < earliest:
                    earliest = core_event
        if self._pending_hits:
            hit_event = min(ready for ready, _ in self._pending_hits)
            if hit_event <= next_cycle:
                return next_cycle
            if earliest is None or hit_event < earliest:
                earliest = hit_event
        if self.breakhammer is not None:
            window_event = self.breakhammer.next_event_cycle()
            if earliest is None or window_event < earliest:
                earliest = window_event
        if earliest is None or earliest < next_cycle:
            return next_cycle
        return earliest

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def core(self, index: int) -> Core:
        return self.cores[index]

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def outstanding_work(self) -> int:
        return (
            self.controller.pending_requests
            + len(self._pending_hits)
            + len(self.mshrs)
        )

    def snapshot(self) -> Dict[str, object]:
        return {
            "cycle": self.cycle,
            "cores": [core.snapshot() for core in self.cores],
            "llc": {
                "hits": self.llc.stats.hits,
                "misses": self.llc.stats.misses,
                "miss_rate": self.llc.stats.miss_rate,
            },
            "mshrs": self.mshrs.snapshot(),
            "controller": self.controller.snapshot(),
            "breakhammer": (
                self.breakhammer.snapshot() if self.breakhammer else None
            ),
        }

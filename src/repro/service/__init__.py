"""repro.service — the always-on experiment server (ROADMAP open item 1).

A long-lived daemon over the :class:`repro.api.Session` stack: clients
``POST`` an :class:`~repro.api.ExperimentSpec`, stream job progress, and
``GET`` aggregated figures; warm figures are served from a
fingerprint-keyed in-memory TTL cache (:mod:`repro.service.cache`) in
front of the persistent :class:`~repro.analysis.runcache.RunCache`, so a
hot figure costs a dict lookup instead of a sweep.  The paper's own
throttling idea guards the queue (:mod:`repro.service.quotas`): clients
are scored in the cluster cost model's predicted seconds, heavy hitters
get ``429 Retry-After``, and benign (cached) traffic keeps its
throughput.

Run one with ``python -m repro.service --listen HOST:PORT``; embed one
with :func:`start_service`; talk to one with
:class:`~repro.service.client.ServiceClient`.
"""

from repro.service.cache import TTLCache
from repro.service.client import ServiceClient
from repro.service.jobs import Job, JobRegistry
from repro.service.quotas import Decision, QuotaManager, QuotaPolicy
from repro.service.server import (
    ApiError,
    ExperimentService,
    RunningService,
    Throttled,
    make_server,
    start_service,
)

__all__ = [
    "ApiError",
    "Decision",
    "ExperimentService",
    "Job",
    "JobRegistry",
    "QuotaManager",
    "QuotaPolicy",
    "RunningService",
    "ServiceClient",
    "TTLCache",
    "Throttled",
    "make_server",
    "start_service",
]

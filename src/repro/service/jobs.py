"""Job registry: asynchronous figure computations with streamed progress.

``POST /v1/figures`` creates a :class:`Job` and returns immediately; the
figure's sweep plan then executes through the owning session's futures,
and every completed grid handle bumps the job's ``completed`` counter —
``GET /v1/jobs/<id>`` polls per-point progress while the sweep runs.

States move ``pending`` → ``running`` → ``done`` | ``failed``.  A job
whose figure was already warm in the TTL cache completes instantly with
``cached=True`` and no points.  Terminal jobs are kept (bounded by
``max_jobs``, oldest-terminal-first eviction) so clients can fetch the
outcome after the fact.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional

JOB_PENDING = "pending"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"

JOB_STATES = (JOB_PENDING, JOB_RUNNING, JOB_DONE, JOB_FAILED)


class Job:
    """One asynchronous figure computation (fields guarded by ``_lock``)."""

    def __init__(self, job_id: str, client: str, fingerprint: str,
                 figure_id: str) -> None:
        self.job_id = job_id
        self.client = client
        self.fingerprint = fingerprint
        self.figure_id = figure_id
        self.state = JOB_PENDING
        self.cached = False
        self.error: Optional[str] = None
        self.total = 0
        self.completed = 0
        self.executed = 0
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def start(self, total: int = 0) -> None:
        with self._lock:
            self.state = JOB_RUNNING
            self.total = total
            self.started = time.time()

    def set_total(self, total: int) -> None:
        with self._lock:
            self.total = total

    def bump(self) -> None:
        """One more grid point of the job's sweep plan completed."""

        with self._lock:
            self.completed += 1

    def finish(self, *, cached: bool = False, executed: int = 0) -> None:
        with self._lock:
            self.state = JOB_DONE
            self.cached = cached
            self.executed = executed
            self.finished = time.time()

    def fail(self, error: str) -> None:
        with self._lock:
            self.state = JOB_FAILED
            self.error = error
            self.finished = time.time()

    @property
    def terminal(self) -> bool:
        with self._lock:
            return self.state in (JOB_DONE, JOB_FAILED)

    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, object]:
        """The ``GET /v1/jobs/<id>`` payload."""

        with self._lock:
            data: Dict[str, object] = {
                "job": self.job_id,
                "client": self.client,
                "fingerprint": self.fingerprint,
                "figure": self.figure_id,
                "state": self.state,
                "cached": self.cached,
                "progress": {
                    "total": self.total,
                    "completed": self.completed,
                    "executed": self.executed,
                },
                "created": self.created,
                "started": self.started,
                "finished": self.finished,
            }
            if self.error is not None:
                data["error"] = self.error
            return data


class JobRegistry:
    """Bounded, thread-safe id → :class:`Job` table."""

    def __init__(self, max_jobs: int = 1024) -> None:
        if max_jobs < 1:
            raise ValueError(f"max_jobs must be at least 1, got {max_jobs!r}")
        self.max_jobs = max_jobs
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    def create(self, client: str, fingerprint: str, figure_id: str) -> Job:
        with self._lock:
            job = Job(f"j{next(self._ids)}", client, fingerprint, figure_id)
            self._jobs[job.job_id] = job
            self._prune()
            return job

    def _prune(self) -> None:
        # Evict oldest *terminal* jobs first; live jobs are never dropped
        # (the table can transiently exceed max_jobs under a burst of
        # in-flight work, which the quota layer bounds per client).
        if len(self._jobs) <= self.max_jobs:
            return
        for job_id in list(self._jobs):
            if len(self._jobs) <= self.max_jobs:
                break
            if self._jobs[job_id].terminal:
                del self._jobs[job_id]

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        with self._lock:
            jobs: List[Job] = list(self._jobs.values())
        by_state = {state: 0 for state in JOB_STATES}
        for job in jobs:
            with job._lock:
                by_state[job.state] += 1
        return {"total": len(jobs), "by_state": by_state}

"""``repro.service`` — the always-on experiment server.

A stdlib-only daemon (:class:`http.server.ThreadingHTTPServer`, JSON
bodies) that owns one :class:`~repro.api.Session` per registered spec and
turns hot figure requests into dict lookups:

* ``POST /v1/specs`` — register an :class:`~repro.api.ExperimentSpec`
  (JSON body in the spec-file format; TOML accepted with a ``toml``
  content type).  Idempotent: returns the spec's session fingerprint.
* ``POST /v1/figures`` — ``{"fingerprint": ..., "figure": "fig8"}`` →
  a job id; the sweep executes through the session's futures and every
  completed grid handle bumps the job's progress.
* ``GET /v1/jobs/<id>`` — job state + per-point progress.
* ``GET /v1/figures/<fingerprint>/<id>`` — the aggregated figure dict.
  Served from the in-memory TTL cache when warm (the ``X-Repro-Cache``
  response header says ``hit``/``miss``); computed synchronously through
  the session otherwise.
* ``GET /healthz`` / ``GET /statsz`` — liveness and observability (TTL
  cache hit rate, per-client served/throttled counters, per-session
  :meth:`~repro.api.Session.stats` including the persistent run-cache
  counters and — on cluster sessions — the broker's scheduling stats).

Three layers keep a busy server responsive:

1. the **TTL figure cache** (:mod:`repro.service.cache`) in front of the
   persistent :class:`~repro.analysis.runcache.RunCache` — a warm figure
   never touches the executor;
2. **single-flight compute**: requests for one session serialise on its
   lock and re-check the TTL cache after acquiring it, so N concurrent
   requests for one cold figure cost exactly one sweep;
3. **client throttling** (:mod:`repro.service.quotas`) — the paper's
   BreakHammer mechanism applied to our own multi-tenant queue: clients
   are charged the cluster cost model's *predicted seconds* for work
   that actually needs the executor, and heavy hitters get ``429`` +
   ``Retry-After`` while light (and cached) traffic proceeds.

Start one with ``python -m repro.service --listen HOST:PORT`` or, from
code/tests, :func:`start_service`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.analysis.executor import (
    TASK_ALONE,
    TASK_RUN,
    RunTask,
    iter_completed,
)
from repro.analysis.experiments import FIGURES
from repro.api import Session, resolve_execution, spec_from_data
from repro.api.spec import ExperimentSpec, SpecFile
from repro.cluster.costs import CostModel
from repro.service.cache import (
    DEFAULT_MAX_ENTRIES,
    DEFAULT_TTL,
    TTLCache,
)
from repro.service.jobs import Job, JobRegistry
from repro.service.quotas import Decision, QuotaManager, QuotaPolicy

#: ``REPRO_SERVICE_*`` environment knobs (documented in ROADMAP.md).
TTL_ENV = "REPRO_SERVICE_TTL"
MAX_ENTRIES_ENV = "REPRO_SERVICE_MAX_ENTRIES"
MAX_SESSIONS_ENV = "REPRO_SERVICE_MAX_SESSIONS"

#: Most sessions a service hosts at once; each owns an executor + caches.
DEFAULT_MAX_SESSIONS = 8

#: Response header reporting whether the figure came from the TTL cache.
CACHE_STATE_HEADER = "X-Repro-Cache"

#: Request header naming the client for quota accounting; falls back to
#: the connection's remote address.
CLIENT_ID_HEADER = "X-Client-Id"


class ApiError(Exception):
    """An error with an HTTP status, rendered as a JSON body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message

    def headers(self) -> Dict[str, str]:
        return {}

    def payload(self) -> Dict[str, object]:
        return {"error": self.message}


class Throttled(ApiError):
    """429: the quota layer rejected the work (come back later)."""

    def __init__(self, decision: Decision) -> None:
        super().__init__(429, f"throttled: {decision.reason}")
        self.retry_after = max(1, int(decision.retry_after))

    def headers(self) -> Dict[str, str]:
        return {"Retry-After": str(self.retry_after)}

    def payload(self) -> Dict[str, object]:
        return {"error": self.message, "retry_after": self.retry_after}


def _env_positive_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None
    if not value > 0.0:
        raise ValueError(f"{name} must be positive, got {raw!r}")
    return value


def _env_positive_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None
    if value < 1:
        raise ValueError(f"{name} must be at least 1, got {raw!r}")
    return value


@dataclass
class _SessionEntry:
    """One hosted session: the Session, its compute lock, its cost model."""

    session: Session
    costs: CostModel
    lock: threading.Lock
    source: Dict[str, object]
    registered: float


class ExperimentService:
    """The figure-serving application behind the HTTP handler.

    Owns the session table, the TTL figure cache, the quota manager, and
    the job registry; the HTTP layer is a thin JSON shim over the public
    methods here (which tests drive directly too).  Execution keywords
    (``jobs``/``engine``/``cache_dir``/``backend``/``broker``/
    ``workers``) apply to every session the service creates — the service
    owns *how* specs execute, clients only say *what* to compute.

    On ``backend="cluster"`` each session hosts its own broker; a fixed
    ``broker`` listen address is given to the first session only (later
    sessions take ephemeral ports — two brokers cannot share one socket).
    """

    def __init__(self, *,
                 jobs: Optional[int] = None,
                 engine: Optional[str] = None,
                 cache_dir: Optional[str] = None,
                 backend: Optional[str] = None,
                 broker: Optional[str] = None,
                 workers: Optional[int] = None,
                 ttl: Optional[float] = None,
                 max_entries: Optional[int] = None,
                 max_sessions: Optional[int] = None,
                 policy: Optional[QuotaPolicy] = None,
                 clock=time.monotonic) -> None:
        self._execution = dict(jobs=jobs, engine=engine, cache_dir=cache_dir,
                               backend=backend, workers=workers)
        self._broker = broker
        self._broker_granted = False
        ttl = ttl if ttl is not None else _env_positive_float(
            TTL_ENV, DEFAULT_TTL)
        max_entries = max_entries if max_entries is not None else \
            _env_positive_int(MAX_ENTRIES_ENV, DEFAULT_MAX_ENTRIES)
        self.max_sessions = max_sessions if max_sessions is not None else \
            _env_positive_int(MAX_SESSIONS_ENV, DEFAULT_MAX_SESSIONS)
        self.figure_cache = TTLCache(ttl=ttl, max_entries=max_entries,
                                     clock=clock)
        self.quotas = QuotaManager(policy, clock=clock)
        self.jobs = JobRegistry()
        self._sessions: Dict[str, _SessionEntry] = {}
        # Maps the *spec-level* fingerprint (cheap, no session needed) to
        # the session fingerprint, so duplicate registrations never build
        # a second executor/broker just to discover they are duplicates.
        self._by_spec: Dict[str, str] = {}
        self._sessions_lock = threading.Lock()
        self._started = time.time()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Spec registration and the session table
    # ------------------------------------------------------------------ #
    def register_spec_data(self, data: Dict[str, object],
                           source: str = "POST /v1/specs"
                           ) -> Tuple[str, bool]:
        """Register parsed spec data; returns (fingerprint, created).

        The body uses the spec-file format (``profile`` / ``[spec]`` /
        ``figures``); any ``[execution]`` table is ignored — execution
        belongs to the service, and honouring client-supplied worker
        counts would be a resource-exhaustion hole.
        """

        try:
            spec_file = spec_from_data(data, source)
        except ValueError as exc:
            raise ApiError(400, str(exc)) from exc
        return self.register_spec(spec_file.spec)

    def register_spec(self, spec: ExperimentSpec) -> Tuple[str, bool]:
        """Host a session for ``spec``; idempotent per fingerprint."""

        execution = self._execution
        plan = resolve_execution(spec, jobs=execution["jobs"],
                                 cache_dir=execution["cache_dir"],
                                 engine=execution["engine"],
                                 backend=execution["backend"])
        spec_key = spec.resolved(plan.engine).fingerprint()
        with self._sessions_lock:
            if self._closed:
                raise ApiError(503, "service is shutting down")
            known = self._by_spec.get(spec_key)
            if known is not None:
                return known, False
            if len(self._sessions) >= self.max_sessions:
                raise ApiError(
                    409,
                    f"session table full ({self.max_sessions} specs); "
                    "retire one or raise --max-sessions / "
                    f"{MAX_SESSIONS_ENV}",
                )
            broker = None
            if not self._broker_granted:
                broker = self._broker
                self._broker_granted = True
            session = Session(spec, jobs=execution["jobs"],
                              cache_dir=execution["cache_dir"],
                              engine=execution["engine"],
                              backend=execution["backend"],
                              broker=broker,
                              workers=execution["workers"])
            entry = _SessionEntry(
                session=session,
                # Predictions share the cluster scheduler's learned-cost
                # table when a persistent cache exists (load only — the
                # broker owns writes), so a service over a warm cache
                # starts with calibrated charges.
                costs=CostModel(session.runner.config,
                                path=(session.cache.directory / "costs.json"
                                      if session.cache is not None else None)),
                lock=threading.Lock(),
                source=spec.as_dict(),
                registered=time.time(),
            )
            self._sessions[session.fingerprint] = entry
            self._by_spec[spec_key] = session.fingerprint
            return session.fingerprint, True

    def _entry(self, fingerprint: str) -> _SessionEntry:
        with self._sessions_lock:
            entry = self._sessions.get(fingerprint)
        if entry is None:
            raise ApiError(
                404,
                f"unknown spec fingerprint {fingerprint!r}; register it "
                "with POST /v1/specs first",
            )
        return entry

    @staticmethod
    def _validate_figure(figure_id: str) -> None:
        if figure_id not in FIGURES:
            raise ApiError(
                400,
                f"unknown figure {figure_id!r}; one of {sorted(FIGURES)}",
            )

    # ------------------------------------------------------------------ #
    # Cost prediction (the quota layer's currency)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _plan_tasks(entry: _SessionEntry, figure_id: str) -> List[RunTask]:
        plan = entry.session.runner.figure_plan(figure_id)
        tasks: List[RunTask] = []
        for seed in plan.seeds:
            for mix, mechanism, nrh, breakhammer in plan.runs:
                tasks.append(RunTask(kind=TASK_RUN, mix_name=mix, seed=seed,
                                     mechanism=mechanism, nrh=nrh,
                                     breakhammer=breakhammer))
            for mix in plan.alone_mixes:
                # One standalone-IPC baseline per trace (= per mix letter).
                for index in range(len(mix)):
                    tasks.append(RunTask(kind=TASK_ALONE, mix_name=mix,
                                         seed=seed, trace_index=index))
        return tasks

    def predicted_cost(self, fingerprint: str, figure_id: str) -> float:
        """Predicted executor seconds of one figure's full sweep plan."""

        entry = self._entry(fingerprint)
        self._validate_figure(figure_id)
        return sum(entry.costs.predict(task)
                   for task in self._plan_tasks(entry, figure_id))

    # ------------------------------------------------------------------ #
    # Figures
    # ------------------------------------------------------------------ #
    def figure(self, fingerprint: str, figure_id: str,
               client: str) -> Tuple[Dict[str, object], str]:
        """The aggregated figure dict and its cache state (hit/miss).

        Warm requests (TTL hit) bypass quota admission entirely — a dict
        lookup is exactly the traffic the throttling exists to protect.
        Cold requests are admitted at the plan's predicted cost, compute
        single-flight under the session lock, and refund the share of the
        charge that the persistent run cache made unnecessary.
        """

        entry = self._entry(fingerprint)
        self._validate_figure(figure_id)
        key = (fingerprint, figure_id)
        value = self.figure_cache.get(key)
        if value is not None:
            self.quotas.note_served(client, cached=True)
            return value, "hit"
        cost = sum(entry.costs.predict(task)
                   for task in self._plan_tasks(entry, figure_id))
        decision = self.quotas.admit(client, cost)
        if not decision.allowed:
            raise Throttled(decision)
        try:
            with entry.lock:
                value = self.figure_cache.get(key)
                if value is not None:
                    # Another request computed it while we queued: the
                    # admitted work never ran, so the charge comes back.
                    self.quotas.release(client, refund=decision.charged)
                    self.quotas.note_served(client, cached=True)
                    return value, "hit"
                data, total, executed = self._compute(entry, figure_id)
                self.figure_cache.put(key, data)
        except ApiError:
            self.quotas.release(client, refund=decision.charged)
            raise
        except Exception as exc:
            self.quotas.release(client, refund=decision.charged)
            raise ApiError(
                500, f"figure {figure_id} failed: {exc}") from exc
        self.quotas.release(
            client, refund=self._refund(decision, total, executed))
        self.quotas.note_served(client, cached=False)
        return data, "miss"

    @staticmethod
    def _refund(decision: Decision, total: int, executed: int) -> float:
        """The unexecuted share of an admission charge.

        A sweep whose points were all warm in the persistent
        :class:`RunCache` executed nothing: the client is scored on work
        the executor actually did, not on what it might have cost.
        """

        if total <= 0:
            return 0.0
        unexecuted = 1.0 - min(1.0, executed / total)
        return decision.charged * unexecuted

    @staticmethod
    def _compute(entry: _SessionEntry, figure_id: str,
                 job: Optional[Job] = None
                 ) -> Tuple[Dict[str, object], int, int]:
        """Execute one figure through the session's futures.

        Returns ``(figure dict, total points, points actually executed)``.
        Must be called with ``entry.lock`` held — sessions (and the
        legacy runner beneath them) are not safe for concurrent sweeps.
        """

        session = entry.session
        runner = session.runner
        before = session.runs_executed
        plan = runner.figure_plan(figure_id)
        handles = runner.submit_plan(plan)
        if job is not None:
            job.set_total(len(handles))
        for handle in iter_completed(handles):
            handle.result()
            if job is not None:
                job.bump()
        figure = getattr(runner, FIGURES[figure_id])()
        executed = session.runs_executed - before
        return figure.as_dict(), len(handles), executed

    # ------------------------------------------------------------------ #
    # Jobs
    # ------------------------------------------------------------------ #
    def submit_figure(self, fingerprint: str, figure_id: str,
                      client: str) -> Dict[str, object]:
        """Admit and start one asynchronous figure job; returns its dict."""

        entry = self._entry(fingerprint)
        self._validate_figure(figure_id)
        key = (fingerprint, figure_id)
        if self.figure_cache.get(key) is not None:
            # Warm: the job is born done — no admission, no thread.
            job = self.jobs.create(client, fingerprint, figure_id)
            job.finish(cached=True)
            self.quotas.note_served(client, cached=True)
            return job.as_dict()
        cost = sum(entry.costs.predict(task)
                   for task in self._plan_tasks(entry, figure_id))
        decision = self.quotas.admit(client, cost)
        if not decision.allowed:
            raise Throttled(decision)
        job = self.jobs.create(client, fingerprint, figure_id)
        thread = threading.Thread(
            target=self._run_job, args=(entry, job, decision),
            name=f"repro-service-{job.job_id}", daemon=True,
        )
        thread.start()
        return job.as_dict()

    def _run_job(self, entry: _SessionEntry, job: Job,
                 decision: Decision) -> None:
        key = (job.fingerprint, job.figure_id)
        try:
            with entry.lock:
                job.start()
                value = self.figure_cache.get(key)
                if value is not None:
                    self.quotas.release(job.client, refund=decision.charged)
                    self.quotas.note_served(job.client, cached=True)
                    job.finish(cached=True)
                    return
                data, total, executed = self._compute(entry, job.figure_id,
                                                      job)
                self.figure_cache.put(key, data)
            self.quotas.release(
                job.client, refund=self._refund(decision, total, executed))
            self.quotas.note_served(job.client, cached=False)
            job.finish(executed=executed)
        except Exception as exc:  # noqa: BLE001 - job boundary
            self.quotas.release(job.client, refund=decision.charged)
            job.fail(f"{type(exc).__name__}: {exc}")

    def job(self, job_id: str) -> Dict[str, object]:
        job = self.jobs.get(job_id)
        if job is None:
            raise ApiError(404, f"unknown job {job_id!r}")
        return job.as_dict()

    # ------------------------------------------------------------------ #
    # Health and observability
    # ------------------------------------------------------------------ #
    def healthz(self) -> Dict[str, object]:
        with self._sessions_lock:
            sessions = len(self._sessions)
        return {
            "status": "ok",
            "uptime_seconds": round(time.time() - self._started, 3),
            "sessions": sessions,
            "jobs": len(self.jobs),
        }

    def statsz(self) -> Dict[str, object]:
        with self._sessions_lock:
            entries = dict(self._sessions)
        sessions: Dict[str, object] = {}
        for fingerprint, entry in entries.items():
            stats = entry.session.stats()
            stats["cost_model_size"] = len(entry.costs)
            sessions[fingerprint] = stats
        return {
            "uptime_seconds": round(time.time() - self._started, 3),
            "figure_cache": self.figure_cache.stats(),
            "clients": self.quotas.stats(),
            "jobs": self.jobs.stats(),
            "sessions": sessions,
        }

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        with self._sessions_lock:
            if self._closed:
                return
            self._closed = True
            entries = list(self._sessions.values())
            self._sessions.clear()
            self._by_spec.clear()
        for entry in entries:
            # Let an in-flight sweep finish before tearing its pool down.
            with entry.lock:
                entry.session.close()

    def __enter__(self) -> "ExperimentService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# The HTTP shim
# ---------------------------------------------------------------------- #
class ServiceHandler(BaseHTTPRequestHandler):
    """Routes the JSON surface onto :class:`ExperimentService` methods."""

    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> ExperimentService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # ------------------------------------------------------------------ #
    def _client_id(self) -> str:
        header = (self.headers.get(CLIENT_ID_HEADER) or "").strip()
        return header or self.client_address[0]

    def _send(self, status: int, payload: Dict[str, object],
              headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length > 0 else b""

    def _json_body(self) -> Dict[str, object]:
        raw = self._read_body()
        if not raw:
            raise ApiError(400, "request body required")
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ApiError(400, f"body is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ApiError(400, "body must be a JSON object")
        return data

    def _spec_body(self) -> Dict[str, object]:
        content_type = (self.headers.get("Content-Type") or "").lower()
        if "toml" not in content_type:
            return self._json_body()
        import tomllib

        raw = self._read_body()
        if not raw:
            raise ApiError(400, "request body required")
        try:
            return tomllib.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, tomllib.TOMLDecodeError) as exc:
            raise ApiError(400, f"body is not valid TOML: {exc}") from exc

    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            path = self.path.split("?", 1)[0].rstrip("/")
            if path == "/healthz":
                self._send(200, self.service.healthz())
                return
            if path == "/statsz":
                self._send(200, self.service.statsz())
                return
            parts = [p for p in path.split("/") if p]
            if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                self._send(200, self.service.job(parts[2]))
                return
            if len(parts) == 4 and parts[:2] == ["v1", "figures"]:
                data, state = self.service.figure(parts[2], parts[3],
                                                  self._client_id())
                self._send(200, data, headers={CACHE_STATE_HEADER: state})
                return
            raise ApiError(404, f"no such resource: {self.path}")
        except ApiError as exc:
            self._send(exc.status, exc.payload(), headers=exc.headers())

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            path = self.path.split("?", 1)[0].rstrip("/")
            if path == "/v1/specs":
                fingerprint, created = self.service.register_spec_data(
                    self._spec_body())
                self._send(201 if created else 200, {
                    "fingerprint": fingerprint,
                    "created": created,
                })
                return
            if path == "/v1/figures":
                body = self._json_body()
                fingerprint = body.get("fingerprint")
                figure_id = body.get("figure")
                if not isinstance(fingerprint, str) or not fingerprint:
                    raise ApiError(400, "'fingerprint' (string) required")
                if not isinstance(figure_id, str) or not figure_id:
                    raise ApiError(400, "'figure' (string) required")
                job = self.service.submit_figure(fingerprint, figure_id,
                                                 self._client_id())
                self._send(202, job)
                return
            raise ApiError(404, f"no such resource: {self.path}")
        except ApiError as exc:
            self._send(exc.status, exc.payload(), headers=exc.headers())


# ---------------------------------------------------------------------- #
# Embedding helpers (tests, examples, the CLI)
# ---------------------------------------------------------------------- #
def parse_listen(listen: str) -> Tuple[str, int]:
    """``HOST:PORT`` → ``(host, port)``; port 0 asks for an ephemeral one."""

    host, sep, port = listen.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"listen address must be HOST:PORT, got {listen!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(
            f"listen address must be HOST:PORT, got {listen!r}"
        ) from None


def make_server(service: ExperimentService,
                listen: str = "127.0.0.1:0") -> ThreadingHTTPServer:
    """A ready-to-serve HTTP server bound to ``listen`` (not yet running)."""

    host, port = parse_listen(listen)
    server = ThreadingHTTPServer((host, port), ServiceHandler)
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    server.verbose = False  # type: ignore[attr-defined]
    return server


@dataclass
class RunningService:
    """A service + HTTP server pair running on a background thread."""

    service: ExperimentService
    server: ThreadingHTTPServer
    thread: threading.Thread

    @property
    def address(self) -> str:
        host, port = self.server.server_address[:2]
        return f"{host}:{port}"

    def close(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.service.close()
        self.thread.join(timeout=10.0)

    def __enter__(self) -> "RunningService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def start_service(listen: str = "127.0.0.1:0",
                  service: Optional[ExperimentService] = None,
                  **service_kwargs) -> RunningService:
    """Build (or adopt) a service and serve it on a daemon thread.

    The embedding entry point used by tests, benchmarks, and
    ``examples/experiment_service.py``; the blocking CLI equivalent is
    ``python -m repro.service``.
    """

    owned = service is None
    if service is None:
        service = ExperimentService(**service_kwargs)
    elif service_kwargs:
        raise ValueError("pass service_kwargs or an existing service, "
                         "not both")
    try:
        server = make_server(service, listen)
    except BaseException:
        if owned:
            service.close()
        raise
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-service-http", daemon=True)
    thread.start()
    return RunningService(service=service, server=server, thread=thread)

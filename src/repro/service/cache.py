"""Fingerprint-keyed in-memory TTL/LRU cache for aggregated figures.

The experiment service sits in front of two cache layers: the persistent
:class:`~repro.analysis.runcache.RunCache` memoises *grid points* (one
simulation each), and this :class:`TTLCache` memoises whole *aggregated
figure dictionaries* keyed by ``(spec fingerprint, figure id)``.  A warm
figure request therefore never touches the sweep executor — not even to
discover that every point is already cached — it is one dict lookup.

Every result in this reproduction is a deterministic function of its
spec, so entries can never be *wrong*, only stale in the "recompute cost"
sense; the TTL exists to bound memory and to let operators cap how long a
figure is pinned in RAM, not to protect correctness.  Eviction is LRU
once ``max_entries`` is reached.

Values are deep-copied on both ``put`` and ``get`` so callers can mutate
what they receive (or what they stored) without corrupting the cached
copy that later requests will be served.

Thread-safe: the service's HTTP handler threads share one instance.
"""

from __future__ import annotations

import copy
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Optional, Tuple

#: Default entry lifetime (seconds); ``REPRO_SERVICE_TTL`` overrides.
DEFAULT_TTL = 300.0

#: Default capacity; ``REPRO_SERVICE_MAX_ENTRIES`` overrides.
DEFAULT_MAX_ENTRIES = 256


class TTLCache:
    """A thread-safe TTL + LRU mapping with observable counters.

    ``ttl`` is the entry lifetime in seconds, ``max_entries`` the LRU
    capacity, ``clock`` a monotonic-seconds callable (injectable so tests
    control expiry deterministically).
    """

    def __init__(self, ttl: float = DEFAULT_TTL,
                 max_entries: int = DEFAULT_MAX_ENTRIES,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if not ttl > 0.0:
            raise ValueError(f"ttl must be positive, got {ttl!r}")
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be at least 1, got {max_entries!r}"
            )
        self.ttl = float(ttl)
        self.max_entries = int(max_entries)
        self._clock = clock
        self._entries: "OrderedDict[Hashable, Tuple[float, object]]" = \
            OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    # ------------------------------------------------------------------ #
    def get(self, key: Hashable):
        """The live cached value (a private copy), or ``None`` on a miss.

        An expired entry counts as a miss *and* an expiration and is
        dropped on access (there is no background sweeper thread —
        capacity bounds are enforced by LRU eviction on ``put``).
        """

        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            expires, value = entry
            if self._clock() >= expires:
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return copy.deepcopy(value)

    def put(self, key: Hashable, value) -> None:
        """Store ``value`` (a private copy) under ``key`` for one TTL."""

        with self._lock:
            self._entries[key] = (self._clock() + self.ttl,
                                  copy.deepcopy(value))
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; ``True`` if it was present."""

        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """Counters plus the hit rate, as served by ``GET /statsz``."""

        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "ttl_seconds": self.ttl,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
                "evictions": self.evictions,
                "expirations": self.expirations,
            }

"""A tiny stdlib HTTP client for the experiment service.

Used by the tests, the benchmarks, and ``examples/experiment_service.py``
— and small enough to crib for any other consumer::

    from repro.service.client import ServiceClient

    client = ServiceClient("127.0.0.1:8080", client_id="alice")
    fingerprint = client.register_spec({"profile": "tiny"})
    job = client.submit_figure(fingerprint, "fig8")
    job = client.wait_job(job["job"])
    figure = client.figure(fingerprint, "fig8")   # the aggregated dict

Every method raises :class:`ServiceError` on non-2xx responses;
:class:`Throttled` (with ``retry_after`` seconds) is the 429 the quota
layer returns to heavy hitters.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Optional, Tuple

from repro.service.server import CACHE_STATE_HEADER, CLIENT_ID_HEADER


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str,
                 payload: Optional[Dict[str, object]] = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.payload = payload or {}


class Throttled(ServiceError):
    """429 from the quota layer; honour ``retry_after`` before retrying."""

    def __init__(self, status: int, message: str,
                 payload: Optional[Dict[str, object]],
                 retry_after: int) -> None:
        super().__init__(status, message, payload)
        self.retry_after = retry_after


class ServiceClient:
    """JSON-over-HTTP client bound to one service and one client identity.

    ``address`` is ``HOST:PORT`` (or a full ``http://`` base URL);
    ``client_id`` names this client to the quota layer (the
    ``X-Client-Id`` header) — omit it to be accounted by remote address.
    """

    def __init__(self, address: str, client_id: Optional[str] = None,
                 timeout: float = 120.0) -> None:
        if "//" not in address:
            address = f"http://{address}"
        self.base_url = address.rstrip("/")
        self.client_id = client_id
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, object]] = None
                 ) -> Tuple[Dict[str, object], Dict[str, str]]:
        data = None
        headers = {"Accept": "application/json"}
        if self.client_id:
            headers[CLIENT_ID_HEADER] = self.client_id
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(self.base_url + path, data=data,
                                         headers=headers, method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                payload = json.loads(response.read().decode("utf-8"))
                return payload, dict(response.headers)
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                payload = {"error": raw.decode("utf-8", "replace")}
            message = str(payload.get("error", exc.reason))
            if exc.code == 429:
                retry_after = int(exc.headers.get("Retry-After") or
                                  payload.get("retry_after") or 1)
                raise Throttled(exc.code, message, payload,
                                retry_after) from None
            raise ServiceError(exc.code, message, payload) from None

    # ------------------------------------------------------------------ #
    def healthz(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")[0]

    def statsz(self) -> Dict[str, object]:
        return self._request("GET", "/statsz")[0]

    def register_spec(self, data: Dict[str, object]) -> str:
        """Register spec-file-format data; returns the fingerprint."""

        payload, _ = self._request("POST", "/v1/specs", body=data)
        return str(payload["fingerprint"])

    def submit_figure(self, fingerprint: str,
                      figure_id: str) -> Dict[str, object]:
        """Start an asynchronous figure job; returns the job dict."""

        return self._request("POST", "/v1/figures", body={
            "fingerprint": fingerprint,
            "figure": figure_id,
        })[0]

    def job(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/jobs/{job_id}")[0]

    def wait_job(self, job_id: str, timeout: float = 120.0,
                 poll: float = 0.05,
                 on_progress=None) -> Dict[str, object]:
        """Poll a job until it is terminal; raises on failure/timeout.

        ``on_progress(job_dict)`` observes every poll (progress bars).
        """

        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if on_progress is not None:
                on_progress(job)
            if job["state"] == "done":
                return job
            if job["state"] == "failed":
                raise ServiceError(500,
                                   f"job {job_id} failed: {job.get('error')}",
                                   job)
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']!r} after {timeout}s"
                )
            time.sleep(poll)

    def figure(self, fingerprint: str, figure_id: str) -> Dict[str, object]:
        """The aggregated figure dict (computed on a cold server)."""

        return self.figure_response(fingerprint, figure_id)[0]

    def figure_response(self, fingerprint: str, figure_id: str
                        ) -> Tuple[Dict[str, object], str]:
        """The figure dict plus the server's cache verdict (hit/miss)."""

        payload, headers = self._request(
            "GET", f"/v1/figures/{fingerprint}/{figure_id}")
        return payload, headers.get(CACHE_STATE_HEADER, "")

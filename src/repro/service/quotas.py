"""Per-client quotas: the paper's throttling idea applied to our own service.

BreakHammer scores suspect *threads* by the preventive actions they
trigger and throttles the heavy hitters' MSHR quotas so benign threads
keep their throughput.  The experiment service faces the same shape of
problem one layer up: a client hammering expensive cycle-engine sweeps
must not starve a client fetching cheap (cached) smoke figures.  The
analogue maps cleanly:

==========================  =========================================
BreakHammer                 ``QuotaManager``
==========================  =========================================
thread                      client (``X-Client-Id`` / remote address)
preventive action triggers  predicted executor seconds it requests
                            (:class:`repro.cluster.costs.CostModel`)
MSHR quota shrink           token bucket + bounded in-flight job share
throughput recovery window  bucket refill at ``rate`` seconds/second
==========================  =========================================

Admission is charged in **predicted compute seconds** (the cluster cost
model's currency), never in request counts: one expensive cycle-engine
figure weighs as much as hundreds of fast-engine smoke figures, exactly
like one RFM preventive action weighs more than one row activation.
Requests served from the TTL figure cache are not admitted here at all —
a warm figure is a dict lookup and throttling it would punish exactly the
benign traffic the mechanism exists to protect.

A throttled client is told *when* to come back (``Retry-After``), and its
unused charge is refunded when a sweep turns out to be warm in the
persistent :class:`~repro.analysis.runcache.RunCache` — scoring follows
work actually executed, the way BreakHammer scores actions actually
triggered rather than suspected.
"""

from __future__ import annotations

import math
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

#: ``REPRO_SERVICE_*`` environment knobs (documented in ROADMAP.md).
RATE_ENV = "REPRO_SERVICE_RATE"
BURST_ENV = "REPRO_SERVICE_BURST"
MAX_OUTSTANDING_ENV = "REPRO_SERVICE_MAX_OUTSTANDING"

#: Defaults: a client earns one predicted compute-second per wall-clock
#: second, may burst half a minute of work, and may keep 4 jobs in flight.
DEFAULT_RATE = 1.0
DEFAULT_BURST = 30.0
DEFAULT_MAX_OUTSTANDING = 4


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


@dataclass(frozen=True)
class QuotaPolicy:
    """The three throttling knobs, validated at construction.

    ``rate`` — predicted compute-seconds a client earns per wall-clock
    second (the refill rate); ``burst`` — the token-bucket capacity, i.e.
    how much work a client may demand at once (a single request costing
    more than ``burst`` is clamped to ``burst`` so it stays admittable
    from a full bucket — throttling slows heavy hitters, it never starves
    them outright, matching the paper's mechanism); ``max_outstanding`` —
    the bounded queue share: in-flight (admitted, unfinished) units of
    work one client may hold.
    """

    rate: float = DEFAULT_RATE
    burst: float = DEFAULT_BURST
    max_outstanding: int = DEFAULT_MAX_OUTSTANDING

    def __post_init__(self) -> None:
        if not self.rate > 0.0:
            raise ValueError(f"rate must be positive, got {self.rate!r}")
        if not self.burst > 0.0:
            raise ValueError(f"burst must be positive, got {self.burst!r}")
        if self.max_outstanding < 1:
            raise ValueError(
                f"max_outstanding must be at least 1, "
                f"got {self.max_outstanding!r}"
            )

    @classmethod
    def from_env(cls, **overrides) -> "QuotaPolicy":
        """A policy from ``REPRO_SERVICE_*`` variables, defaults beneath.

        Explicit keyword overrides beat the environment (the same
        precedence discipline as :func:`repro.api.resolve_execution`).
        """

        values = {
            "rate": _env_float(RATE_ENV, DEFAULT_RATE),
            "burst": _env_float(BURST_ENV, DEFAULT_BURST),
            "max_outstanding": _env_int(MAX_OUTSTANDING_ENV,
                                        DEFAULT_MAX_OUTSTANDING),
        }
        values.update(overrides)
        return cls(**values)


@dataclass(frozen=True)
class Decision:
    """One admission verdict.

    ``allowed`` admits the work (``charged`` predicted seconds were
    deducted); otherwise ``retry_after`` is the whole number of seconds
    after which the same request would fit the refilled bucket (the HTTP
    ``Retry-After`` header) and ``reason`` says which bound tripped.
    """

    allowed: bool
    charged: float = 0.0
    retry_after: int = 0
    reason: str = ""


@dataclass
class _Account:
    """Mutable per-client state (guarded by the manager's lock)."""

    tokens: float
    refilled_at: float
    outstanding: int = 0
    served: int = 0
    served_cached: int = 0
    throttled: int = 0
    charged_seconds: float = 0.0
    refunded_seconds: float = 0.0


class QuotaManager:
    """Token scoring and throttling for every client of the service.

    Thread-safe; ``clock`` is injectable (monotonic seconds) so tests
    drive refill deterministically.
    """

    def __init__(self, policy: Optional[QuotaPolicy] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.policy = policy if policy is not None else QuotaPolicy.from_env()
        self._clock = clock
        self._accounts: Dict[str, _Account] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def _account(self, client: str) -> _Account:
        account = self._accounts.get(client)
        if account is None:
            # New clients start with a full bucket — the first request is
            # never throttled, exactly like a fresh BreakHammer window.
            account = _Account(tokens=self.policy.burst,
                               refilled_at=self._clock())
            self._accounts[client] = account
        return account

    def _refill(self, account: _Account) -> None:
        now = self._clock()
        elapsed = max(0.0, now - account.refilled_at)
        account.tokens = min(self.policy.burst,
                             account.tokens + elapsed * self.policy.rate)
        account.refilled_at = now

    # ------------------------------------------------------------------ #
    def admit(self, client: str, cost: float) -> Decision:
        """Admit or throttle ``cost`` predicted seconds of work.

        The charge is clamped to ``burst`` so a single request dearer
        than the whole bucket is still admittable from a full one; the
        clamp does not change *ordering* — a heavy hitter still drains
        its bucket far faster than a light client.
        """

        policy = self.policy
        charge = min(max(0.0, float(cost)), policy.burst)
        with self._lock:
            account = self._account(client)
            self._refill(account)
            if account.outstanding >= policy.max_outstanding:
                account.throttled += 1
                return Decision(
                    allowed=False,
                    retry_after=max(1, math.ceil(charge / policy.rate)),
                    reason=(
                        f"queue share exhausted: {account.outstanding} "
                        f"jobs in flight (max {policy.max_outstanding})"
                    ),
                )
            if account.tokens + 1e-9 < charge:
                account.throttled += 1
                deficit = charge - account.tokens
                return Decision(
                    allowed=False,
                    retry_after=max(1, math.ceil(deficit / policy.rate)),
                    reason=(
                        f"cost quota exhausted: {charge:.3f}s predicted, "
                        f"{account.tokens:.3f}s available "
                        f"(refills at {policy.rate:g}s/s)"
                    ),
                )
            account.tokens -= charge
            account.outstanding += 1
            account.charged_seconds += charge
            return Decision(allowed=True, charged=charge)

    def release(self, client: str, refund: float = 0.0) -> None:
        """Settle one admitted unit of work.

        ``refund`` returns the unexecuted share of the admission charge
        (e.g. the sweep turned out warm in the persistent run cache):
        scoring tracks work *actually executed*, the way BreakHammer
        scores preventive actions actually triggered.
        """

        with self._lock:
            account = self._account(client)
            account.outstanding = max(0, account.outstanding - 1)
            if refund > 0.0:
                account.tokens = min(self.policy.burst,
                                     account.tokens + refund)
                account.refunded_seconds += refund

    def note_served(self, client: str, cached: bool) -> None:
        """Count one response actually delivered to ``client``."""

        with self._lock:
            account = self._account(client)
            account.served += 1
            if cached:
                account.served_cached += 1

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Dict[str, object]]:
        """Per-client served/throttled counters (``GET /statsz``)."""

        with self._lock:
            snapshot: Dict[str, Dict[str, object]] = {}
            for client, account in self._accounts.items():
                self._refill(account)
                snapshot[client] = {
                    "served": account.served,
                    "served_cached": account.served_cached,
                    "throttled": account.throttled,
                    "outstanding": account.outstanding,
                    "tokens": round(account.tokens, 6),
                    "charged_seconds": round(account.charged_seconds, 6),
                    "refunded_seconds": round(account.refunded_seconds, 6),
                }
            return snapshot

"""``python -m repro.service`` — run the experiment server.

Examples::

    # Local process-pool execution, figures cached for 10 minutes:
    python -m repro.service --listen 0.0.0.0:8080 --jobs 4 --ttl 600 \
        --cache-dir ~/.cache/repro

    # Serve sweeps through the cluster fabric (the session hosts the
    # broker; point remote workers at the printed broker address):
    python -m repro.service --listen 0.0.0.0:8080 --backend cluster \
        --broker 0.0.0.0:7777 --workers 2 --cache-dir ~/.cache/repro

    # Pre-register specs so the first client request is already hot:
    python -m repro.service --listen 127.0.0.1:8080 --spec sweep.toml

Quota knobs come from ``REPRO_SERVICE_RATE`` / ``REPRO_SERVICE_BURST`` /
``REPRO_SERVICE_MAX_OUTSTANDING`` (or the corresponding flags below);
see ROADMAP.md "Serving figures".
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.api.spec import load_spec
from repro.service.quotas import QuotaPolicy
from repro.service.server import ExperimentService, make_server


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Always-on experiment server: POST specs, GET figures.",
    )
    parser.add_argument("--listen", default="127.0.0.1:8080",
                        metavar="HOST:PORT",
                        help="HTTP listen address (default %(default)s; "
                             "port 0 picks an ephemeral port)")
    parser.add_argument("--spec", action="append", default=[],
                        metavar="FILE",
                        help="pre-register a spec file (repeatable)")
    parser.add_argument("--ttl", type=float, default=None, metavar="S",
                        help="figure-cache TTL seconds "
                             "(default REPRO_SERVICE_TTL or 300)")
    parser.add_argument("--max-entries", type=int, default=None,
                        help="figure-cache capacity "
                             "(default REPRO_SERVICE_MAX_ENTRIES or 256)")
    parser.add_argument("--max-sessions", type=int, default=None,
                        help="most hosted specs "
                             "(default REPRO_SERVICE_MAX_SESSIONS or 8)")
    parser.add_argument("--rate", type=float, default=None,
                        help="quota refill: predicted compute-seconds per "
                             "second per client")
    parser.add_argument("--burst", type=float, default=None,
                        help="quota bucket capacity in compute-seconds")
    parser.add_argument("--max-outstanding", type=int, default=None,
                        help="most in-flight jobs per client")
    execution = parser.add_argument_group("execution (applies to every "
                                          "hosted session)")
    execution.add_argument("--jobs", type=int, default=None,
                           help="local worker processes per session")
    execution.add_argument("--engine", default=None,
                           help="pin the simulation engine "
                                "(fast/cycle/batch)")
    execution.add_argument("--cache-dir", default=None,
                           help="persistent run-cache root")
    execution.add_argument("--backend", default=None,
                           choices=("local", "cluster"),
                           help="sweep fabric (default: REPRO_BACKEND or "
                                "local)")
    execution.add_argument("--broker", default=None, metavar="HOST:PORT",
                           help="cluster broker listen address "
                                "(first session only)")
    execution.add_argument("--workers", type=int, default=None,
                           help="co-located cluster workers per session")
    parser.add_argument("--verbose", action="store_true",
                        help="log every HTTP request to stderr")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    quota_overrides = {
        name: value for name, value in (
            ("rate", args.rate),
            ("burst", args.burst),
            ("max_outstanding", args.max_outstanding),
        ) if value is not None
    }
    service = ExperimentService(
        jobs=args.jobs,
        engine=args.engine,
        cache_dir=args.cache_dir,
        backend=args.backend,
        broker=args.broker,
        workers=args.workers,
        ttl=args.ttl,
        max_entries=args.max_entries,
        max_sessions=args.max_sessions,
        policy=QuotaPolicy.from_env(**quota_overrides),
    )
    try:
        for path in args.spec:
            fingerprint, created = service.register_spec(load_spec(path).spec)
            print(f"registered {path}: fingerprint {fingerprint}"
                  f"{'' if created else ' (already hosted)'}", flush=True)
        server = make_server(service, args.listen)
        server.verbose = args.verbose  # type: ignore[attr-defined]
        host, port = server.server_address[:2]
        print(f"repro.service listening on http://{host}:{port} | "
              f"ttl={service.figure_cache.ttl:g}s | "
              f"quota rate={service.quotas.policy.rate:g}s/s "
              f"burst={service.quotas.policy.burst:g}s | "
              f"try: curl http://{host}:{port}/healthz", flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("shutting down", file=sys.stderr)
        finally:
            server.server_close()
    finally:
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

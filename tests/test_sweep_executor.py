"""Parallel sweep executor, on-disk run cache, and cache-key hygiene.

The contract pinned here: a sweep executed with ``jobs=N`` (worker
processes regenerating traces from (config, seed)) must produce
``RunStatistics`` bit-identical to the serial path, and the persistent
on-disk cache must round-trip them exactly — across runner instances and
without aliasing between distinct configurations.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.executor import (
    JOBS_ENV,
    ProcessPoolSweepExecutor,
    RunTask,
    SerialSweepExecutor,
    resolve_jobs,
)
from repro.analysis.experiments import ExperimentRunner
from repro.analysis.runcache import RunCache
from repro.api import ExperimentSpec, Session
from repro.sim.stats import RunStatistics


def tiny_spec(**overrides) -> ExperimentSpec:
    """The smallest grid that still exercises attack + benign + baselines."""

    base = dict(
        sim_cycles=2_000,
        entries_per_core=800,
        attacker_entries=1_000,
        nrh_sweep=(1024, 64),
        attack_mixes=("MMLA",),
        benign_mixes=("MMLL",),
        mechanisms=("para", "rfm"),
        seeds=(0,),
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def tiny_runner(jobs: int = 1, cache_dir="", engine=None,
                **spec_overrides) -> ExperimentRunner:
    """A runner built through the supported Session/ExperimentSpec path.

    Defaults keep it hermetic against exported env knobs: ``jobs=1``
    stays serial even under ``REPRO_JOBS``, and ``cache_dir=""``
    force-disables the disk cache even under ``REPRO_CACHE_DIR``.
    """

    session = Session(tiny_spec(**spec_overrides), jobs=jobs,
                      cache_dir=cache_dir, engine=engine)
    return session.runner


GRID = [
    ("MMLA", "para", 64, False),
    ("MMLA", "para", 64, True),
    ("MMLA", "rfm", 64, False),
    ("MMLA", "rfm", 64, True),
    ("MMLA", "none", 1024, False),
]


class TestResolveJobs:
    def test_explicit_request_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "8")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "4")
        assert resolve_jobs(0) == 4

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(0) == 1

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        with pytest.raises(ValueError):
            resolve_jobs(0)


class TestParallelDeterminism:
    """REPRO_JOBS=4 must be bit-identical to the serial path."""

    def test_parallel_sweep_bit_identical_to_serial(self):
        serial = tiny_runner()
        for mix, mechanism, nrh, bh in GRID:
            serial.run(mix, mechanism, nrh, bh)

        with tiny_runner(jobs=4) as parallel:
            assert parallel.jobs == 4
            assert isinstance(parallel._executor, ProcessPoolSweepExecutor)
            executed = parallel.prefetch(GRID, alone_mixes=("MMLA",))
            assert executed > 0
            for mix, mechanism, nrh, bh in GRID:
                key = serial.run_key(mix, mechanism, nrh, bh)
                assert key == parallel.run_key(mix, mechanism, nrh, bh)
                assert dataclasses.asdict(serial.run(mix, mechanism, nrh, bh)) \
                    == dataclasses.asdict(parallel.run(mix, mechanism, nrh, bh))
            # Standalone-IPC baselines came back from workers, identically.
            mix = serial.mix("MMLA")
            for trace in mix.traces:
                assert serial.alone_ipc(trace) == parallel.alone_ipc(trace)

    def test_parallel_figure_equals_serial_figure(self):
        serial = tiny_runner()
        with tiny_runner(jobs=2) as parallel:
            fig_serial = serial.figure6(nrh=64)
            fig_parallel = parallel.figure6(nrh=64)
            assert fig_serial.as_dict() == fig_parallel.as_dict()

    def test_prefetch_skips_memoised_points(self):
        runner = tiny_runner()
        runner.run("MMLA", "para", 64, False)
        executed_before = runner.runs_executed
        runner.prefetch([("MMLA", "para", 64, False)])
        assert runner.runs_executed == executed_before


class TestDiskCache:
    def test_round_trip_is_exact(self, tmp_path):
        first = tiny_runner(cache_dir=str(tmp_path))
        stats = first.run("MMLA", "para", 64, True)
        assert first.disk_cache is not None
        assert len(first.disk_cache) == 1

        second = tiny_runner(cache_dir=str(tmp_path))
        reloaded = second.run("MMLA", "para", 64, True)
        assert second.runs_executed == 0
        assert second.disk_cache.hits == 1
        assert dataclasses.asdict(reloaded) == dataclasses.asdict(stats)

    def test_alone_baselines_persisted_too(self, tmp_path):
        first = tiny_runner(cache_dir=str(tmp_path))
        figure = first.figure6(nrh=64)
        # Grid points *and* the per-trace standalone-IPC baselines landed
        # on disk, so a fresh invocation simulates nothing at all.
        assert len(first.disk_cache) > first.runs_executed
        second = tiny_runner(cache_dir=str(tmp_path))
        again = second.figure6(nrh=64)
        assert second.runs_executed == 0
        assert second.disk_cache.misses == 0
        assert again.as_dict() == figure.as_dict()

    def test_payload_round_trip_bit_exact(self):
        runner = tiny_runner()
        stats = runner.run("MMLA", "rfm", 64, False)
        clone = RunStatistics.from_payload(stats.to_payload())
        assert dataclasses.asdict(clone) == dataclasses.asdict(stats)
        assert clone.energy.total_mj == stats.energy.total_mj

    def test_jobs_and_cache_dir_do_not_change_fingerprint(self, tmp_path):
        plain = tiny_runner()
        tuned = tiny_runner(jobs=2, cache_dir=str(tmp_path))
        tuned.close()
        assert plain.fingerprint == tuned.fingerprint

    def test_distinct_configs_use_distinct_namespaces(self, tmp_path):
        a = tiny_runner(cache_dir=str(tmp_path))
        b = tiny_runner(sim_cycles=2_500, cache_dir=str(tmp_path))
        assert a.fingerprint != b.fingerprint
        a.run("MMLA", "para", 64, False)
        # The other configuration must not see the entry.
        assert b.run_key("MMLA", "para", 64, False) != \
            a.run_key("MMLA", "para", 64, False)
        assert b.disk_cache.get(b.run_key("MMLA", "para", 64, False)) is None

    def test_unwritable_location_degrades_gracefully(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        cache = RunCache(blocker / "cache", "fp")
        cache.put(("k",), RunStatistics(cycles=1))  # must not raise
        assert cache.write_errors == 1
        assert cache.writes == 0
        assert cache.get(("k",)) is None

    def test_torn_entry_treated_as_miss(self, tmp_path):
        cache = RunCache(tmp_path, "deadbeef")
        stats = RunStatistics(cycles=7)
        cache.put(("k",), stats)
        path = cache._path(("k",))
        path.write_bytes(b"\x00garbage")
        assert cache.get(("k",)) is None
        cache.put(("k",), stats)
        assert cache.get(("k",)).cycles == 7

    def test_disabled_without_configuration(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        runner = tiny_runner(cache_dir=None)
        assert runner.disk_cache is None

    def test_empty_string_force_disables(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert tiny_runner(cache_dir="").disk_cache is None
        assert tiny_runner(cache_dir=None).disk_cache is not None


class TestRunKeyHygiene:
    """Distinct trace/scale configurations must never share cache entries."""

    def test_run_key_includes_trace_and_engine_parameters(self):
        runner = tiny_runner()
        key = runner.run_key("MMLA", "para", 64, True, seed=3)
        assert key == ("MMLA", 3, "para", 64, True, 800, 1_000, 2_000, "fast")

    def test_entry_counts_separate_run_keys(self):
        small = tiny_runner()
        large = tiny_runner(entries_per_core=1_600)
        assert small.run_key("MMLA", "para", 64, False) != \
            large.run_key("MMLA", "para", 64, False)

    def test_engine_separates_run_keys(self):
        fast = tiny_runner()
        cycle = tiny_runner(engine="cycle")
        assert fast.run_key("MMLA", "para", 64, False) != \
            cycle.run_key("MMLA", "para", 64, False)

    def test_mix_cache_keyed_by_trace_sizes(self):
        runner = tiny_runner()
        runner.mix("MMLL")
        runner.config = dataclasses.replace(runner.config,
                                            entries_per_core=400)
        other = runner.mix("MMLL")
        assert len(runner._mix_cache) == 2
        assert len(other.traces[0]) == 400

    def test_alone_ipc_keyed_by_trace_length(self):
        runner = tiny_runner()
        trace = runner.mix("MMLL").traces[0]
        runner.alone_ipc(trace)
        assert (trace.name, len(trace)) in runner._alone_ipc_cache


class TestSerialExecutorPath:
    def test_serial_runner_uses_serial_executor(self):
        runner = tiny_runner()
        assert isinstance(runner._executor, SerialSweepExecutor)
        assert runner.jobs == 1

    def test_unknown_task_kind_rejected(self):
        runner = tiny_runner()
        with pytest.raises(ValueError):
            runner._executor.execute(
                [RunTask(kind="teleport", mix_name="MMLL")]
            )

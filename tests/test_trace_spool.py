"""mmap'd columnar traces and the workload spool.

Contracts pinned here:

* ``Trace.load_columnar(path, mmap=True)`` exposes the identical columns
  (and therefore identical entries, characteristics, and pickles) as the
  eager loader — the views are zero-copy over the mapping;
* a :class:`repro.workloads.spool.TraceSpool` round-trips a generated mix
  byte-identically, refuses mismatched parameters or fingerprints, and
  degrades to ``None`` (regeneration) on any damage;
* a runner pointed at a spool produces figures bit-identical to one that
  regenerates its traces.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.api import ExperimentSpec, Session
from repro.cpu.trace import Trace, TraceEntry
from repro.dram.config import DeviceConfig
from repro.workloads.attacker import AttackerConfig
from repro.workloads.mixes import make_mix
from repro.workloads.spool import TraceSpool


def sample_trace(n: int = 64) -> Trace:
    entries = [
        TraceEntry(i % 7, 64 * i + (i % 3), is_write=i % 5 == 0,
                   bypass_cache=i % 11 == 0)
        for i in range(n)
    ]
    return Trace(entries, name="sample", loop=False)


def columns_bytes(trace: Trace):
    bubbles, addresses, flags = trace.columns
    return bytes(bubbles), bytes(addresses), bytes(flags)


class TestMmapLoad:
    def test_mmap_columns_identical_to_eager(self, tmp_path):
        path = tmp_path / "t.rtrc"
        trace = sample_trace()
        trace.dump_columnar(path)
        eager = Trace.load_columnar(path)
        mapped = Trace.load_columnar(path, mmap=True)
        assert columns_bytes(mapped) == columns_bytes(eager)
        assert mapped.name == eager.name == "sample"
        assert mapped.loop is eager.loop is False
        assert list(mapped.entries) == list(eager.entries)
        assert mapped._mmap is not None  # really the zero-copy path

    def test_mmap_trace_behaves_like_a_trace(self, tmp_path):
        path = tmp_path / "t.rtrc"
        trace = sample_trace()
        trace.dump_columnar(path)
        mapped = Trace.load_columnar(path, mmap=True)
        assert len(mapped) == len(trace)
        assert mapped.total_instructions == trace.total_instructions
        assert mapped.write_fraction == trace.write_fraction
        cursor = mapped.cursor()
        assert cursor.advance() == trace[0]

    def test_mmap_trace_characterizes_identically(self, tmp_path):
        from repro.dram.address import AddressMapper, MappingScheme

        mapper = AddressMapper(DeviceConfig.tiny(), MappingScheme.MOP)
        path = tmp_path / "t.rtrc"
        trace = sample_trace(200)
        trace.dump_columnar(path)
        mapped = Trace.load_columnar(path, mmap=True)
        for backend in ("scalar", "numpy"):
            assert mapped.characterize(mapper, backend=backend) \
                == trace.characterize(mapper, backend=backend)

    def test_mmap_trace_pickles_by_value(self, tmp_path):
        path = tmp_path / "t.rtrc"
        sample_trace().dump_columnar(path)
        mapped = Trace.load_columnar(path, mmap=True)
        clone = pickle.loads(pickle.dumps(mapped))
        assert columns_bytes(clone) == columns_bytes(mapped)
        assert clone._mmap is None  # the pickle carries bytes, not the map

    def test_mmap_rejects_truncation(self, tmp_path):
        path = tmp_path / "t.rtrc"
        sample_trace().dump_columnar(path)
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(ValueError, match="truncated"):
            Trace.load_columnar(path, mmap=True)
        path.write_bytes(b"")
        with pytest.raises(ValueError, match="truncated"):
            Trace.load_columnar(path, mmap=True)

    def test_mmap_rejects_foreign_bytes(self, tmp_path):
        path = tmp_path / "t.rtrc"
        path.write_bytes(b"definitely not a columnar trace")
        with pytest.raises(ValueError, match="not a columnar trace"):
            Trace.load_columnar(path, mmap=True)


def tiny_mix(seed: int = 0):
    device = DeviceConfig.tiny()
    from repro.dram.address import MappingScheme

    return make_mix(
        "MMLA", device=device, mapping=MappingScheme.MOP,
        entries_per_core=200, attacker_entries=300, seed=seed,
        attacker_config=AttackerConfig(entries=300, seed=seed),
    )


class TestTraceSpool:
    PARAMS = dict(entries_per_core=200, attacker_entries=300,
                  fingerprint="fp-1")

    def test_round_trip_is_byte_identical(self, tmp_path):
        spool = TraceSpool(tmp_path)
        mix = tiny_mix()
        assert spool.dump_mix(mix, seed=0, **self.PARAMS) is True
        loaded = spool.load_mix("MMLA", seed=0, **self.PARAMS)
        assert loaded is not None
        assert loaded.attacker_threads == mix.attacker_threads
        assert [t.name for t in loaded.traces] == [t.name for t in mix.traces]
        for ours, theirs in zip(loaded.traces, mix.traces):
            assert columns_bytes(ours) == columns_bytes(theirs)
            assert ours.loop == theirs.loop

    def test_materialisation_is_idempotent(self, tmp_path):
        spool = TraceSpool(tmp_path)
        mix = tiny_mix()
        assert spool.dump_mix(mix, seed=0, **self.PARAMS) is True
        assert spool.dump_mix(mix, seed=0, **self.PARAMS) is False

    def test_parameter_mismatch_misses(self, tmp_path):
        spool = TraceSpool(tmp_path)
        spool.dump_mix(tiny_mix(), seed=0, **self.PARAMS)
        assert spool.load_mix("MMLA", 0, entries_per_core=999,
                              attacker_entries=300,
                              fingerprint="fp-1") is None
        assert spool.load_mix("MMLA", 0, entries_per_core=200,
                              attacker_entries=300,
                              fingerprint="other-runner") is None
        assert spool.load_mix("HHMA", 0, **self.PARAMS) is None
        assert spool.load_mix("MMLA", 3, **self.PARAMS) is None

    def test_damaged_spool_degrades_to_none(self, tmp_path):
        spool = TraceSpool(tmp_path)
        spool.dump_mix(tiny_mix(), seed=0, **self.PARAMS)
        victim = next(tmp_path.glob("MMLA-s0-0.rtrc"))
        victim.write_bytes(b"torn" * 3)
        assert spool.load_mix("MMLA", 0, **self.PARAMS) is None
        # A deleted column file is also just a miss.
        victim.unlink()
        assert spool.load_mix("MMLA", 0, **self.PARAMS) is None

    def test_empty_directory_misses(self, tmp_path):
        assert TraceSpool(tmp_path / "nope").load_mix(
            "MMLA", 0, **self.PARAMS) is None


SPEC = ExperimentSpec.tiny()


class TestSpooledSessions:
    def test_spooled_session_figures_bit_identical(self, tmp_path):
        with Session(SPEC, jobs=1, cache_dir="") as plain:
            reference = plain.figure("fig6", nrh=64)
        spool_dir = tmp_path / "spool"
        # The first session materialises the spool (while computing from
        # its own generated mixes) ...
        with Session(SPEC, jobs=1, cache_dir="",
                     spool_dir=str(spool_dir)) as writer:
            assert writer.spool_dir == str(spool_dir)
            first = writer.figure("fig6", nrh=64)
            assert list(spool_dir.glob("*.json"))  # manifests exist
        # ... and a second one *loads* every mix from it (mmap'd), with
        # bit-identical figure output.
        with Session(SPEC, jobs=1, cache_dir="",
                     spool_dir=str(spool_dir)) as reader:
            mix = reader.runner.mix("MMLA")
            assert any(t._mmap is not None for t in mix.traces)
            second = reader.figure("fig6", nrh=64)
        assert first.as_dict() == reference.as_dict()
        assert second.as_dict() == reference.as_dict()

    def test_materialise_spool_counts_and_skips(self, tmp_path):
        spool_dir = str(tmp_path / "spool")
        with Session(SPEC, jobs=1, cache_dir="",
                     spool_dir=spool_dir) as session:
            # tiny spec: one attack mix + one benign mix, one seed.
            assert session.materialise_spool() == 0  # done at construction
        with Session(SPEC, jobs=1, cache_dir="",
                     spool_dir=spool_dir) as again:
            assert again.materialise_spool() == 0

    def test_unwritable_spool_dir_fails_clean_not_leaking(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        with pytest.raises(OSError):
            # __init__ must tear the half-built session (executor pool /
            # broker) down before re-raising, not leak it.
            Session(SPEC, jobs=1, cache_dir="",
                    spool_dir=str(blocker / "spool"))

    def test_mismatched_spool_is_ignored_not_trusted(self, tmp_path):
        spool_dir = str(tmp_path / "spool")
        other = ExperimentSpec.tiny(sim_cycles=2_000)
        with Session(other, jobs=1, cache_dir="", spool_dir=spool_dir):
            pass  # materialises for a *different* fingerprint
        with Session(SPEC, jobs=1, cache_dir="",
                     spool_dir=spool_dir) as session:
            mix = session.runner.mix("MMLA")
            # Regenerated (fingerprint mismatch), then re-spooled for us.
            reference = tiny_reference_mix()
            for ours, theirs in zip(mix.traces, reference.traces):
                assert ours.name == theirs.name


def tiny_reference_mix():
    # Spool-less session: regenerates the mix in-process for comparison.
    return Session(SPEC, jobs=1, cache_dir="").runner.mix("MMLA")

"""Tests for the security analysis (§5, Fig. 5) and the hardware model (§6)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hardware_model import HardwareCostModel
from repro.core.security import SecurityAnalysis, max_attacker_score_ratio
from repro.core.suspect import SuspectDetector
from repro.dram.config import DeviceConfig


class TestExpression2:
    def test_paper_observation_50pct(self):
        """TH_outlier=0.65, 50% attacker threads → ≈4.71× (paper §5.2)."""

        assert max_attacker_score_ratio(0.5, 0.65) == pytest.approx(4.71, abs=0.01)

    def test_paper_observation_90pct(self):
        """TH_outlier=0.05, 90% attacker threads → ≈1.90× (paper §5.2)."""

        assert max_attacker_score_ratio(0.9, 0.05) == pytest.approx(1.90, abs=0.01)

    def test_abstract_claim_twice_benign_needs_90pct(self):
        """Paper §1: with a strict outlier threshold, an attacker cannot
        trigger twice the benign preventive-action count unless it controls
        ~90% of all hardware threads."""

        analysis = SecurityAnalysis()
        strict = analysis.minimum_attacker_share_for_ratio(2.0, 0.05)
        assert strict >= 0.9
        # A looser threshold admits the 2x ratio with fewer threads, but
        # still only beyond a non-trivial share.
        loose = analysis.minimum_attacker_share_for_ratio(2.0, 0.65)
        assert 0.1 <= loose < strict

    def test_zero_attackers_bound_is_one_plus_th(self):
        assert max_attacker_score_ratio(0.0, 0.65) == pytest.approx(1.65)

    def test_diverges_when_attacker_majority_overwhelms(self):
        assert math.isinf(max_attacker_score_ratio(1.0, 0.65))

    def test_input_validation(self):
        with pytest.raises(ValueError):
            max_attacker_score_ratio(-0.1, 0.5)
        with pytest.raises(ValueError):
            max_attacker_score_ratio(0.5, -1.0)

    @settings(max_examples=100, deadline=None)
    @given(fraction=st.floats(min_value=0.0, max_value=0.99),
           outlier=st.floats(min_value=0.0, max_value=1.0))
    def test_bound_monotone_in_attacker_share(self, fraction, outlier):
        """Property: more attacker threads never reduce the achievable ratio."""

        lower = max_attacker_score_ratio(fraction, outlier)
        higher = max_attacker_score_ratio(min(1.0, fraction + 0.01), outlier)
        assert higher >= lower - 1e-9

    @settings(max_examples=100, deadline=None)
    @given(fraction=st.floats(min_value=0.01, max_value=0.5),
           outlier=st.floats(min_value=0.05, max_value=1.0))
    def test_bound_consistent_with_detector(self, fraction, outlier):
        """Property: an attacker just below the bound is not flagged, and one
        comfortably above it is — tying Expression 2 to Algorithm 1."""

        num_threads = 20
        num_attackers = max(1, int(round(fraction * num_threads)))
        num_benign = num_threads - num_attackers
        bound = max_attacker_score_ratio(num_attackers / num_threads, outlier)
        if math.isinf(bound):
            return
        benign_score = 100.0
        detector = SuspectDetector(threat_threshold=0.0,
                                   outlier_threshold=outlier)
        just_below = [benign_score * bound * 0.99] * num_attackers + \
                     [benign_score] * num_benign
        assert detector.evaluate(just_below).suspects == ()
        above = [benign_score * bound * 1.05] * num_attackers + \
                [benign_score] * num_benign
        decision = detector.evaluate(above)
        assert set(decision.suspects) == set(range(num_attackers))


class TestFigure5Series:
    def test_all_thresholds_present(self):
        analysis = SecurityAnalysis()
        data = analysis.figure5()
        assert len(data) == 10
        assert 0.65 in data

    def test_curves_capped(self):
        analysis = SecurityAnalysis()
        for values in analysis.figure5(cap=10.0).values():
            assert all(v <= 10.0 for v in values)

    def test_higher_outlier_threshold_gives_higher_curve(self):
        analysis = SecurityAnalysis()
        low = analysis.curve(0.05)
        high = analysis.curve(0.95)
        assert all(h >= l for h, l in zip(high, low))


class TestHardwareModel:
    def test_storage_matches_paper_inventory(self):
        model = HardwareCostModel(num_threads=4)
        # 2×32-bit scores + 16-bit activation counter + 2 flags = 82 bits.
        assert model.bits_per_thread() == 82
        assert model.total_bits() == 4 * 82

    def test_reference_area_reproduced(self):
        model = HardwareCostModel(num_threads=4, channels=1)
        report = model.report()
        assert report.area_mm2_per_channel == pytest.approx(0.000105, rel=1e-6)

    def test_area_fraction_of_xeon_is_tiny(self):
        report = HardwareCostModel(num_threads=4).report()
        assert report.xeon_area_fraction < 1e-5  # "near-zero area overhead"

    def test_latency_under_trrd(self):
        report = HardwareCostModel(num_threads=4).report()
        assert report.decision_latency_ns == pytest.approx(1 / 1.5, rel=1e-3)
        assert report.fits_under_trrd
        assert report.decision_latency_ns < report.trrd_ns

    def test_area_scales_with_threads_and_channels(self):
        small = HardwareCostModel(num_threads=4, channels=1).report()
        big = HardwareCostModel(num_threads=64, channels=4).report()
        assert big.area_mm2_total > small.area_mm2_total
        assert big.area_mm2_total == pytest.approx(
            small.area_mm2_total * 16 * 4, rel=1e-6)

    def test_ddr4_trrd_still_above_latency(self):
        model = HardwareCostModel(num_threads=4,
                                  device_config=DeviceConfig.ddr4_3200())
        assert model.report().fits_under_trrd

    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareCostModel(num_threads=0)
        with pytest.raises(ValueError):
            HardwareCostModel(channels=0)

    def test_report_dict(self):
        data = HardwareCostModel().report().as_dict()
        assert "area_mm2_total" in data and "pipeline_stages" in data

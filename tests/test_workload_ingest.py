"""External-trace ingestion: readers, catalog, spec wiring, end-to-end.

Contracts pinned here:

* the three reader front-ends (text, CSV, gzip-wrapped either) produce
  byte-identical columns for the same logical trace, and the ingested
  ``.rtrc`` round-trips through ``dump_columnar`` → ``load_columnar``
  (mmap and eager) unchanged;
* malformed input is rejected with the offending line number — never
  silently skipped, never a bare ``ValueError`` without location;
* the catalog is atomic and self-verifying: ``verify`` catches a flipped
  trace byte and a truncated manifest, re-ingesting unchanged input is a
  no-op, and a digest drift between fingerprint time and mix time warns
  and serves the current content;
* ``ExperimentSpec`` accepts ``ingest:<name> x4`` mixes, rejects unknown
  letters/names with the full menu (letters *and* ingested names), and
  folds catalog digests into the fingerprint — re-ingesting a modified
  source changes it, letter-only specs are unaffected;
* the new attacker letters (``S`` many-sided, ``X`` half-double) build
  distinct deterministic aggressor sets and are valid attack-mix cores;
* ``ingest_smoke``: one ingested trace drives ``Session.figure()``
  through serial, jobs=2, and the cluster backend bit-identically,
  cold and warm cache.
"""

from __future__ import annotations

import gzip
import json
import random

import pytest

from repro.api import ExperimentSpec, Session
from repro.api.cli import main
from repro.dram.config import DeviceConfig
from repro.workloads.attacker import (
    ATTACK_PATTERNS,
    AttackerConfig,
    aggressor_rows,
    generate_attacker_trace,
)
from repro.workloads.ingest import (
    CatalogError,
    IngestError,
    WORKLOAD_DIR_ENV,
    WorkloadCatalog,
    catalog_mix,
    detect_format,
    is_catalog_mix,
    parse_catalog_mix,
    read_trace,
)
from repro.workloads.mixes import ATTACKER_LETTERS, make_mix
from repro.cpu.trace import FLAG_BYPASS, FLAG_WRITE, Trace

TEXT = "2 L 0x100\n0 S 0x140 B\n# a comment line\n\n5 L 256\n"
CSV = "bubble,op,address,flags\n2,L,0x100,-\n0,S,0x140,B\n5,L,256,\n"


def write_variants(tmp_path):
    """The same logical trace in every on-disk encoding."""

    paths = {}
    paths["text"] = tmp_path / "t.trace"
    paths["text"].write_text(TEXT)
    paths["csv"] = tmp_path / "t.csv"
    paths["csv"].write_text(CSV)
    paths["text.gz"] = tmp_path / "t.trace.gz"
    with gzip.open(paths["text.gz"], "wt") as handle:
        handle.write(TEXT)
    paths["csv.gz"] = tmp_path / "t.csv.gz"
    with gzip.open(paths["csv.gz"], "wt") as handle:
        handle.write(CSV)
    return paths


def synthetic_lines(count: int, seed: int = 7):
    rng = random.Random(seed)
    lines = ["# synthetic ingest corpus"]
    for _ in range(count):
        op = "S" if rng.random() < 0.3 else "L"
        address = rng.randrange(0, 1 << 30) & ~0x3F
        flags = " B" if rng.random() < 0.05 else ""
        lines.append(f"{rng.randrange(0, 20)} {op} {hex(address)}{flags}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------- #
# Readers
# ---------------------------------------------------------------------- #
class TestReaders:
    def test_text_parses_ops_flags_and_comments(self, tmp_path):
        paths = write_variants(tmp_path)
        trace = read_trace(paths["text"])
        bubbles, addresses, flags = trace.columns
        assert list(bubbles) == [2, 0, 5]
        assert list(addresses) == [0x100, 0x140, 256]
        assert bytes(flags) == bytes(
            [0, FLAG_WRITE | FLAG_BYPASS, 0])
        assert trace.name == "t"
        assert trace.loop

    def test_all_encodings_byte_identical(self, tmp_path):
        paths = write_variants(tmp_path)
        reference = read_trace(paths["text"]).columns
        for key in ("csv", "text.gz", "csv.gz"):
            bubbles, addresses, flags = read_trace(paths[key]).columns
            assert list(bubbles) == list(reference[0]), key
            assert list(addresses) == list(reference[1]), key
            assert bytes(flags) == bytes(reference[2]), key

    def test_format_detection(self, tmp_path):
        paths = write_variants(tmp_path)
        assert detect_format(paths["text"]) == "text"
        assert detect_format(paths["csv"]) == "csv"
        assert detect_format(paths["csv.gz"]) == "csv"
        assert detect_format(paths["text.gz"]) == "text"

    @pytest.mark.parametrize("bad, needle", [
        ("2 L 0x100\nnot a line\n", "line 2"),
        ("x L 0x100\n", "line 1"),
        ("2 Q 0x100\n", "not L"),
        ("2 L zebra\n", "address"),
        ("-1 L 0x100\n", "bubble"),
        ("2 L 0x100 Z\n", "flag"),
        ("2 L\n", "expected"),
        ("", "no trace rows"),
        ("# only comments\n", "no trace rows"),
    ])
    def test_bad_text_rejected_with_location(self, tmp_path, bad, needle):
        path = tmp_path / "bad.trace"
        path.write_text(bad)
        with pytest.raises(IngestError) as info:
            read_trace(path)
        assert needle in str(info.value)
        assert "bad.trace" in str(info.value)

    def test_bad_csv_cell_count(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("bubble,op,address\n2,L\n")
        with pytest.raises(IngestError, match="line 2"):
            read_trace(path)

    def test_truncated_gzip_rejected(self, tmp_path):
        path = tmp_path / "trunc.trace.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(synthetic_lines(200))
        whole = path.read_bytes()
        path.write_bytes(whole[: len(whole) // 2])
        with pytest.raises(IngestError):
            read_trace(path)

    def test_round_trip_through_columnar_mmap(self, tmp_path):
        source = tmp_path / "rt.trace"
        source.write_text(synthetic_lines(500))
        trace = read_trace(source)
        dumped = tmp_path / "rt.rtrc"
        trace.dump_columnar(dumped)
        for mmap in (False, True):
            loaded = Trace.load_columnar(dumped, mmap=mmap)
            lb, la, lf = loaded.columns
            tb, ta, tf = trace.columns
            assert list(lb) == list(tb)
            assert list(la) == list(ta)
            assert bytes(lf) == bytes(tf)


# ---------------------------------------------------------------------- #
# Catalog
# ---------------------------------------------------------------------- #
class TestCatalog:
    def test_ingest_load_verify_drop(self, tmp_path):
        source = tmp_path / "w.trace"
        source.write_text(synthetic_lines(300))
        catalog = WorkloadCatalog(tmp_path / "catalog")
        entry = catalog.ingest(source, name="w")
        assert entry.entries == 300
        assert catalog.names() == ["w"]
        assert catalog.verify("w") == []
        loaded = catalog.load_trace("w", mmap=True)
        assert len(loaded) == 300
        characterization = dict(entry.characterization)
        assert characterization["distinct_rows"] > 0
        assert catalog.drop("w")
        assert catalog.names() == []
        assert not catalog.drop("w")

    def test_reingest_unchanged_is_noop(self, tmp_path):
        source = tmp_path / "w.trace"
        source.write_text(synthetic_lines(300))
        catalog = WorkloadCatalog(tmp_path / "catalog")
        first = catalog.ingest(source, name="w")
        mtime = catalog.trace_path("w").stat().st_mtime_ns
        again = catalog.ingest(source, name="w")
        assert again == first
        assert catalog.trace_path("w").stat().st_mtime_ns == mtime

    def test_verify_catches_flipped_trace_byte(self, tmp_path):
        source = tmp_path / "w.trace"
        source.write_text(synthetic_lines(300))
        catalog = WorkloadCatalog(tmp_path / "catalog")
        catalog.ingest(source, name="w")
        blob = bytearray(catalog.trace_path("w").read_bytes())
        blob[-1] ^= 0x01
        catalog.trace_path("w").write_bytes(bytes(blob))
        problems = catalog.verify("w")
        assert problems and any("digest" in p for p in problems)

    def test_verify_catches_truncated_manifest(self, tmp_path):
        source = tmp_path / "w.trace"
        source.write_text(synthetic_lines(300))
        catalog = WorkloadCatalog(tmp_path / "catalog")
        catalog.ingest(source, name="w")
        blob = catalog.manifest_path("w").read_bytes()
        catalog.manifest_path("w").write_bytes(blob[: len(blob) // 2])
        problems = catalog.verify("w")
        assert problems and any("manifest" in p for p in problems)

    def test_unknown_name_lists_available(self, tmp_path):
        source = tmp_path / "w.trace"
        source.write_text(synthetic_lines(100))
        catalog = WorkloadCatalog(tmp_path / "catalog")
        catalog.ingest(source, name="w")
        with pytest.raises(CatalogError, match="w"):
            catalog.entry("nope")

    def test_digest_mismatch_warns_and_serves_current(
            self, tmp_path, monkeypatch):
        source = tmp_path / "w.trace"
        source.write_text(synthetic_lines(100))
        catalog = WorkloadCatalog(tmp_path / "catalog")
        catalog.ingest(source, name="w")
        monkeypatch.setenv(WORKLOAD_DIR_ENV, str(tmp_path / "catalog"))
        with pytest.warns(UserWarning, match="changed since"):
            mix = catalog_mix("ingest:w x4", expected_digest="0" * 64)
        assert len(mix.traces) == 4

    def test_catalog_mix_offsets_cores(self, tmp_path, monkeypatch):
        source = tmp_path / "w.trace"
        source.write_text(synthetic_lines(100))
        catalog = WorkloadCatalog(tmp_path / "catalog")
        catalog.ingest(source, name="w")
        monkeypatch.setenv(WORKLOAD_DIR_ENV, str(tmp_path / "catalog"))
        mix = catalog_mix("ingest:w x4")
        assert [t.name for t in mix.traces] == [
            f"w#c{i}" for i in range(4)]
        assert mix.attacker_threads == []
        base_columns = [t.columns[1][0] for t in mix.traces]
        # Per-core address regions never alias.
        assert len(set(base_columns)) == 4

    def test_mix_grammar(self):
        assert parse_catalog_mix("ingest:gap-bfs x4") == ("gap-bfs", 4)
        assert parse_catalog_mix("ingest:w") == ("w", 1)
        assert parse_catalog_mix("MMLA") is None
        assert is_catalog_mix("ingest:w x4")
        assert not is_catalog_mix("HHLL")
        for bad in ("ingest:", "ingest: w", "ingest:w x0", "ingest:w y4"):
            with pytest.raises(CatalogError):
                parse_catalog_mix(bad)

    def test_no_catalog_configured_is_loud(self, monkeypatch):
        monkeypatch.delenv(WORKLOAD_DIR_ENV, raising=False)
        with pytest.raises(CatalogError, match=WORKLOAD_DIR_ENV):
            catalog_mix("ingest:w x4")


# ---------------------------------------------------------------------- #
# Spec validation + fingerprint folding
# ---------------------------------------------------------------------- #
class TestSpecIntegration:
    @pytest.fixture()
    def catalog_env(self, tmp_path, monkeypatch):
        source = tmp_path / "ext.trace"
        source.write_text(synthetic_lines(300))
        catalog = WorkloadCatalog(tmp_path / "catalog")
        catalog.ingest(source, name="ext")
        monkeypatch.setenv(WORKLOAD_DIR_ENV, str(tmp_path / "catalog"))
        return source, catalog

    def test_unknown_letter_lists_letters_and_names(self, catalog_env):
        with pytest.raises(ValueError) as info:
            ExperimentSpec.tiny(benign_mixes=("MMQZ",))
        message = str(info.value)
        assert "available letters" in message
        assert "ext" in message

    def test_unknown_letter_without_catalog(self, monkeypatch):
        monkeypatch.delenv(WORKLOAD_DIR_ENV, raising=False)
        with pytest.raises(ValueError, match="none"):
            ExperimentSpec.tiny(benign_mixes=("MMQZ",))

    def test_unknown_catalog_name_rejected(self, catalog_env):
        with pytest.raises(ValueError, match="no ingested workload"):
            ExperimentSpec.tiny(benign_mixes=("ingest:nope x4",))

    def test_catalog_mix_needs_catalog(self, monkeypatch):
        monkeypatch.delenv(WORKLOAD_DIR_ENV, raising=False)
        with pytest.raises(ValueError, match=WORKLOAD_DIR_ENV):
            ExperimentSpec.tiny(benign_mixes=("ingest:ext x4",))

    def test_catalog_mix_must_cover_cores(self, catalog_env):
        with pytest.raises(ValueError, match="x4"):
            ExperimentSpec.tiny(benign_mixes=("ingest:ext",))

    def test_ingested_mix_is_benign_only(self, catalog_env):
        with pytest.raises(ValueError, match="no attacker core"):
            ExperimentSpec.tiny(attack_mixes=("ingest:ext x4",))

    def test_new_attacker_letters_are_valid_attack_mixes(self):
        spec = ExperimentSpec.tiny(attack_mixes=("MMLS", "MMLX"))
        assert spec.attack_mixes == ("MMLS", "MMLX")

    def test_fingerprint_folds_catalog_digest(self, catalog_env):
        source, catalog = catalog_env
        plain = ExperimentSpec.tiny()
        spec = ExperimentSpec.tiny(
            benign_mixes=("MMLL", "ingest:ext x4"))
        before = spec.fingerprint()
        assert before != plain.fingerprint()
        # Re-ingest a modified source: the fingerprint must move.
        source.write_text(source.read_text() + "3 L 0x1000\n")
        catalog.ingest(source, name="ext")
        assert spec.fingerprint() != before
        # Letter-only specs never consult the catalog.
        assert plain.catalog_digests() == ()

    def test_letter_only_fingerprint_stable_without_catalog(
            self, monkeypatch):
        monkeypatch.delenv(WORKLOAD_DIR_ENV, raising=False)
        assert ExperimentSpec.tiny().fingerprint()


# ---------------------------------------------------------------------- #
# Attacker patterns (satellite: many-sided + half-double letters)
# ---------------------------------------------------------------------- #
class TestAttackPatterns:
    DEVICE = DeviceConfig.ddr5_4800(rows_per_bank=4096)

    def test_pattern_registry(self):
        assert set(ATTACK_PATTERNS) == {
            "double_sided", "many_sided", "half_double"}
        assert set(ATTACKER_LETTERS.values()) == set(ATTACK_PATTERNS)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError, match="pattern"):
            AttackerConfig(pattern="rowpress")

    def test_patterns_produce_distinct_rows(self):
        rows = {
            pattern: tuple(aggressor_rows(
                self.DEVICE, AttackerConfig(pattern=pattern)))
            for pattern in ATTACK_PATTERNS
        }
        assert len(set(rows.values())) == len(ATTACK_PATTERNS)

    def test_traces_deterministic(self):
        for pattern in ATTACK_PATTERNS:
            config = AttackerConfig(pattern=pattern, seed=3)
            one = generate_attacker_trace(self.DEVICE, config)
            two = generate_attacker_trace(self.DEVICE, config)
            assert list(one.columns[1]) == list(two.columns[1])

    def test_mix_letters_build_tagged_traces(self):
        names = {}
        for letter in ("A", "S", "X"):
            mix = make_mix(f"MML{letter}", seed=1,
                           entries_per_core=200, attacker_entries=300)
            assert len(mix.attacker_threads) == 1
            names[letter] = mix.traces[-1].name
        assert names == {"A": "attacker_1", "S": "attacker_ms_1",
                         "X": "attacker_hd_1"}

    def test_make_mix_unknown_letter_message(self):
        with pytest.raises(ValueError, match="ingest:"):
            make_mix("MMQZ", seed=1, entries_per_core=200,
                     attacker_entries=300)


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
class TestCli:
    def test_ingest_list_verify_drop(self, tmp_path, capsys):
        source = tmp_path / "cli.trace"
        source.write_text(synthetic_lines(150))
        directory = str(tmp_path / "catalog")
        assert main(["workloads", "ingest", str(source),
                     "--name", "cli", "--workload-dir", directory]) == 0
        out = capsys.readouterr().out
        assert "ingested cli" in out and "ingest:cli x4" in out
        assert main(["workloads", "list",
                     "--workload-dir", directory]) == 0
        assert "cli" in capsys.readouterr().out
        assert main(["workloads", "verify",
                     "--workload-dir", directory]) == 0
        assert "ok" in capsys.readouterr().out
        assert main(["workloads", "drop", "cli",
                     "--workload-dir", directory]) == 0
        assert main(["workloads", "drop", "cli",
                     "--workload-dir", directory]) == 1

    def test_verify_reports_corruption(self, tmp_path, capsys):
        source = tmp_path / "cli.trace"
        source.write_text(synthetic_lines(150))
        directory = tmp_path / "catalog"
        catalog = WorkloadCatalog(directory)
        catalog.ingest(source, name="cli")
        blob = bytearray(catalog.trace_path("cli").read_bytes())
        blob[-1] ^= 0x01
        catalog.trace_path("cli").write_bytes(bytes(blob))
        assert main(["workloads", "verify",
                     "--workload-dir", str(directory)]) == 1

    def test_bad_source_is_rc_one(self, tmp_path, capsys):
        source = tmp_path / "bad.trace"
        source.write_text("garbage here\n")
        assert main(["workloads", "ingest", str(source),
                     "--workload-dir", str(tmp_path / "c")]) == 1
        assert "line 1" in capsys.readouterr().err

    def test_no_catalog_is_loud(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv(WORKLOAD_DIR_ENV, raising=False)
        with pytest.raises(SystemExit):
            main(["workloads", "list"])


# ---------------------------------------------------------------------- #
# End-to-end: ingested trace through every execution backend
# ---------------------------------------------------------------------- #
@pytest.mark.ingest_smoke
class TestIngestSmoke:
    def test_serial_jobs_cluster_bit_identical(self, tmp_path, monkeypatch):
        source = tmp_path / "ext.trace"
        source.write_text(synthetic_lines(400))
        directory = str(tmp_path / "catalog")
        assert main(["workloads", "ingest", str(source),
                     "--name", "ext", "--workload-dir", directory]) == 0
        monkeypatch.setenv(WORKLOAD_DIR_ENV, directory)
        spec = ExperimentSpec.tiny(
            benign_mixes=("MMLL", "ingest:ext x4"))

        figures = {}
        for label, kwargs in (
                ("serial", dict(jobs=1)),
                ("jobs2", dict(jobs=2)),
                ("cluster", dict(backend="cluster", workers=2))):
            cache_dir = str(tmp_path / f"cache-{label}")
            with Session(spec, cache_dir=cache_dir, **kwargs) as cold:
                figures[label] = cold.figure("fig13").as_dict()
                assert cold.runs_executed > 0
            with Session(spec, cache_dir=cache_dir, **kwargs) as warm:
                assert warm.figure("fig13").as_dict() == figures[label]
                assert warm.runs_executed == 0
        assert figures["serial"] == figures["jobs2"] == figures["cluster"]

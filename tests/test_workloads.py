"""Tests for synthetic workload and attacker generation."""

import pytest

from repro.dram.address import AddressMapper, MappingScheme
from repro.dram.config import DeviceConfig
from repro.workloads.attacker import (
    AttackerConfig,
    aggressor_rows,
    generate_attacker_trace,
)
from repro.workloads.characteristics import (
    PAPER_TABLE3,
    average_row,
    characterize_suite,
    characterize_trace,
)
from repro.workloads.dma import DmaConfig, generate_dma_trace
from repro.workloads.mixes import (
    ATTACK_MIXES,
    BENIGN_MIXES,
    make_all_mixes,
    make_mix,
    mix_names,
    offset_trace,
)
from repro.workloads.synthetic import (
    BenignConfig,
    MemoryIntensity,
    generate_benign_trace,
    generate_intensity_trace,
)

DEVICE = DeviceConfig.ddr5_4800(rows_per_bank=4096)


class TestBenignGeneration:
    def test_trace_length_and_name(self):
        config = BenignConfig.for_intensity(MemoryIntensity.HIGH, entries=500)
        trace = generate_benign_trace(config, name="h0")
        assert len(trace) == 500
        assert trace.name == "h0"

    def test_reproducible_with_seed(self):
        a = generate_benign_trace(BenignConfig(seed=3, entries=200))
        b = generate_benign_trace(BenignConfig(seed=3, entries=200))
        assert [e.address for e in a] == [e.address for e in b]

    def test_different_seeds_differ(self):
        a = generate_benign_trace(BenignConfig(seed=1, entries=200))
        b = generate_benign_trace(BenignConfig(seed=2, entries=200))
        assert [e.address for e in a] != [e.address for e in b]

    def test_footprint_respected(self):
        config = BenignConfig(footprint_bytes=64 * 1024, entries=2000)
        trace = generate_benign_trace(config)
        assert max(e.address for e in trace) < 64 * 1024

    def test_intensity_ordering_memory_ratio(self):
        """H must be more memory-intensive than M, and M more than L."""

        def accesses_per_kiloinst(letter):
            trace = generate_intensity_trace(letter, entries=3000)
            return 1000 * trace.memory_accesses / trace.total_instructions

        assert accesses_per_kiloinst("H") > accesses_per_kiloinst("M")
        assert accesses_per_kiloinst("M") > accesses_per_kiloinst("L")

    def test_intensity_letter_parsing(self):
        assert MemoryIntensity.from_letter("h") is MemoryIntensity.HIGH
        with pytest.raises(ValueError):
            MemoryIntensity.from_letter("X")

    def test_benign_traces_are_cacheable(self):
        trace = generate_intensity_trace("M", entries=200)
        assert all(not e.bypass_cache for e in trace)


class TestAttackerGeneration:
    def test_attacker_targets_intended_rows(self):
        config = AttackerConfig(entries=2000, banks_used=4, rows_per_bank=2)
        trace = generate_attacker_trace(DEVICE, config)
        mapper = AddressMapper(DEVICE, MappingScheme.MOP)
        targets = set()
        for entry in trace:
            coord = mapper.map(entry.address)
            targets.add((coord.rank, coord.bank_group, coord.bank, coord.row))
        assert targets == set(aggressor_rows(DEVICE, config))

    def test_attacker_concentrates_on_few_rows(self):
        trace = generate_attacker_trace(DEVICE, AttackerConfig(entries=4000))
        stats = characterize_trace(trace, DEVICE)
        assert stats.distinct_rows <= 16
        assert stats.rows_over_128 >= 8

    def test_attacker_alternates_rows_within_bank(self):
        """Consecutive visits to a bank must target different rows
        (double-sided hammering forces an activation each time)."""

        config = AttackerConfig(entries=1000, banks_used=2, rows_per_bank=2)
        trace = generate_attacker_trace(DEVICE, config)
        mapper = AddressMapper(DEVICE, MappingScheme.MOP)
        last_row_by_bank = {}
        violations = 0
        for entry in trace:
            coord = mapper.map(entry.address)
            key = coord.bank_key
            if key in last_row_by_bank and last_row_by_bank[key] == coord.row:
                violations += 1
            last_row_by_bank[key] = coord.row
        assert violations == 0

    def test_attacker_bypasses_cache_by_default(self):
        trace = generate_attacker_trace(DEVICE, AttackerConfig(entries=100))
        assert all(e.bypass_cache for e in trace)

    def test_attacker_is_read_only_and_dense(self):
        trace = generate_attacker_trace(DEVICE, AttackerConfig(entries=100))
        assert all(not e.is_write for e in trace)
        assert all(e.bubble_count == 0 for e in trace)

    def test_validation(self):
        with pytest.raises(ValueError):
            AttackerConfig(banks_used=0)
        with pytest.raises(ValueError):
            AttackerConfig(columns_per_row=0)


class TestMixes:
    def test_canonical_mix_lists(self):
        assert len(BENIGN_MIXES) == 6
        assert len(ATTACK_MIXES) == 6
        assert mix_names(True) == ATTACK_MIXES
        assert mix_names(False) == BENIGN_MIXES

    def test_attack_mix_structure(self):
        mix = make_mix("HHMA", device=DEVICE, entries_per_core=500,
                       attacker_entries=500)
        assert mix.num_cores == 4
        assert mix.attacker_threads == [3]
        assert mix.benign_threads == [0, 1, 2]
        assert mix.has_attacker

    def test_benign_mix_has_no_attacker(self):
        mix = make_mix("MMLL", device=DEVICE, entries_per_core=500)
        assert not mix.has_attacker
        assert mix.benign_threads == [0, 1, 2, 3]

    def test_benign_cores_use_disjoint_address_regions(self):
        mix = make_mix("HHMM", device=DEVICE, entries_per_core=500,
                       region_bytes=1 << 26)
        ranges = []
        for trace in mix.traces:
            addresses = [e.address for e in trace]
            ranges.append((min(addresses), max(addresses)))
        for i in range(len(ranges)):
            for j in range(i + 1, len(ranges)):
                lo1, hi1 = ranges[i]
                lo2, hi2 = ranges[j]
                assert hi1 < lo2 or hi2 < lo1

    def test_seed_varies_benign_traces(self):
        mix_a = make_mix("MMLL", device=DEVICE, entries_per_core=300, seed=0)
        mix_b = make_mix("MMLL", device=DEVICE, entries_per_core=300, seed=1)
        assert [e.address for e in mix_a.traces[0]] != [
            e.address for e in mix_b.traces[0]
        ]

    def test_offset_trace_shifts_addresses(self):
        mix = make_mix("LLLL", device=DEVICE, entries_per_core=100)
        shifted = offset_trace(mix.traces[0], 4096)
        assert shifted[0].address == mix.traces[0][0].address + 4096

    def test_make_all_mixes(self):
        result = make_all_mixes(True, device=DEVICE, seeds=(0,),
                                entries_per_core=100, attacker_entries=100)
        assert set(result) == set(ATTACK_MIXES)
        assert all(len(v) == 1 for v in result.values())

    def test_dma_letter_places_stream_in_own_region(self):
        mix = make_mix("HDMA", device=DEVICE, entries_per_core=400,
                       attacker_entries=400, region_bytes=1 << 26)
        assert mix.attacker_threads == [3]  # D is not an attacker
        dma_trace = mix.traces[1]
        assert dma_trace.name == "D1_0"
        assert len(dma_trace) == 400
        # Every access bypasses the cache, and the stream lives in core 1's
        # region (disjoint from core 0's, like any benign process).
        assert all(entry.bypass_cache for entry in dma_trace)
        addresses = [entry.address for entry in dma_trace]
        assert min(addresses) >= 2 * (1 << 26)
        assert max(addresses) < 3 * (1 << 26)


class TestDmaGeneration:
    def test_streaming_bursts_and_write_mix(self):
        trace = generate_dma_trace(DmaConfig(entries=64, burst_lines=8,
                                             gap_bubbles=5, seed=1))
        assert len(trace) == 64
        # Intra-burst accesses are back to back; burst starts carry the gap.
        assert trace[0].bubble_count == 0
        assert trace[8].bubble_count == 5
        assert trace[9].bubble_count == 0
        # Consecutive accesses stream through adjacent cachelines.
        assert trace[1].address - trace[0].address == 64
        assert 0.0 < trace.write_fraction < 1.0

    def test_pure_fill_and_pure_copy_streams(self):
        fill = generate_dma_trace(DmaConfig(entries=32, write_fraction=1.0))
        copy = generate_dma_trace(DmaConfig(entries=32, write_fraction=0.0))
        assert fill.write_fraction == 1.0
        assert copy.write_fraction == 0.0

    def test_deterministic_from_seed(self):
        a = generate_dma_trace(DmaConfig(entries=100, seed=3))
        b = generate_dma_trace(DmaConfig(entries=100, seed=3))
        c = generate_dma_trace(DmaConfig(entries=100, seed=4))
        assert [e.address for e in a] == [e.address for e in b]
        assert [e.address for e in a] != [e.address for e in c]

    @pytest.mark.parametrize("bad", [
        dict(entries=0),
        dict(burst_lines=0),
        dict(cacheline_bytes=0),
        dict(gap_bubbles=-1),
        dict(buffer_bytes=32),
        dict(write_fraction=1.5),
    ], ids=["entries", "burst", "cacheline", "gap", "buffer", "writes"])
    def test_invalid_configs_rejected(self, bad):
        with pytest.raises(ValueError):
            DmaConfig(**bad)


class TestCharacterisation:
    def test_table3_shape(self):
        traces = [generate_intensity_trace(letter, entries=2000)
                  for letter in "HML"]
        rows = characterize_suite(traces, DEVICE)
        assert len(rows) == 3
        assert rows[0].rbmpki >= rows[-1].rbmpki  # sorted descending
        table_row = rows[0].as_row()
        assert set(table_row) == {"Workload", "RBMPKI", "ACT-512+",
                                  "ACT-128+", "ACT-64+"}

    def test_attacker_has_hot_rows_in_table3_sense(self):
        trace = generate_attacker_trace(DEVICE, AttackerConfig(entries=16000))
        stats = characterize_trace(trace, DEVICE)
        assert stats.rows_over_512 >= 1
        assert stats.rows_over_128 >= 8

    def test_average_row(self):
        traces = [generate_intensity_trace("M", entries=1000, seed=s)
                  for s in range(3)]
        rows = characterize_suite(traces, DEVICE)
        avg = average_row(rows)
        assert avg["Workload"] == "Average"
        assert avg["RBMPKI"] > 0
        with pytest.raises(ValueError):
            average_row([])

    def test_paper_reference_rows_present(self):
        assert any(r["Workload"] == "429.mcf" for r in PAPER_TABLE3)
        assert len(PAPER_TABLE3) == 8

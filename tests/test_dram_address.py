"""Tests for physical-address to DRAM-coordinate mapping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.address import AddressMapper, DramAddress, MappingScheme
from repro.dram.config import DeviceConfig


@pytest.fixture(params=list(MappingScheme))
def mapper(request):
    return AddressMapper(DeviceConfig.tiny(), request.param)


class TestMappingBasics:
    def test_coordinates_within_bounds(self, mapper):
        cfg = mapper.config
        for line in range(0, 4096, 7):
            coord = mapper.map(line * cfg.cacheline_bytes)
            assert 0 <= coord.channel < cfg.channels
            assert 0 <= coord.rank < cfg.ranks
            assert 0 <= coord.bank_group < cfg.bank_groups
            assert 0 <= coord.bank < cfg.banks_per_group
            assert 0 <= coord.row < cfg.rows_per_bank
            assert 0 <= coord.column < cfg.cachelines_per_row

    def test_same_address_maps_identically(self, mapper):
        assert mapper.map(0x1234 * 64) == mapper.map(0x1234 * 64)

    def test_sub_line_offsets_map_to_same_line(self, mapper):
        assert mapper.map(128) == mapper.map(128 + 63)

    def test_address_for_row_round_trip(self, mapper):
        cfg = mapper.config
        address = mapper.address_for_row(0, 0, 1, 1, 17, column=3)
        coord = mapper.map(address)
        assert coord.rank == 0
        assert coord.bank_group == 1
        assert coord.bank == 1
        assert coord.row == 17

    def test_row_key_and_bank_key(self):
        coord = DramAddress(0, 1, 2, 1, 33, 4)
        assert coord.bank_key == (0, 1, 2, 1)
        assert coord.row_key == (0, 1, 2, 1, 33)


class TestMopProperties:
    def test_mop_keeps_consecutive_lines_in_same_row(self):
        cfg = DeviceConfig.tiny()
        mapper = AddressMapper(cfg, MappingScheme.MOP, mop_lines=4)
        coords = [mapper.map(i * cfg.cacheline_bytes) for i in range(4)]
        rows = {c.row_key for c in coords}
        assert len(rows) == 1  # one MOP block stays in one row

    def test_mop_spreads_blocks_across_banks(self):
        cfg = DeviceConfig.tiny()
        mapper = AddressMapper(cfg, MappingScheme.MOP, mop_lines=4)
        coords = [mapper.map(i * 4 * cfg.cacheline_bytes) for i in range(8)]
        banks = {c.bank_key for c in coords}
        assert len(banks) > 1

    def test_row_interleaved_fills_row_before_switching(self):
        cfg = DeviceConfig.tiny()
        mapper = AddressMapper(cfg, MappingScheme.ROW_INTERLEAVED)
        lines = cfg.cachelines_per_row
        coords = [mapper.map(i * cfg.cacheline_bytes) for i in range(lines)]
        assert len({c.row_key for c in coords}) == 1

    def test_bank_interleaved_alternates_banks(self):
        cfg = DeviceConfig.tiny()
        mapper = AddressMapper(cfg, MappingScheme.BANK_INTERLEAVED)
        c0 = mapper.map(0)
        c1 = mapper.map(cfg.cacheline_bytes)
        assert c0.bank_key != c1.bank_key


@settings(max_examples=200, deadline=None)
@given(line=st.integers(min_value=0, max_value=10 ** 7),
       scheme=st.sampled_from(list(MappingScheme)))
def test_map_reverse_is_bijective(line, scheme):
    """reverse(map(addr)) must reproduce the address's cacheline (property)."""

    cfg = DeviceConfig.tiny()
    mapper = AddressMapper(cfg, scheme)
    total_lines = cfg.capacity_bytes // cfg.cacheline_bytes
    line = line % total_lines
    address = line * cfg.cacheline_bytes
    coord = mapper.map(address)
    assert mapper.reverse(coord) == address


@settings(max_examples=100, deadline=None)
@given(
    rank=st.integers(min_value=0, max_value=0),
    bank_group=st.integers(min_value=0, max_value=1),
    bank=st.integers(min_value=0, max_value=1),
    row=st.integers(min_value=0, max_value=255),
    column=st.integers(min_value=0, max_value=7),
    scheme=st.sampled_from(list(MappingScheme)),
)
def test_address_for_row_targets_requested_row(rank, bank_group, bank, row,
                                               column, scheme):
    """address_for_row must land on the requested (bank, row) (property)."""

    cfg = DeviceConfig.tiny()
    mapper = AddressMapper(cfg, scheme)
    address = mapper.address_for_row(0, rank, bank_group, bank, row, column)
    coord = mapper.map(address)
    assert (coord.rank, coord.bank_group, coord.bank, coord.row) == (
        rank, bank_group, bank, row
    )

"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cpu.trace import Trace, TraceEntry
from repro.dram.config import DeviceConfig
from repro.sim.config import SimulationConfig, SystemConfig


@pytest.fixture()
def tiny_device() -> DeviceConfig:
    """A small DRAM geometry for fast unit tests."""

    return DeviceConfig.tiny()


@pytest.fixture()
def ddr5_device() -> DeviceConfig:
    """The paper's DDR5 configuration with a reduced row count."""

    return DeviceConfig.ddr5_4800(rows_per_bank=1024)


@pytest.fixture()
def fast_system_config() -> SystemConfig:
    """A scaled system configuration used by integration tests."""

    return SystemConfig.fast_profile(sim_cycles=8_000)


@pytest.fixture()
def short_sim_config() -> SimulationConfig:
    return SimulationConfig(max_cycles=8_000)


def make_simple_trace(addresses, bubble: int = 2, name: str = "t",
                      loop: bool = True) -> Trace:
    """Helper to build a read-only trace from a list of addresses."""

    return Trace(
        [TraceEntry(bubble, addr) for addr in addresses], name=name, loop=loop
    )


@pytest.fixture()
def simple_trace_factory():
    return make_simple_trace

"""Examples smoke: every ``examples/*.py`` runs through the CLI path.

``pytest -m examples_smoke`` executes each bundled example script in a
subprocess at tiny scale (``REPRO_EXAMPLE_SCALE=tiny``), exactly the way
``python -m repro.api examples --scale tiny`` does — so the examples, the
``repro.api`` surface they demonstrate, and the CLI example runner are all
covered inside tier-1 time.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api.cli import EXAMPLE_SCALE_ENV, _examples_dir, run_examples

pytestmark = pytest.mark.examples_smoke

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_discovered():
    assert _examples_dir() == EXAMPLES_DIR
    names = {script.name for script in SCRIPTS}
    assert "quickstart.py" in names
    assert len(SCRIPTS) >= 4


@pytest.mark.parametrize("script", SCRIPTS, ids=[s.stem for s in SCRIPTS])
def test_example_runs_at_tiny_scale(script):
    env = dict(os.environ, **{EXAMPLE_SCALE_ENV: "tiny"})
    proc = subprocess.run(
        [sys.executable, str(script)],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed at tiny scale:\n"
        f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{script.name} printed nothing"


def test_cli_example_runner_succeeds(capsys, tmp_path):
    # Drive the runner over a one-example directory: the parametrized
    # test above already executes every bundled example, so re-running
    # the full set here would only duplicate that wall-clock.
    single = tmp_path / "examples"
    single.mkdir()
    single.joinpath("quickstart.py").write_text(
        (EXAMPLES_DIR / "quickstart.py").read_text(encoding="utf-8"),
        encoding="utf-8",
    )
    assert run_examples(scale="tiny", examples_dir=single) == 0
    out = capsys.readouterr().out
    assert "1/1 examples succeeded" in out


def test_cli_example_runner_reports_missing_directory(tmp_path):
    assert run_examples(scale="tiny", examples_dir=tmp_path / "void") == 1

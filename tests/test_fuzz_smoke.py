"""Fixed-seed differential-fuzz corpus (``pytest -m fuzz_smoke``).

The corpus replayed here is ``repro.testing.scenarios.fuzz_corpus()`` — 30
deterministic scenarios spanning every registered mitigation mechanism,
single- to four-core mixes with attacker and DMA-style traffic, both rank
geometries, every scheduler policy, and warmup / instruction-limit
combinations.  Each scenario must produce bit-identical results under the
``cycle`` reference and every engine of its ``check_engines`` tuple (the
sampler rotates ``batch`` in; the fixed ``batch_corpus`` checks both
``fast`` and ``batch``); a harness-shaped batch must additionally be
bit-identical under serial and process-pool (``jobs=2``) sweep execution,
and lockstep-batched runs must match solo runs lane for lane.

A failure prints a minimised, paste-able reproduction (see
``repro.testing.fuzz.shrink``); long offline campaigns run through
``python -m repro.testing.fuzz`` (ROADMAP.md "Validating engines").
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.mitigations.registry import PAIRED_MECHANISMS
from repro.testing.fuzz import (
    batch_differential,
    executor_differential,
    repro_snippet,
    run_differential,
    shrink,
)
from repro.testing.scenarios import (
    FUZZ_MECHANISMS,
    Scenario,
    batch_corpus,
    executor_corpus,
    fuzz_corpus,
    generate_scenarios,
    simplifications,
)

pytestmark = pytest.mark.fuzz_smoke

CORPUS = fuzz_corpus()


class TestCorpusShape:
    """The corpus really spans the space the contract claims to cover."""

    def test_size_and_mechanism_coverage(self):
        assert len(CORPUS) >= 30
        mechanisms = {scenario.mechanism for scenario in CORPUS}
        assert set(PAIRED_MECHANISMS) <= mechanisms  # all eight paired
        assert {"none", "blockhammer"} <= mechanisms

    def test_dimension_coverage(self):
        assert any("A" in s.mix for s in CORPUS)
        assert any("D" in s.mix for s in CORPUS)
        assert any(len(s.mix) == 1 for s in CORPUS)
        assert any(len(s.mix) == 4 for s in CORPUS)
        assert {s.ranks for s in CORPUS} == {1, 2}
        assert any(s.warmup_cycles for s in CORPUS)
        assert any(s.instruction_limit for s in CORPUS)
        assert any(s.breakhammer for s in CORPUS)
        assert len({s.scheduler for s in CORPUS}) >= 2

    def test_mitigation_kwargs_coverage(self):
        """Mechanism internals are fuzzed for every mechanism with a pool."""

        from repro.testing.scenarios import MITIGATION_KWARG_POOLS

        sampled = {s.mechanism for s in CORPUS if s.mitigation_kwargs}
        assert sampled == set(MITIGATION_KWARG_POOLS)
        # Overrides stay harness-external: the executor differential only
        # replays registry-default grid points.
        assert all(not s.harness_shaped() for s in CORPUS
                   if s.mitigation_kwargs)

    def test_generation_is_deterministic(self):
        assert fuzz_corpus() == CORPUS
        assert generate_scenarios(1, 5) == generate_scenarios(1, 5)
        assert generate_scenarios(1, 5) != generate_scenarios(2, 5)

    def test_engine_rotation_coverage(self):
        """The tri-engine contract is enforced, sampled and fixed alike."""

        engines = {s.check_engines for s in CORPUS}
        # Sampler rotation: every third sampled scenario checks batch.
        assert ("batch",) in engines and ("fast",) in engines
        # The fixed batch corpus checks both engines per scenario and
        # spans scalar-fallback lanes and the multi-seed axis.
        batch = batch_corpus()
        assert all(s.check_engines == ("fast", "batch") for s in batch)
        assert any(s.scheduler != "frfcfs_cap" for s in batch)
        assert any(s.mechanism == "blockhammer" for s in batch)
        assert any(s.extra_seeds for s in batch)
        assert any(s.warmup_cycles for s in batch)
        assert any(s.instruction_limit for s in batch)


@pytest.mark.parametrize(
    "scenario", CORPUS, ids=[s.label for s in CORPUS]
)
def test_engines_bit_identical(scenario):
    report = run_differential(scenario)
    assert report.identical, report.summary()


def test_batched_vs_solo_bit_identical():
    """One heterogeneous lockstep batch must match solo runs lane for lane.

    The corpus expands its multi-seed scenarios into extra lanes, so this
    also pins the seed axis under batching — the shape the sweep layer's
    batch admission produces.
    """

    assert batch_differential(batch_corpus()) == []


def test_serial_vs_process_pool_bit_identical():
    """jobs=1 vs jobs=2 over the harness-shaped executor corpus."""

    scenarios = executor_corpus()
    assert all(s.harness_shaped() for s in scenarios)
    mismatches = executor_differential(scenarios, jobs=2)
    assert mismatches == []


def test_executor_differential_tolerates_duplicate_scenarios():
    """Campaigns can sample the same grid point twice; results must still
    pair each scenario with its own run (submit_grid deduplicates)."""

    base = executor_corpus()[:2]
    mismatches = executor_differential([*base, base[0]], jobs=2)
    assert mismatches == []


class TestShrinker:
    """The shrinker minimises against an injected failure predicate."""

    def _scenario(self) -> Scenario:
        return Scenario(
            seed=1, mix="HMDA", mechanism="prac", nrh=64, breakhammer=True,
            sim_cycles=1_600, warmup_cycles=400, instruction_limit=500,
        )

    def test_greedy_minimisation(self):
        def still_fails(candidate: Scenario) -> bool:
            return "A" in candidate.mix and candidate.sim_cycles >= 800

        minimal = shrink(self._scenario(), still_fails)
        # Local minimum: the attacker core and the cycle floor survive,
        # every other dimension is stripped.
        assert minimal.mix == "A"
        assert minimal.sim_cycles == 800
        assert minimal.warmup_cycles == 0
        assert minimal.instruction_limit is None
        assert not minimal.breakhammer
        assert still_fails(minimal)
        assert not any(
            still_fails(candidate) for candidate in simplifications(minimal)
        )

    def test_shrink_keeps_scenario_when_nothing_simpler_fails(self):
        scenario = self._scenario()
        assert shrink(scenario, lambda s: s == scenario) == scenario

    def test_repro_snippet_round_trips(self):
        scenario = replace(self._scenario(), instruction_limit=None)
        snippet = repro_snippet(scenario)
        namespace: dict = {}
        # The snippet's scenario line must evaluate back to the scenario.
        scenario_line = next(
            line for line in snippet.splitlines()
            if line.startswith("scenario = ")
        )
        exec(scenario_line, {"Scenario": Scenario}, namespace)
        assert namespace["scenario"] == scenario


def test_mechanism_rotation_guarantees_coverage():
    scenarios = generate_scenarios(seed=9, count=len(FUZZ_MECHANISMS))
    assert {s.mechanism for s in scenarios} == set(FUZZ_MECHANISMS)

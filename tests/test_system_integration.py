"""End-to-end integration tests: the full system reproduces the paper's
qualitative behaviour on small inputs.

These tests exercise the headline claims:

* C2a — a hammering thread triggers many preventive actions and degrades
  benign performance; BreakHammer identifies and throttles it and benign
  performance recovers;
* C3  — with only benign applications BreakHammer does not hurt performance
  and (almost) never throttles anyone;
* the BlockHammer comparison point blocks activations at low N_RH.
"""

import pytest

from repro.sim.config import SimulationConfig, SystemConfig
from repro.sim.simulator import Simulator, run_simulation
from repro.sim.system import System
from repro.workloads.attacker import AttackerConfig
from repro.workloads.mixes import make_mix

CYCLES = 12_000


def build(mechanism, nrh, breakhammer, mix_name="HHMA", cycles=CYCLES,
          seed=0):
    config = SystemConfig.fast_profile(
        mitigation=mechanism, nrh=nrh, breakhammer_enabled=breakhammer,
        sim_cycles=cycles,
    )
    mix = make_mix(
        mix_name, device=config.device, entries_per_core=3000,
        attacker_entries=6000, seed=seed,
        attacker_config=AttackerConfig(entries=6000, seed=seed),
    )
    simulator = Simulator(config, mix.traces,
                          SimulationConfig(max_cycles=cycles),
                          attacker_threads=mix.attacker_threads)
    return simulator, mix


def benign_ipc(stats, mix):
    return sum(stats.ipc_by_thread[t] for t in mix.benign_threads)


class TestSystemConstruction:
    def test_trace_count_must_match_cores(self):
        config = SystemConfig.fast_profile()
        mix = make_mix("HH", device=config.device, entries_per_core=100)
        with pytest.raises(ValueError):
            System(config.with_(num_cores=4), mix.traces)

    def test_breakhammer_wired_as_observer_and_quota_driver(self):
        config = SystemConfig.fast_profile(mitigation="para", nrh=64,
                                           breakhammer_enabled=True)
        mix = make_mix("LLLA", device=config.device, entries_per_core=100,
                       attacker_entries=100)
        system = System(config, mix.traces)
        assert system.breakhammer is not None
        assert system.breakhammer in system.controller.observers
        assert system.breakhammer.throttler.full_quota == config.mshr_entries

    def test_rega_adjusts_device_timing(self):
        config = SystemConfig.fast_profile(mitigation="rega", nrh=64)
        mix = make_mix("LLLL", device=config.device, entries_per_core=100)
        system = System(config, mix.traces)
        assert system.device.timings.trc > config.device.timings.trc

    def test_run_simulation_wrapper(self):
        config = SystemConfig.fast_profile()
        mix = make_mix("LLLL", device=config.device, entries_per_core=200)
        result = run_simulation(config, mix.traces,
                                SimulationConfig(max_cycles=2000))
        assert result.stats.cycles == 2000
        assert result.stats.total_instructions > 0


class TestAttackScenario:
    @pytest.fixture(scope="class")
    def runs(self):
        """One attack mix, RFM at a low threshold, with and without BH."""

        results = {}
        for bh in (False, True):
            simulator, mix = build("rfm", nrh=256, breakhammer=bh)
            results[bh] = (simulator.run().stats, mix)
        return results

    def test_attacker_triggers_preventive_actions(self, runs):
        stats, _ = runs[False]
        assert stats.preventive_actions > 50

    def test_attacker_dominates_activations(self, runs):
        stats, mix = runs[False]
        attacker = mix.attacker_threads[0]
        attacker_acts = stats.activations_by_thread.get(attacker, 0)
        benign_max = max(
            stats.activations_by_thread.get(t, 0) for t in mix.benign_threads
        )
        assert attacker_acts > benign_max

    def test_breakhammer_identifies_and_throttles_attacker(self, runs):
        stats, mix = runs[True]
        attacker = mix.attacker_threads[0]
        bh_stats = stats.breakhammer_stats["stats"]
        assert bh_stats["suspects_by_thread"].get(attacker, 0) >= 1
        throttler = stats.breakhammer_stats["throttler"]
        assert throttler["threads"][attacker]["times_throttled"] >= 1

    def test_breakhammer_improves_benign_performance(self, runs):
        base_stats, mix = runs[False]
        bh_stats, _ = runs[True]
        assert benign_ipc(bh_stats, mix) > benign_ipc(base_stats, mix)

    def test_breakhammer_reduces_attacker_progress(self, runs):
        base_stats, mix = runs[False]
        bh_stats, _ = runs[True]
        attacker = mix.attacker_threads[0]
        assert bh_stats.activations_by_thread.get(attacker, 0) < \
            base_stats.activations_by_thread.get(attacker, 0)

    def test_breakhammer_reduces_preventive_actions_per_useful_work(self, runs):
        """Throttling the attacker lets benign threads run faster, so the
        absolute action count may not fall in a fixed-cycle window; the
        paper-relevant quantity is preventive work per unit of benign
        progress, which must drop."""

        base_stats, mix = runs[False]
        bh_stats, _ = runs[True]

        def actions_per_benign_kiloinstruction(stats):
            benign_insts = sum(
                stats.instructions_by_thread[t] for t in mix.benign_threads
            )
            return 1000.0 * stats.preventive_actions / max(1, benign_insts)

        assert actions_per_benign_kiloinstruction(bh_stats) < \
            actions_per_benign_kiloinstruction(base_stats)

    def test_energy_not_increased_by_breakhammer(self, runs):
        base_stats, _ = runs[False]
        bh_stats, _ = runs[True]
        assert bh_stats.energy_mj <= base_stats.energy_mj * 1.05


class TestBenignScenario:
    @pytest.fixture(scope="class")
    def runs(self):
        results = {}
        for bh in (False, True):
            simulator, mix = build("graphene", nrh=1024, breakhammer=bh,
                                   mix_name="MMLL")
            results[bh] = (simulator.run().stats, mix)
        return results

    def test_no_attacker_no_meaningful_throttling(self, runs):
        stats, _ = runs[True]
        throttler = stats.breakhammer_stats["throttler"]
        throttled_windows = sum(
            t["windows_as_suspect"] for t in throttler["threads"]
        )
        assert throttled_windows <= 2  # paper: benign false positives are rare

    def test_benign_performance_not_degraded(self, runs):
        base_stats, mix = runs[False]
        bh_stats, _ = runs[True]
        assert benign_ipc(bh_stats, mix) >= 0.93 * benign_ipc(base_stats, mix)

    def test_all_cores_make_progress(self, runs):
        stats, mix = runs[False]
        for thread in mix.benign_threads:
            assert stats.instructions_by_thread[thread] > 100


class TestMitigationOverheadTrend:
    def test_rfm_overhead_grows_as_nrh_decreases(self):
        """Fig. 2 trend: lower N_RH → more preventive work → lower IPC."""

        ipcs = {}
        actions = {}
        for nrh in (4096, 64):
            simulator, mix = build("rfm", nrh=nrh, breakhammer=False)
            stats = simulator.run().stats
            ipcs[nrh] = benign_ipc(stats, mix)
            actions[nrh] = stats.preventive_actions
        assert actions[64] > actions[4096]
        assert ipcs[64] < ipcs[4096]

    def test_blockhammer_blocks_attacker_at_low_nrh(self):
        simulator, mix = build("blockhammer", nrh=64, breakhammer=False)
        stats = simulator.run().stats
        assert stats.blocked_activations > 0

    def test_instruction_limit_terminates_early(self):
        config = SystemConfig.fast_profile()
        mix = make_mix("LLLL", device=config.device, entries_per_core=200)
        simulator = Simulator(
            config, mix.traces,
            SimulationConfig(max_cycles=50_000, instruction_limit=500),
        )
        result = simulator.run()
        assert result.finished_by_instruction_limit
        assert result.stats.cycles < 50_000

"""RunCache integrity: torn, truncated, and corrupted entries are misses.

The on-disk cache is shared by parallel sweep workers and repeat
invocations; a crashing host or a partially synced filesystem can leave an
entry file in *any* byte state.  The contract pinned here: ``get`` never
raises and never serves damaged data — the frame check (magic + length +
CRC32) classifies the entry as a miss, the dead file is removed, and a
recompute + ``put`` atomically restores it.
"""

from __future__ import annotations

import dataclasses
import struct

import pytest

from repro.analysis.runcache import (
    CACHE_FORMAT_VERSION,
    RunCache,
    frame_payload,
    unframe_payload,
)
from repro.sim.stats import RunStatistics

KEY = ("MMLA", 0, "para", 64, True, 800, 1_000, 2_000, "fast")


def make_stats() -> RunStatistics:
    return RunStatistics(
        cycles=1_234,
        ipc_by_thread={0: 1.5, 1: 0.25},
        read_latencies=[10, 22, 31],
        activations=77,
    )


@pytest.fixture()
def cache(tmp_path) -> RunCache:
    return RunCache(tmp_path, "fingerprint")


class TestFrame:
    def test_round_trip(self):
        payload = b"hello payload"
        assert unframe_payload(frame_payload(payload)) == payload

    def test_rejects_truncation_everywhere(self):
        framed = frame_payload(b"x" * 64)
        for cut in range(len(framed)):
            assert unframe_payload(framed[:cut]) is None

    def test_rejects_flipped_payload_byte(self):
        framed = bytearray(frame_payload(b"y" * 32))
        framed[-1] ^= 0xFF
        assert unframe_payload(bytes(framed)) is None

    def test_rejects_foreign_magic(self):
        framed = b"NOPE" + frame_payload(b"z")[4:]
        assert unframe_payload(framed) is None

    def test_rejects_trailing_garbage(self):
        assert unframe_payload(frame_payload(b"q") + b"extra") is None


class TestCorruptEntries:
    def test_partial_write_is_a_miss_then_recomputed(self, cache):
        """The satellite scenario: a torn write followed by recovery."""

        stats = make_stats()
        cache.put(KEY, stats)
        path = cache._path(KEY)
        intact = path.read_bytes()
        # Inject a partial write: the first half of the entry only, as a
        # crashed non-atomic writer (or torn network filesystem) leaves it.
        path.write_bytes(intact[: len(intact) // 2])

        assert cache.get(KEY) is None
        assert cache.misses == 1
        assert cache.corrupt_entries == 1
        assert not path.exists()  # the dead entry was removed

        # Recompute + atomic rewrite restores the entry.
        cache.put(KEY, stats)
        reloaded = cache.get(KEY)
        assert reloaded is not None
        assert dataclasses.asdict(reloaded) == dataclasses.asdict(stats)

    @pytest.mark.parametrize("damage", [
        b"",  # zero-length file (crash between create and write)
        b"\x00" * 7,  # shorter than the frame header
        b"garbage that is not a cache entry at all........",
        struct.pack("<4sIQ", b"RCHE", 0, 10) + b"short",  # length lies
    ], ids=["empty", "short-header", "garbage", "bad-length"])
    def test_damaged_entry_shapes_are_misses(self, cache, damage):
        cache.put(KEY, make_stats())
        path = cache._path(KEY)
        path.write_bytes(damage)
        assert cache.get(KEY) is None
        assert cache.corrupt_entries == 1

    def test_crc_catches_silent_bit_flip(self, cache):
        cache.put(KEY, make_stats())
        path = cache._path(KEY)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x01  # one flipped bit inside the payload
        path.write_bytes(bytes(data))
        assert cache.get(KEY) is None
        assert cache.corrupt_entries == 1

    def test_intact_frame_with_undecodable_payload_is_a_miss(self, cache):
        path = cache._path(KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        # A perfectly framed payload that is not a RunStatistics pickle.
        path.write_bytes(frame_payload(b"not a pickle"))
        assert cache.get(KEY) is None

    def test_intact_entry_hits_and_survives(self, cache):
        stats = make_stats()
        cache.put(KEY, stats)
        assert cache.get(KEY) is not None
        assert cache.hits == 1
        assert cache.misses == 0
        assert cache.corrupt_entries == 0

    def test_corruption_counts_surface_in_stats(self, cache):
        cache.put(KEY, make_stats())
        cache._path(KEY).write_bytes(b"junk")
        cache.get(KEY)
        assert cache.stats()["corrupt_entries"] == 1

    def test_format_version_namespaces_entries(self, tmp_path):
        """Framed entries live under a v2 namespace: caches written by the
        unframed v1 format can never be read (or aliased) by this code."""

        cache = RunCache(tmp_path, "abc123")
        assert cache.fingerprint == f"v{CACHE_FORMAT_VERSION}-abc123"
        assert CACHE_FORMAT_VERSION >= 2

"""Tests for ``repro.service`` — the always-on experiment server.

Layers, bottom up: the TTL/LRU figure cache and the BreakHammer-style
quota manager as pure units (deterministic fake clocks); the
:class:`ExperimentService` application surface directly; and the real
HTTP daemon + client (``service_smoke`` marker) — including the
acceptance contracts: N concurrent clients hammering one figure get
bit-identical dicts to a direct :class:`~repro.api.Session` with the
executor run counter proving all but the first request were cache hits,
and a client exceeding its quota gets 429 + ``Retry-After`` while an
innocent client's job completes.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.analysis.runcache import RunCache
from repro.api import ExperimentSpec, Session
from repro.service import (
    ApiError,
    ExperimentService,
    QuotaManager,
    QuotaPolicy,
    ServiceClient,
    TTLCache,
    start_service,
)
from repro.service.client import ServiceError
from repro.service.client import Throttled as ClientThrottled
from repro.service.jobs import JobRegistry
from repro.service.quotas import (
    BURST_ENV,
    MAX_OUTSTANDING_ENV,
    RATE_ENV,
)

TINY = {"profile": "tiny"}

#: Quota policy that admits one cold sweep and then throttles: the bucket
#: holds one (clamped) charge and refills ~never on test time scales.
STINGY = QuotaPolicy(rate=1e-9, burst=1e-6, max_outstanding=4)


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------- #
# TTL cache
# ---------------------------------------------------------------------- #
class TestTTLCache:
    def test_put_get_roundtrip_and_isolation(self):
        cache = TTLCache(ttl=10.0)
        value = {"series": {"a": [1.0, 2.0]}}
        cache.put(("fp", "fig8"), value)
        value["series"]["a"].append(3.0)  # caller mutation after put
        first = cache.get(("fp", "fig8"))
        assert first == {"series": {"a": [1.0, 2.0]}}
        first["series"]["a"].clear()  # caller mutation after get
        assert cache.get(("fp", "fig8")) == {"series": {"a": [1.0, 2.0]}}

    def test_expiry_counts_and_misses(self):
        clock = FakeClock()
        cache = TTLCache(ttl=5.0, clock=clock)
        cache.put("k", 1)
        assert cache.get("k") == 1
        clock.advance(5.0)
        assert cache.get("k") is None
        assert cache.expirations == 1
        assert cache.misses == 1
        assert len(cache) == 0

    def test_lru_eviction_order(self):
        cache = TTLCache(ttl=100.0, max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a: b is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_invalidate_and_clear(self):
        cache = TTLCache(ttl=100.0)
        cache.put("a", 1)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_stats_hit_rate(self):
        cache = TTLCache(ttl=100.0)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["entries"] == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="ttl"):
            TTLCache(ttl=0.0)
        with pytest.raises(ValueError, match="max_entries"):
            TTLCache(max_entries=0)


# ---------------------------------------------------------------------- #
# Quotas
# ---------------------------------------------------------------------- #
class TestQuotaPolicy:
    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(RATE_ENV, "2.5")
        monkeypatch.setenv(BURST_ENV, "7.0")
        monkeypatch.setenv(MAX_OUTSTANDING_ENV, "2")
        policy = QuotaPolicy.from_env()
        assert (policy.rate, policy.burst, policy.max_outstanding) == \
            (2.5, 7.0, 2)
        # Explicit overrides beat the environment.
        assert QuotaPolicy.from_env(burst=1.0).burst == 1.0

    def test_from_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(RATE_ENV, "fast")
        with pytest.raises(ValueError, match=RATE_ENV):
            QuotaPolicy.from_env()

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            QuotaPolicy(rate=0.0)
        with pytest.raises(ValueError, match="burst"):
            QuotaPolicy(burst=-1.0)
        with pytest.raises(ValueError, match="max_outstanding"):
            QuotaPolicy(max_outstanding=0)


class TestQuotaManager:
    def manager(self, **policy):
        clock = FakeClock()
        defaults = dict(rate=1.0, burst=10.0, max_outstanding=2)
        defaults.update(policy)
        return QuotaManager(QuotaPolicy(**defaults), clock=clock), clock

    def test_fresh_client_admitted_and_charged(self):
        manager, _ = self.manager()
        decision = manager.admit("alice", 4.0)
        assert decision.allowed and decision.charged == 4.0
        assert manager.stats()["alice"]["tokens"] == pytest.approx(6.0)

    def test_charge_clamped_to_burst(self):
        # A request dearer than the whole bucket is still admittable from
        # a full bucket: throttling slows heavy hitters, never starves.
        manager, _ = self.manager()
        decision = manager.admit("alice", 1e9)
        assert decision.allowed and decision.charged == 10.0

    def test_depleted_client_throttled_with_retry_after(self):
        manager, clock = self.manager()
        manager.admit("alice", 10.0)
        manager.release("alice")
        decision = manager.admit("alice", 6.0)
        assert not decision.allowed
        assert decision.retry_after == 6  # ceil(6.0 deficit / 1.0 rate)
        assert "cost quota" in decision.reason
        clock.advance(6.0)  # refilled exactly enough
        assert manager.admit("alice", 6.0).allowed

    def test_queue_share_bound(self):
        manager, _ = self.manager()
        assert manager.admit("alice", 0.1).allowed
        assert manager.admit("alice", 0.1).allowed
        decision = manager.admit("alice", 0.1)
        assert not decision.allowed
        assert "queue share" in decision.reason
        manager.release("alice")
        assert manager.admit("alice", 0.1).allowed

    def test_release_refund_restores_tokens(self):
        manager, _ = self.manager()
        decision = manager.admit("alice", 8.0)
        manager.release("alice", refund=decision.charged)
        stats = manager.stats()["alice"]
        assert stats["tokens"] == pytest.approx(10.0)
        assert stats["refunded_seconds"] == pytest.approx(8.0)
        assert stats["outstanding"] == 0

    def test_clients_are_independent(self):
        manager, _ = self.manager()
        manager.admit("greedy", 10.0)
        assert not manager.admit("greedy", 10.0).allowed
        assert manager.admit("gentle", 10.0).allowed

    def test_served_counters(self):
        manager, _ = self.manager()
        manager.note_served("alice", cached=True)
        manager.note_served("alice", cached=False)
        stats = manager.stats()["alice"]
        assert stats["served"] == 2
        assert stats["served_cached"] == 1
        assert stats["throttled"] == 0


# ---------------------------------------------------------------------- #
# Jobs
# ---------------------------------------------------------------------- #
class TestJobRegistry:
    def test_lifecycle(self):
        registry = JobRegistry()
        job = registry.create("alice", "fp", "fig8")
        assert job.as_dict()["state"] == "pending"
        job.start(total=0)
        job.set_total(7)
        job.bump()
        job.bump()
        data = job.as_dict()
        assert data["state"] == "running"
        assert data["progress"] == {"total": 7, "completed": 2, "executed": 0}
        job.finish(executed=3)
        data = job.as_dict()
        assert data["state"] == "done" and not data["cached"]
        assert data["progress"]["executed"] == 3
        assert registry.get(job.job_id) is job
        assert registry.get("nope") is None

    def test_failure(self):
        registry = JobRegistry()
        job = registry.create("alice", "fp", "fig8")
        job.start()
        job.fail("boom")
        data = job.as_dict()
        assert data["state"] == "failed" and data["error"] == "boom"

    def test_prune_keeps_live_jobs(self):
        registry = JobRegistry(max_jobs=2)
        done = registry.create("a", "fp", "fig2")
        done.finish()
        live = registry.create("a", "fp", "fig6")
        live.start()
        registry.create("a", "fp", "fig7")  # pushes over capacity
        assert registry.get(done.job_id) is None  # terminal: evicted
        assert registry.get(live.job_id) is live  # live: kept
        assert registry.stats()["by_state"]["running"] == 1


# ---------------------------------------------------------------------- #
# Satellites: RunCache.stats entry count, uniform Session.stats
# ---------------------------------------------------------------------- #
class TestRunCacheStats:
    def test_counters_and_entry_count(self, tmp_path):
        with Session(ExperimentSpec.tiny(),
                     cache_dir=str(tmp_path)) as session:
            session.run("MMLA", "para", 64)
            stats = session.cache.stats()
        assert stats["entries"] == 1
        assert stats["writes"] == 1
        assert stats["misses"] >= 1
        assert stats["corrupt_entries"] == 0

    def test_entry_count_tracks_directory(self, tmp_path):
        cache = RunCache(tmp_path, "finger")
        assert cache.stats()["entries"] == 0
        assert cache.get(("k",)) is None  # miss on empty
        assert cache.stats()["misses"] == 1
        assert cache.stats()["directory"].endswith("finger")


class TestSessionStats:
    def test_local_backend_returns_useful_counters(self):
        with Session(ExperimentSpec.tiny(), cache_dir="") as session:
            session.run("MMLA", "para", 64)
            stats = session.stats()
        assert stats["backend"] == "local"
        assert stats["jobs"] == 1
        assert stats["engine"] == session.engine
        assert stats["runs_executed"] == 1
        assert stats["fingerprint"] == session.fingerprint
        assert stats["cache"] is None  # disabled cache is explicit
        assert "cluster" not in stats

    def test_cache_counters_nested(self, tmp_path):
        with Session(ExperimentSpec.tiny(),
                     cache_dir=str(tmp_path)) as session:
            session.run("MMLA", "para", 64)
            stats = session.stats()
        assert stats["cache"]["entries"] == 1
        assert stats["cache"]["writes"] == 1


# ---------------------------------------------------------------------- #
# The service application surface (no HTTP)
# ---------------------------------------------------------------------- #
class TestExperimentService:
    def test_register_is_idempotent(self):
        with ExperimentService(cache_dir="") as service:
            first, created = service.register_spec_data(dict(TINY))
            again, recreated = service.register_spec_data(dict(TINY))
        assert created and not recreated
        assert first == again

    def test_register_rejects_bad_spec(self):
        with ExperimentService(cache_dir="") as service:
            with pytest.raises(ApiError) as info:
                service.register_spec_data({"spec": {"mechanisms": ["warp"]}})
        assert info.value.status == 400
        assert "warp" in info.value.message

    def test_session_table_bounded(self):
        with ExperimentService(cache_dir="", max_sessions=1) as service:
            service.register_spec_data(dict(TINY))
            with pytest.raises(ApiError) as info:
                service.register_spec_data(
                    {"profile": "tiny", "spec": {"sim_cycles": 1_600}})
        assert info.value.status == 409

    def test_unknown_fingerprint_and_figure(self):
        with ExperimentService(cache_dir="") as service:
            fingerprint, _ = service.register_spec_data(dict(TINY))
            with pytest.raises(ApiError) as missing:
                service.figure("deadbeef", "fig8", "alice")
            assert missing.value.status == 404
            with pytest.raises(ApiError) as unknown:
                service.figure(fingerprint, "fig99", "alice")
            assert unknown.value.status == 400

    def test_predicted_cost_is_positive_for_plans(self):
        with ExperimentService(cache_dir="") as service:
            fingerprint, _ = service.register_spec_data(dict(TINY))
            assert service.predicted_cost(fingerprint, "fig8") > 0.0
            # fig5 is analytical — empty sweep plan, nothing to charge.
            assert service.predicted_cost(fingerprint, "fig5") == 0.0


# ---------------------------------------------------------------------- #
# The real HTTP daemon (server + client), tier-1 sized
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def reference_fig8():
    """fig8 computed through a direct Session — the bit-identity oracle."""

    with Session(ExperimentSpec.tiny(), cache_dir="") as session:
        figure = session.figure("fig8")
        return {
            "dict": json.loads(json.dumps(figure.as_dict())),
            "runs_executed": session.runs_executed,
        }


@pytest.mark.service_smoke
class TestServiceHTTP:
    def test_warm_figures_are_ttl_hits_and_bit_identical(self, reference_fig8):
        with start_service(cache_dir="", ttl=600.0) as running:
            client = ServiceClient(running.address, client_id="alice")
            fingerprint = client.register_spec(dict(TINY))
            first, state = client.figure_response(fingerprint, "fig8")
            assert state == "miss"
            assert first == reference_fig8["dict"]
            executed = running.service.statsz()["sessions"][fingerprint][
                "runs_executed"]
            assert executed == reference_fig8["runs_executed"]
            for _ in range(3):
                warm, state = client.figure_response(fingerprint, "fig8")
                assert state == "hit"
                assert warm == first
            stats = running.service.statsz()
            # Zero new sweep-point executions for the warm requests.
            assert stats["sessions"][fingerprint]["runs_executed"] == executed
            assert stats["figure_cache"]["hits"] >= 3
            assert stats["clients"]["alice"]["served_cached"] == 3

    def test_concurrent_clients_coalesce_to_one_sweep(self, reference_fig8):
        with start_service(cache_dir="", ttl=600.0) as running:
            setup = ServiceClient(running.address, client_id="setup")
            fingerprint = setup.register_spec(dict(TINY))
            results: list = []
            errors: list = []

            def hammer(index: int) -> None:
                client = ServiceClient(running.address,
                                       client_id=f"client-{index}")
                try:
                    results.append(client.figure(fingerprint, "fig8"))
                except Exception as exc:  # noqa: BLE001 - test collector
                    errors.append(exc)

            threads = [threading.Thread(target=hammer, args=(index,))
                       for index in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            assert not errors
            assert len(results) == 6
            for payload in results:
                assert payload == reference_fig8["dict"]
            stats = running.service.statsz()
            # The executor ran the sweep exactly once: every other request
            # was served by the TTL cache (before or after the lock).
            assert stats["sessions"][fingerprint]["runs_executed"] == \
                reference_fig8["runs_executed"]
            assert stats["figure_cache"]["hits"] >= 5

    def test_job_flow_streams_progress(self):
        with start_service(cache_dir="", ttl=600.0) as running:
            client = ServiceClient(running.address, client_id="alice")
            fingerprint = client.register_spec(dict(TINY))
            job = client.submit_figure(fingerprint, "fig6")
            assert job["state"] in ("pending", "running")
            done = client.wait_job(job["job"])
            assert done["state"] == "done"
            assert not done["cached"]
            progress = done["progress"]
            assert progress["total"] > 0
            assert progress["completed"] == progress["total"]
            assert progress["executed"] > 0
            figure, state = client.figure_response(fingerprint, "fig6")
            assert state == "hit"
            assert figure["figure_id"] == "fig6"
            # Resubmitting a warm figure completes instantly, cached.
            warm = client.submit_figure(fingerprint, "fig6")
            assert warm["state"] == "done" and warm["cached"]

    def test_heavy_hitter_throttled_while_innocent_completes(self):
        with start_service(cache_dir="", ttl=600.0,
                           policy=STINGY) as running:
            greedy = ServiceClient(running.address, client_id="greedy")
            gentle = ServiceClient(running.address, client_id="gentle")
            fingerprint = greedy.register_spec(dict(TINY))
            greedy.figure(fingerprint, "fig8")  # drains greedy's bucket
            with pytest.raises(ClientThrottled) as info:
                greedy.figure(fingerprint, "fig6")
            assert info.value.status == 429
            assert info.value.retry_after >= 1
            # The throttled client still gets warm (cached) figures.
            _, state = greedy.figure_response(fingerprint, "fig8")
            assert state == "hit"
            # An innocent client's job completes meanwhile.
            job = gentle.submit_figure(fingerprint, "fig7")
            done = gentle.wait_job(job["job"])
            assert done["state"] == "done"
            clients = running.service.statsz()["clients"]
            assert clients["greedy"]["throttled"] == 1
            assert clients["gentle"]["throttled"] == 0

    def test_throttled_submit_creates_no_job(self):
        with start_service(cache_dir="", ttl=600.0,
                           policy=STINGY) as running:
            greedy = ServiceClient(running.address, client_id="greedy")
            fingerprint = greedy.register_spec(dict(TINY))
            greedy.figure(fingerprint, "fig8")
            with pytest.raises(ClientThrottled):
                greedy.submit_figure(fingerprint, "fig6")
            assert running.service.statsz()["jobs"]["total"] == 0

    def test_http_error_paths(self):
        with start_service(cache_dir="", ttl=600.0) as running:
            client = ServiceClient(running.address, client_id="alice")
            fingerprint = client.register_spec(dict(TINY))
            with pytest.raises(ServiceError) as info:
                client.figure("deadbeef", "fig8")
            assert info.value.status == 404
            with pytest.raises(ServiceError) as info:
                client.figure(fingerprint, "fig99")
            assert info.value.status == 400
            with pytest.raises(ServiceError) as info:
                client.job("j999")
            assert info.value.status == 404
            with pytest.raises(ServiceError) as info:
                client._request("GET", "/v2/everything")
            assert info.value.status == 404
            with pytest.raises(ServiceError) as info:
                client._request("POST", "/v1/figures", body={"figure": "fig8"})
            assert info.value.status == 400

    def test_toml_spec_registration(self):
        with start_service(cache_dir="", ttl=600.0) as running:
            request = urllib.request.Request(
                f"http://{running.address}/v1/specs",
                data=b'profile = "tiny"\n',
                headers={"Content-Type": "application/toml"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=30.0) as response:
                payload = json.loads(response.read().decode("utf-8"))
            assert response.status == 201
            json_client = ServiceClient(running.address)
            assert json_client.register_spec(dict(TINY)) == \
                payload["fingerprint"]

    def test_healthz(self):
        with start_service(cache_dir="", ttl=600.0) as running:
            client = ServiceClient(running.address)
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["uptime_seconds"] >= 0.0

"""Tests for the LLC model and the MSHR file (BreakHammer's throttling lever)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.cache import AccessResult, CacheConfig, SetAssociativeCache
from repro.cpu.mshr import MshrFile


class TestCacheConfig:
    def test_paper_llc_geometry(self):
        cfg = CacheConfig()
        assert cfg.size_bytes == 8 * 1024 * 1024
        assert cfg.associativity == 8
        assert cfg.line_bytes == 64
        assert cfg.num_sets * cfg.associativity * cfg.line_bytes == cfg.size_bytes

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, associativity=3, line_bytes=64)


class TestCacheBehaviour:
    def setup_method(self):
        self.cache = SetAssociativeCache(CacheConfig(size_bytes=8 * 1024,
                                                     associativity=2))

    def test_miss_then_fill_then_hit(self):
        assert not self.cache.access(0x100).hit
        self.cache.fill(0x100)
        assert self.cache.access(0x100).hit
        assert self.cache.stats.hits == 1
        assert self.cache.stats.misses == 1

    def test_same_line_offsets_hit(self):
        self.cache.fill(0x100)
        assert self.cache.access(0x100 + 63).hit

    def test_lru_eviction(self):
        cfg = self.cache.config
        way_stride = cfg.num_sets * cfg.line_bytes
        self.cache.fill(0)
        self.cache.fill(way_stride)
        self.cache.access(0)  # make line 0 most-recently used
        evicted = self.cache.fill(2 * way_stride)
        assert evicted is None  # victim was clean
        assert self.cache.probe(0)
        assert not self.cache.probe(way_stride)
        assert self.cache.stats.evictions == 1

    def test_dirty_eviction_returns_writeback_address(self):
        cfg = self.cache.config
        way_stride = cfg.num_sets * cfg.line_bytes
        self.cache.fill(0, is_write=True)
        self.cache.fill(way_stride)
        writeback = self.cache.fill(2 * way_stride)
        assert writeback == 0
        assert self.cache.stats.writebacks == 1

    def test_per_thread_miss_accounting(self):
        self.cache.access(0, thread_id=1)
        self.cache.access(64 * 1024, thread_id=2)
        assert self.cache.stats.misses_by_thread == {1: 1, 2: 1}

    def test_mpki(self):
        self.cache.access(0)
        assert self.cache.mpki(1000) == pytest.approx(1.0)
        assert self.cache.mpki(0) == 0.0

    def test_invalidate_all(self):
        self.cache.fill(0)
        self.cache.invalidate_all()
        assert not self.cache.probe(0)
        assert self.cache.occupancy() == 0.0

    def test_probe_does_not_touch_stats(self):
        self.cache.probe(0)
        assert self.cache.stats.accesses == 0


@settings(max_examples=50, deadline=None)
@given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 20),
                          min_size=1, max_size=200))
def test_cache_occupancy_never_exceeds_capacity(addresses):
    """Property: fills never overflow the configured number of lines."""

    cache = SetAssociativeCache(CacheConfig(size_bytes=4096, associativity=2))
    for address in addresses:
        if not cache.access(address).hit:
            cache.fill(address)
    assert cache.occupancy() <= 1.0


class TestMshrFile:
    def test_allocate_and_release(self):
        mshrs = MshrFile(total_entries=4, num_threads=2)
        entry = mshrs.allocate(0x100, thread_id=0, cycle=1)
        assert entry is not None
        assert len(mshrs) == 1
        assert mshrs.outstanding_for(0) == 1
        released = mshrs.release(0x100)
        assert released is entry
        assert len(mshrs) == 0

    def test_secondary_miss_merges(self):
        mshrs = MshrFile(total_entries=2, num_threads=2)
        first = mshrs.allocate(0x100, 0, 1)
        second = mshrs.allocate(0x100, 1, 2)
        assert second is first
        assert first.merged_accesses == 1
        assert mshrs.stats_merges == 1
        assert len(mshrs) == 1

    def test_capacity_rejection(self):
        mshrs = MshrFile(total_entries=1, num_threads=1)
        assert mshrs.allocate(0x100, 0, 1) is not None
        assert mshrs.allocate(0x200, 0, 1) is None
        assert mshrs.stats_capacity_rejections == 1

    def test_quota_rejection(self):
        mshrs = MshrFile(total_entries=8, num_threads=2)
        mshrs.set_quota(0, 1)
        assert mshrs.allocate(0x100, 0, 1) is not None
        assert mshrs.allocate(0x200, 0, 1) is None
        assert mshrs.stats_quota_rejections == 1
        # The other thread is unaffected.
        assert mshrs.allocate(0x300, 1, 1) is not None

    def test_quota_clamped(self):
        mshrs = MshrFile(total_entries=8, num_threads=1)
        mshrs.set_quota(0, 100)
        assert mshrs.quota_for(0) == 8
        mshrs.set_quota(0, -5)
        assert mshrs.quota_for(0) == 0
        mshrs.reset_quota(0)
        assert mshrs.quota_for(0) == 8

    def test_reset_all_quotas(self):
        mshrs = MshrFile(total_entries=8, num_threads=3)
        for t in range(3):
            mshrs.set_quota(t, 1)
        mshrs.reset_all_quotas()
        assert all(mshrs.quota_for(t) == 8 for t in range(3))

    def test_secondary_miss_allowed_even_when_quota_exhausted(self):
        """Paper §4.3: a throttled thread may still hit existing MSHRs."""

        mshrs = MshrFile(total_entries=8, num_threads=2)
        mshrs.allocate(0x100, 1, 1)
        mshrs.set_quota(0, 0)
        assert not mshrs.can_allocate(0)
        merged = mshrs.allocate(0x100, 0, 2)
        assert merged is not None  # secondary miss merges despite zero quota

    def test_snapshot(self):
        mshrs = MshrFile(total_entries=4, num_threads=2)
        mshrs.allocate(0x100, 0, 1)
        snap = mshrs.snapshot()
        assert snap["occupied"] == 1
        assert snap["total_entries"] == 4
        assert snap["quotas"][0] == 4

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MshrFile(total_entries=0)


@settings(max_examples=50, deadline=None)
@given(
    quota=st.integers(min_value=0, max_value=8),
    lines=st.lists(st.integers(min_value=0, max_value=31), min_size=1,
                   max_size=60),
)
def test_mshr_quota_invariant(quota, lines):
    """Property: a thread never holds more primary entries than its quota."""

    mshrs = MshrFile(total_entries=8, num_threads=1)
    mshrs.set_quota(0, quota)
    for i, line in enumerate(lines):
        address = line * 64
        existing = mshrs.lookup(address)
        mshrs.allocate(address, 0, i)
        if existing is None:
            assert mshrs.outstanding_for(0) <= max(quota, 0) or existing
    assert mshrs.outstanding_for(0) <= max(quota, len({l * 64 for l in lines}))
    assert mshrs.outstanding_for(0) <= mshrs.total_entries

"""The unified ``python -m repro.api`` CLI: spec files, figures, fuzz path."""

from __future__ import annotations

import json

import pytest

from repro.analysis.figures import FigureData
from repro.api import ExperimentSpec, Session
from repro.api.cli import main


SPEC_TOML = (
    'profile = "tiny"\n'
    'figures = ["fig6"]\n'
    '\n'
    '[spec]\n'
    'mechanisms = ["para", "rfm"]\n'
    '\n'
    '[execution]\n'
    'jobs = 1\n'
    'cache_dir = ""\n'
)


@pytest.fixture()
def spec_path(tmp_path):
    path = tmp_path / "sweep.toml"
    path.write_text(SPEC_TOML, encoding="utf-8")
    return path


def test_run_spec_file_produces_reference_figure(spec_path, tmp_path,
                                                 capsys):
    out_dir = tmp_path / "out"
    assert main(["run", str(spec_path), "--out", str(out_dir)]) == 0
    printed = capsys.readouterr().out
    assert "fig6" in printed
    dumped = json.loads((out_dir / "fig6.json").read_text(encoding="utf-8"))
    figure = FigureData.from_dict(dumped)
    spec = ExperimentSpec.tiny(mechanisms=("para", "rfm"))
    with Session(spec, jobs=1, cache_dir="") as session:
        assert figure.as_dict() == session.figure("fig6").as_dict()


def test_run_profile_headline_and_analytical_figure(tmp_path, capsys):
    out_dir = tmp_path / "out"
    assert main(["run", "--profile", "tiny", "--figures", "fig5,headline",
                 "--jobs", "1", "--cache-dir", "", "--out",
                 str(out_dir)]) == 0
    assert "fig5" in capsys.readouterr().out
    numbers = json.loads(
        (out_dir / "headline.json").read_text(encoding="utf-8")
    )
    assert numbers["mean_benign_speedup"] > 0


def test_run_without_spec_or_profile_errors():
    with pytest.raises(SystemExit):
        main(["run"])


def test_unknown_figures_rejected(spec_path):
    with pytest.raises(SystemExit, match="unknown figures"):
        main(["run", str(spec_path), "--figures", "fig99"])


def test_fuzz_subcommand_forwards(capsys):
    assert main(["fuzz", "--seed", "7", "--count", "2"]) == 0
    assert "ran 2 scenarios" in capsys.readouterr().out
